//! Chaos suite: trains real (miniature) networks while the `lsgd_fault`
//! plane injects crashes, stalls, and memory pressure at the protocol
//! seams, and asserts the resilience contract end to end:
//!
//! * an injected worker crash is **contained** — it lands in
//!   `RunResult::worker_crashes`, survivors keep training, and the run
//!   converges;
//! * the lock-free invariants (queue conservation, exactly-once
//!   publication accounting) hold **under stalls and crashes**, not just
//!   on the happy path;
//! * the same `LSGD_FAULT_SEED` reproduces the same per-thread fault
//!   schedule, and a different seed diverges;
//! * `oom:` pressure degrades throughput, never correctness.
//!
//! Build with the umbrella `fault` feature — the whole file is compiled
//! out otherwise (default builds carry no probes; the fault crate's
//! `overhead_guard` pins that):
//!
//! ```text
//! cargo test --features fault --test chaos
//! ```
//!
//! The fault plane is process-global, so every test grabs [`PLANE`] for
//! its whole body and disarms on the way out; `cargo test`'s in-binary
//! parallelism then cannot leak one test's plan into another's run.
#![cfg(feature = "fault")]

mod common;

use common::{Watchdog, STRESS_LIMIT};
use leashed_sgd::core::prelude::*;
use leashed_sgd::data::SynthDigits;
use leashed_sgd::fault;
use leashed_sgd::sync::SegQueue;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Serialises the tests in this binary: the fault plane (plan, seed,
/// tallies, per-thread streams) is process-global state.
static PLANE: Mutex<()> = Mutex::new(());

fn plane() -> std::sync::MutexGuard<'static, ()> {
    PLANE.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII disarm so a failing assertion can't leave a plan armed for the
/// next test body.
struct Armed;

impl Armed {
    fn install(spec: &str, seed: u64) -> Armed {
        fault::install(spec, seed).expect("chaos spec must parse");
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        fault::clear();
    }
}

fn mini_mlp_problem() -> NnProblem {
    let data = SynthDigits::default().generate(400, 1);
    NnProblem::new(leashed_sgd::nn::mlp_mnist(), data, 32, 200)
}

fn chaos_cfg(algorithm: Algorithm, threads: usize) -> TrainConfig {
    TrainConfig {
        algorithm,
        threads,
        eta: 0.1,
        epsilons: vec![0.9],
        max_updates: 4_000,
        max_wall: Duration::from_secs(30),
        eval_every: Duration::from_millis(40),
        seed: 2,
        staleness_cap: 512,
        ..TrainConfig::default()
    }
}

// ---------------------------------------------------------------------
// Crash containment
// ---------------------------------------------------------------------

/// `crash:w1@step40` on a three-worker Leashed run: exactly one crash,
/// attributed to worker 1 at step 40, and the survivors converge.
#[test]
fn injected_crash_is_contained_and_survivors_converge() {
    let _plane = plane();
    let _wd = Watchdog::arm("injected_crash_is_contained_and_survivors_converge", STRESS_LIMIT);
    let _armed = Armed::install("crash:w1@step40", 7);

    let p = mini_mlp_problem();
    let r = train(&p, &chaos_cfg(Algorithm::Leashed { persistence: None }, 3));

    assert!(!r.crashed, "an injected worker crash must not fail the run: {}", r.summary());
    assert_eq!(
        r.worker_crashes.len(),
        1,
        "exactly one crash rule fired: {:?}",
        r.worker_crashes
    );
    let crash = &r.worker_crashes[0];
    assert_eq!(crash.worker, 1, "crash rule targeted worker 1: {crash:?}");
    assert!(
        crash.message.contains("injected crash") && crash.message.contains("step 40"),
        "crash message must attribute the injection: {:?}",
        crash.message
    );
    assert_eq!(fault::tallies().crashes, 1);
    assert!(
        r.fully_converged(),
        "two survivors must still reach the (shallow) target: {}",
        r.summary()
    );
    assert!(r.summary().contains("wcrash 1"), "summary surfaces the crash: {}", r.summary());
}

/// Crash + publish/snapshot stalls together on the sharded algorithm:
/// the run still ends cleanly, the crash is contained, and the
/// exactly-once publication accounting survives the hostile schedule —
/// every published update is observed exactly once by the staleness
/// histogram, no loss, no double-count.
#[test]
fn exactly_once_accounting_survives_stall_plus_crash() {
    let _plane = plane();
    let _wd = Watchdog::arm("exactly_once_accounting_survives_stall_plus_crash", STRESS_LIMIT);
    let _armed = Armed::install(
        "crash:w2@step60;stall:publish,p=0.02,us=200;stall:snapshot,p=0.02,us=200",
        11,
    );

    let p = mini_mlp_problem();
    let algo = Algorithm::ShardedLeashed { persistence: Some(1), shards: 8, snapshot: SnapshotMode::Consistent };
    let mut cfg = chaos_cfg(algo, 3);
    cfg.max_updates = 1_500; // stalls slow each step; keep the budget bounded
    let r = train(&p, &cfg);

    assert!(!r.crashed, "{}", r.summary());
    assert_eq!(r.worker_crashes.len(), 1, "{:?}", r.worker_crashes);
    assert_eq!(r.worker_crashes[0].worker, 2);
    assert!(r.published > 0, "survivors must keep publishing: {}", r.summary());
    // Exactly-once: every successful publish records exactly one
    // staleness sample — under stalls and a mid-run crash, losing or
    // double-counting an update would skew this immediately.
    assert_eq!(
        r.staleness.count(),
        r.published,
        "staleness samples must match published updates exactly: {}",
        r.summary()
    );
    let t = fault::tallies();
    assert_eq!(t.crashes, 1);
    assert!(
        t.stalls_total() > 0,
        "a 2% stall rate over ≥1500 publish/snapshot probes must fire: {t:?}"
    );
    assert!(r.final_loss.is_finite(), "{}", r.summary());
}

// ---------------------------------------------------------------------
// Queue conservation under injected stalls
// ---------------------------------------------------------------------

/// `stall:pop` makes consumers hesitate mid-protocol; conservation must
/// hold anyway: every pushed token is popped exactly once.
#[test]
fn queue_conserves_tokens_under_pop_stalls() {
    let _plane = plane();
    let _wd = Watchdog::arm("queue_conserves_tokens_under_pop_stalls", STRESS_LIMIT);
    let _armed = Armed::install("stall:pop,p=0.05,us=100", 13);

    const PRODUCERS: u64 = 2;
    const PER_PRODUCER: u64 = 2_000;
    let q = SegQueue::new();
    let done = AtomicBool::new(false);
    let popped: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = &q;
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        for _ in 0..2 {
            let q = &q;
            let done = &done;
            let popped = &popped;
            s.spawn(move || {
                let mut local = Vec::new();
                // ORDERING: Relaxed — `done` is a plain shutdown flag; the
                // queue's own orderings carry the data.
                while !done.load(Ordering::Relaxed) || !q.is_empty() {
                    if let Some(v) = q.pop() {
                        local.push(v);
                    }
                }
                popped.lock().unwrap().extend(local);
            });
        }
        for h in producers {
            h.join().expect("producer panicked");
        }
        // ORDERING: Relaxed — shutdown flag only (see above).
        done.store(true, Ordering::Relaxed);
    });

    let mut all = popped.into_inner().unwrap();
    assert_eq!(
        all.len() as u64,
        PRODUCERS * PER_PRODUCER,
        "token loss or duplication under pop stalls"
    );
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len() as u64, PRODUCERS * PER_PRODUCER, "duplicated token under pop stalls");
    assert!(
        fault::tallies().stalls[fault::Site::QueuePop as usize] > 0,
        "the pop stall rule never fired: {:?}",
        fault::tallies()
    );
}

// ---------------------------------------------------------------------
// Seed determinism
// ---------------------------------------------------------------------

/// Draws the per-visit firing pattern of a probabilistic stall rule on a
/// tagged worker thread.
fn stall_pattern(spec: &str, seed: u64, visits: usize) -> Vec<bool> {
    fault::install(spec, seed).expect("spec must parse");
    let _tag = fault::worker_tag(0);
    let mut pattern = Vec::with_capacity(visits);
    let mut last = fault::tallies().stalls[fault::Site::Publish as usize];
    for _ in 0..visits {
        fault::point(fault::Site::Publish);
        let now = fault::tallies().stalls[fault::Site::Publish as usize];
        pattern.push(now != last);
        last = now;
    }
    pattern
}

/// The per-worker decision stream is a pure function of
/// `(seed, stream id)`: the same seed replays the identical fire/skip
/// schedule, a different seed diverges (2⁻⁶⁴-ish collision odds over 64
/// fair draws).
#[test]
fn same_seed_reproduces_the_fault_schedule() {
    let _plane = plane();
    let _wd = Watchdog::arm("same_seed_reproduces_the_fault_schedule", STRESS_LIMIT);
    let _armed = Armed; // covers all three installs below

    const SPEC: &str = "stall:publish,p=0.5,us=1";
    let a = stall_pattern(SPEC, 0xC0FFEE, 64);
    let b = stall_pattern(SPEC, 0xC0FFEE, 64);
    let c = stall_pattern(SPEC, 0xC0FFEE + 1, 64);

    assert_eq!(a, b, "identical seed must replay the identical schedule");
    assert_ne!(a, c, "a different seed must draw a different schedule");
    assert!(
        a.iter().any(|&f| f) && a.iter().any(|&f| !f),
        "p=0.5 over 64 draws should both fire and skip: {a:?}"
    );
}

/// Trainer-level replay: a deterministic `@step` crash rule lands on the
/// same worker at the same step across runs (the containment report is
/// reproducible even though thread interleaving is not).
#[test]
fn crash_at_step_replays_across_runs() {
    let _plane = plane();
    let _wd = Watchdog::arm("crash_at_step_replays_across_runs", STRESS_LIMIT);

    let p = mini_mlp_problem();
    let mut messages = Vec::new();
    for _ in 0..2 {
        let _armed = Armed::install("crash:w0@step25", 3);
        let r = train(&p, &chaos_cfg(Algorithm::Leashed { persistence: None }, 2));
        assert!(!r.crashed, "{}", r.summary());
        assert_eq!(r.worker_crashes.len(), 1, "{:?}", r.worker_crashes);
        messages.push(r.worker_crashes[0].message.clone());
    }
    assert_eq!(messages[0], messages[1], "the crash report must replay verbatim");
    assert!(messages[0].contains("worker 0") && messages[0].contains("step 25"));
}

// ---------------------------------------------------------------------
// Memory pressure
// ---------------------------------------------------------------------

/// `oom:after=<n>` forces the pool's pressure path (backoff, then forced
/// allocation) on every later fresh allocation: the run must complete
/// and converge anyway — pressure degrades throughput, not correctness.
#[test]
fn oom_pressure_degrades_throughput_not_correctness() {
    let _plane = plane();
    let _wd = Watchdog::arm("oom_pressure_degrades_throughput_not_correctness", STRESS_LIMIT);
    let _armed = Armed::install("oom:after=2", 5);

    let p = mini_mlp_problem();
    let r = train(&p, &chaos_cfg(Algorithm::Leashed { persistence: None }, 3));

    assert!(!r.crashed, "{}", r.summary());
    assert!(r.worker_crashes.is_empty(), "{:?}", r.worker_crashes);
    assert!(r.published > 0, "{}", r.summary());
    assert!(r.final_loss.is_finite(), "{}", r.summary());
    assert!(
        fault::tallies().ooms > 0,
        "a Leashed run allocates more than 2 fresh buffers; pressure must fire: {:?}",
        fault::tallies()
    );
    assert!(r.fully_converged(), "pressure must not break convergence: {}", r.summary());
}
