//! Sharded-ParameterVector tests: differential properties against the
//! unsharded `LeashedShared` oracle, and cross-shard snapshot stress
//! under contention (per the `tests/common` watchdog conventions).
//!
//! The differential properties pin down the sharding contract: for any
//! gradient sequence, publishing through `ShardedShared` (any shard
//! count, dense or sparse) must produce bitwise the same parameters as
//! the unsharded protocol, because each shard runs the identical LAU-SPC
//! loop over its coordinate range. The stress tests then check the one
//! thing sharding adds on top — the cross-shard consistent snapshot:
//! a validated snapshot must correspond to one linearizable point
//! (never a torn seq vector).

mod common;

use common::{stress_threads, Watchdog, STRESS_LIMIT};
use leashed_sgd::core::mem::MemoryGauge;
use leashed_sgd::core::paramvec::LeashedShared;
use leashed_sgd::core::pool::BufferPool;
use leashed_sgd::core::prelude::*;
use leashed_sgd::core::shard::{ShardedShared, SnapshotMode};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn sharded(dim: usize, s: usize, init: f32) -> ShardedShared {
    ShardedShared::new(&vec![init; dim], s, Arc::new(MemoryGauge::new()), true)
}

fn unsharded(dim: usize, init: f32) -> LeashedShared {
    let pool = BufferPool::new(dim, Arc::new(MemoryGauge::new()));
    LeashedShared::new(&vec![init; dim], pool)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense publishes through any shard count equal the unsharded
    /// oracle bitwise, for arbitrary gradient sequences.
    #[test]
    fn sharded_dense_matches_unsharded_oracle(
        grads in proptest::collection::vec(
            proptest::collection::vec(-4i32..5, 9..10), 1..24),
        shards in 1usize..12,
    ) {
        let dim = 9;
        let sh = sharded(dim, shards, 0.5);
        let oracle = unsharded(dim, 0.5);
        for g in &grads {
            let gv: Vec<f32> = g.iter().map(|&v| v as f32).collect();
            sh.publish_dense(&gv, 0.5, None, None, |_| {});
            oracle.publish_update(&gv, 0.5, None, |_| {});
        }
        let mut got = vec![0.0f32; dim];
        let mut want = vec![0.0f32; dim];
        sh.snapshot_into(&mut got);
        oracle.snapshot_into(&mut want);
        prop_assert_eq!(got, want);
    }

    /// Sparse pair publishes equal the oracle fed the equivalent dense
    /// gradient, for arbitrary sparse index subsets and shard counts.
    #[test]
    fn sharded_sparse_matches_dense_oracle(
        updates in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 17..18), 1..16),
        shards in 1usize..20,
    ) {
        let dim = 17;
        let sh = sharded(dim, shards, 1.0);
        let oracle = unsharded(dim, 1.0);
        for (k, mask) in updates.iter().enumerate() {
            let mut dense = vec![0.0f32; dim];
            let mut pairs = Vec::new();
            for (i, &on) in mask.iter().enumerate() {
                if on {
                    let v = (i as f32 + 1.0) * if k % 2 == 0 { 1.0 } else { -0.5 };
                    dense[i] = v;
                    pairs.push((i as u32, v));
                }
            }
            sh.publish_sparse(&pairs, 0.25, None, None, |_| {});
            oracle.publish_update(&dense, 0.25, None, |_| {});
        }
        let mut got = vec![0.0f32; dim];
        let mut want = vec![0.0f32; dim];
        sh.snapshot_into(&mut got);
        oracle.snapshot_into(&mut want);
        prop_assert_eq!(got, want);
    }

    /// The sharded trainer at S = 1 against the unsharded trainer on the
    /// same problem, seed and budget: both runs are driven by the same
    /// RNG streams over dense gradients, so the losses they reach are
    /// statistically equivalent (and both converge).
    #[test]
    fn sharded_trainer_s1_equivalent_to_unsharded(seed in 0u64..4) {
        let data = leashed_sgd::data::regression::dense_regression(300, 24, 0.05, seed);
        let p = RegressionProblem::new(data, 8);
        let mk = |algorithm| TrainConfig {
            algorithm,
            threads: 2,
            eta: 0.02,
            epsilons: vec![0.5],
            max_updates: 4_000,
            max_wall: Duration::from_secs(10),
            eval_every: Duration::from_millis(10),
            seed: seed + 100,
            ..TrainConfig::default()
        };
        let sharded = train(&p, &mk(Algorithm::ShardedLeashed {
            persistence: None,
            shards: 1,
            snapshot: SnapshotMode::Consistent,
        }));
        let plain = train(&p, &mk(Algorithm::Leashed { persistence: None }));
        prop_assert!(!sharded.crashed && !plain.crashed);
        prop_assert!(sharded.fully_converged(), "sharded: {}", sharded.summary());
        prop_assert!(plain.fully_converged(), "plain: {}", plain.summary());
        let ratio = (sharded.final_loss / plain.final_loss.max(1e-12)).ln().abs();
        prop_assert!(
            ratio < (4.0f64).ln(),
            "losses diverged: sharded {} vs plain {}",
            sharded.final_loss,
            plain.final_loss
        );
    }
}

/// Consistent snapshots are never torn: every validated snapshot's
/// contents match its seq vector exactly, per shard, while writers
/// hammer every shard.
#[test]
fn consistent_snapshot_never_observes_torn_seq_vector() {
    let _watchdog = Watchdog::arm(
        "consistent_snapshot_never_observes_torn_seq_vector",
        STRESS_LIMIT,
    );
    let dim = 64;
    let num_shards = 8;
    let width = dim / num_shards;
    let sh = Arc::new(sharded(dim, num_shards, 0.0));
    let stop = Arc::new(AtomicBool::new(false));
    let writers = stress_threads().clamp(2, 8);
    std::thread::scope(|sc| {
        for _ in 0..writers {
            let sh = Arc::clone(&sh);
            let stop = Arc::clone(&stop);
            sc.spawn(move || {
                // eta = 1, grad = -1 everywhere: each publish adds exactly
                // +1 to every component of every shard, so a shard's
                // contents always equal its seq number.
                let grad = vec![-1.0f32; dim];
                while !stop.load(Ordering::Relaxed) {
                    sh.publish_dense(&grad, 1.0, None, None, |_| {});
                }
            });
        }
        for _ in 0..2.max(stress_threads() / 2) {
            let sh = Arc::clone(&sh);
            let stop = Arc::clone(&stop);
            sc.spawn(move || {
                let mut validated = 0u64;
                while validated < 2_000 && !stop.load(Ordering::Relaxed) {
                    let snap = sh.snapshot(SnapshotMode::Consistent, u32::MAX);
                    assert!(snap.is_consistent(), "unbounded retries must validate");
                    let seqs = snap.seqs().to_vec();
                    for (s, &seq) in seqs.iter().enumerate().take(num_shards) {
                        let th = snap.shard_theta(s);
                        assert_eq!(th.len(), width);
                        for &v in th {
                            assert_eq!(
                                v as u64, seq,
                                "torn shard {s}: contents {v} vs seq {seq}"
                            );
                        }
                    }
                    validated += 1;
                }
            });
        }
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
}

/// Single ascending writer: a consistent snapshot must observe the
/// staircase invariant (shard seqs non-increasing left to right, total
/// spread ≤ 1 update), because that invariant holds at *every* instant
/// and a validated snapshot is linearizable. Fast snapshots carry no
/// such guarantee — this is exactly the consistency the mode buys.
#[test]
fn consistent_snapshot_is_linearizable_under_ascending_writer() {
    let _watchdog = Watchdog::arm(
        "consistent_snapshot_is_linearizable_under_ascending_writer",
        STRESS_LIMIT,
    );
    let dim = 32;
    let num_shards = 4;
    let sh = Arc::new(sharded(dim, num_shards, 0.0));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|sc| {
        {
            let sh = Arc::clone(&sh);
            let stop = Arc::clone(&stop);
            sc.spawn(move || {
                let grad = vec![-1.0f32; dim];
                while !stop.load(Ordering::Relaxed) {
                    // publish_dense walks shards in ascending index order.
                    sh.publish_dense(&grad, 1.0, None, None, |_| {});
                }
            });
        }
        for _ in 0..2 {
            let sh = Arc::clone(&sh);
            let stop = Arc::clone(&stop);
            sc.spawn(move || {
                let mut checked = 0u64;
                while checked < 5_000 && !stop.load(Ordering::Relaxed) {
                    let snap = sh.snapshot(SnapshotMode::Consistent, u32::MAX);
                    let seqs = snap.seqs();
                    for w in seqs.windows(2) {
                        assert!(
                            w[0] >= w[1],
                            "ascending writer implies non-increasing seqs, got {seqs:?}"
                        );
                    }
                    assert!(
                        seqs[0] - seqs[num_shards - 1] <= 1,
                        "one in-flight update spreads seqs by at most 1, got {seqs:?}"
                    );
                    checked += 1;
                }
            });
        }
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
}

/// Concurrent sparse publishes to disjoint coordinate sets conserve every
/// update (per-shard exact-once), and per-shard pools stay bounded.
#[test]
fn concurrent_sparse_publishes_apply_exactly_once() {
    let _watchdog = Watchdog::arm("concurrent_sparse_publishes_apply_exactly_once", STRESS_LIMIT);
    let dim = 96;
    let num_shards = 12;
    let sh = Arc::new(sharded(dim, num_shards, 0.0));
    let threads = stress_threads().clamp(2, 6);
    let per_thread = 400u64;
    std::thread::scope(|sc| {
        for tid in 0..threads {
            let sh = Arc::clone(&sh);
            sc.spawn(move || {
                // Thread tid owns coordinates ≡ tid (mod threads): no two
                // threads touch the same coordinate, but shards overlap.
                let pairs: Vec<(u32, f32)> = (0..dim)
                    .filter(|i| i % threads == tid)
                    .map(|i| (i as u32, -1.0))
                    .collect();
                for _ in 0..per_thread {
                    let out = sh.publish_sparse(&pairs, 1.0, None, None, |_| {});
                    assert_eq!(out.published, out.dirty, "no persistence bound");
                }
            });
        }
    });
    let mut buf = vec![0.0f32; dim];
    sh.snapshot_into(&mut buf);
    for (i, &v) in buf.iter().enumerate() {
        assert_eq!(
            v as u64, per_thread,
            "coordinate {i}: {v} ≠ {per_thread} exactly-once applications"
        );
    }
}
