//! Shared helpers for the threaded integration tests.

use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::time::Duration;

/// Converts a hung test into a prompt failure.
///
/// In-loop deadline checks cannot catch a thread stuck *inside* a
/// protocol call (e.g. a livelocked publish CAS loop): control never
/// returns to the loop, and `std::thread::scope` would then block the
/// whole suite on join. A detached watchdog thread sidesteps both — if
/// the guard is not dropped within `limit`, it aborts the process so CI
/// reports a crash immediately instead of idling until the job timeout.
pub struct Watchdog {
    disarm: Option<Sender<()>>,
}

impl Watchdog {
    /// Arms a watchdog for the calling test. Keep the guard alive for the
    /// duration of the test body; dropping it disarms the watchdog.
    pub fn arm(name: &'static str, limit: Duration) -> Watchdog {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            if let Err(RecvTimeoutError::Timeout) = rx.recv_timeout(limit) {
                eprintln!(
                    "watchdog: test '{name}' still running after {limit:?}; \
                     aborting the test binary so the hang fails promptly"
                );
                // Per-worker liveness of the current training run, if one
                // is live: which worker is stuck, and in which phase. The
                // report reads only relaxed heartbeat cells, so it is safe
                // while the hung run's own monitor still owns the
                // mailboxes.
                if let Some(report) = lsgd_core::heartbeat::report_current() {
                    eprintln!("watchdog: last heartbeats:\n{report}");
                }
                std::process::abort();
            }
        });
        Watchdog { disarm: Some(tx) }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        // Dropping the sender disconnects the channel; the watchdog
        // thread's recv_timeout returns Disconnected and it exits.
        self.disarm.take();
    }
}

/// Default per-test ceiling: every stress test finishes in well under a
/// second even on a 2-core CI box, so a minute means "hung".
pub const STRESS_LIMIT: Duration = Duration::from_secs(60);

/// Thread count for the contention stress tests.
///
/// Defaults to the available parallelism; CI's high-contention job sets
/// `LSGD_STRESS_THREADS` to an *oversubscribed* count (≥ 2× cores) so
/// threads get preempted mid-protocol — the schedule shape that shakes
/// out livelocks and missing-progress bugs that a politely scheduled run
/// never hits.
#[allow(dead_code)] // each test binary compiles its own copy of common/
pub fn stress_threads() -> usize {
    lsgd_core::env::positive_usize("LSGD_STRESS_THREADS").unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(4)
    })
}
