//! Property tests for `lsgd_sync::SegQueue` against reference models.
//!
//! Single-threaded differential testing: an arbitrary op sequence is
//! replayed against `VecDeque` (the semantics oracle) and against the
//! mutex queue the workspace used before. Randomised lengths make the
//! sequences straddle segment boundaries (31-slot segments), which is
//! where the lock-free index/hop bookkeeping lives.

use leashed_sgd::sync::{MutexSegQueue, SegQueue};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replay push/pop/len/is_empty against the `VecDeque` model.
    /// `(true, v)` = push(v); `(false, _)` = pop. Up to 400 ops crosses
    /// many segment hops.
    #[test]
    fn queue_matches_vecdeque_model(
        ops in proptest::collection::vec((any::<bool>(), 0u32..1_000_000), 1..400),
    ) {
        let q = SegQueue::new();
        let mut model = VecDeque::new();
        for (push, v) in ops {
            if push {
                q.push(v);
                model.push_back(v);
            } else {
                prop_assert_eq!(q.pop(), model.pop_front());
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }
        // Drain both; tails must agree element-for-element.
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(q.pop(), Some(expected));
        }
        prop_assert_eq!(q.pop(), None);
        prop_assert!(q.is_empty());
    }

    /// The lock-free queue and the old mutex queue are observationally
    /// identical on any single-threaded schedule.
    #[test]
    fn lock_free_and_mutex_queues_agree(
        ops in proptest::collection::vec((any::<bool>(), 0u32..1_000_000), 1..300),
    ) {
        let lf = SegQueue::new();
        let mx = MutexSegQueue::new();
        for (push, v) in ops {
            if push {
                lf.push(v);
                mx.push(v);
            } else {
                prop_assert_eq!(lf.pop(), mx.pop());
            }
            prop_assert_eq!(lf.len(), mx.len());
        }
        while let Some(expected) = mx.pop() {
            prop_assert_eq!(lf.pop(), Some(expected));
        }
        prop_assert_eq!(lf.pop(), None);
    }

    /// Pushing exactly `n` then popping `n` returns the exact sequence —
    /// targeted at off-by-one bugs around the 31-slot segment capacity
    /// (n ranges over several laps).
    #[test]
    fn burst_roundtrip_is_identity(n in 1usize..200) {
        let q = SegQueue::new();
        for i in 0..n {
            q.push(i);
        }
        prop_assert_eq!(q.len(), n);
        for i in 0..n {
            prop_assert_eq!(q.pop(), Some(i));
        }
        prop_assert_eq!(q.pop(), None);
    }
}
