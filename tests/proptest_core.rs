//! Property-based tests over the core protocol and metrics plumbing.

use leashed_sgd::core::mem::MemoryGauge;
use leashed_sgd::core::paramvec::{LeashedShared, PublishOutcome};
use leashed_sgd::core::pool::BufferPool;
use leashed_sgd::metrics::{BoxStats, Histogram, OnlineStats};
use proptest::prelude::*;
use std::sync::Arc;

fn shared(dim: usize, init: f32) -> LeashedShared {
    let pool = BufferPool::new(dim, Arc::new(MemoryGauge::new()));
    LeashedShared::new(&vec![init; dim], pool)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sequential publishes behave exactly like sequential SGD: the final
    /// vector equals init - eta * Σ grads (integer-exact with eta = 1).
    #[test]
    fn sequential_publishes_match_sequential_sgd(
        grads in proptest::collection::vec(-8i32..8, 1..40),
        dim in 1usize..32,
    ) {
        let s = shared(dim, 0.0);
        let mut expected = 0i64;
        for g in &grads {
            let gv = vec![*g as f32; dim];
            let out = s.publish_update(&gv, 1.0, None, |_| {});
            let published = matches!(out, PublishOutcome::Published { .. });
            prop_assert!(published);
            expected -= *g as i64;
        }
        let guard = s.latest();
        prop_assert_eq!(guard.seq(), grads.len() as u64);
        for &v in guard.theta() {
            prop_assert_eq!(v as i64, expected);
        }
    }

    /// Concurrent publishes from 2 threads: exact-once application holds
    /// for arbitrary integer gradient mixes.
    #[test]
    fn concurrent_publishes_sum_exactly(
        ga in 1i32..6,
        gb in 1i32..6,
        reps in 10u32..120,
    ) {
        let dim = 16;
        let s = Arc::new(shared(dim, 0.0));
        std::thread::scope(|sc| {
            for g in [ga, gb] {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    let gv = vec![-(g as f32); dim];
                    for _ in 0..reps {
                        s.publish_update(&gv, 1.0, None, |_| {});
                    }
                });
            }
        });
        let guard = s.latest();
        let expected = (ga as i64 + gb as i64) * reps as i64;
        for &v in guard.theta() {
            prop_assert_eq!(v as i64, expected);
        }
        prop_assert_eq!(guard.seq(), 2 * reps as u64);
    }

    /// Histogram merge is equivalent to recording the concatenation.
    #[test]
    fn histogram_merge_is_concat(
        xs in proptest::collection::vec(0u64..64, 0..100),
        ys in proptest::collection::vec(0u64..64, 0..100),
    ) {
        let mut a = Histogram::new(32);
        let mut b = Histogram::new(32);
        let mut all = Histogram::new(32);
        for &x in &xs { a.record(x); all.record(x); }
        for &y in &ys { b.record(y); all.record(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert_eq!(a.overflow(), all.overflow());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-9);
        for v in 0..32 {
            prop_assert_eq!(a.bin(v), all.bin(v));
        }
    }

    /// OnlineStats merge is order-insensitive and matches the batch stats.
    #[test]
    fn online_stats_merge_associative(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..60),
        split in 0usize..60,
    ) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.record(x); }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..split] { left.record(x); }
        for &x in &xs[split..] { right.record(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }

    /// BoxStats quartiles are ordered and bracket the median for any
    /// sample; whiskers sit inside [min, max].
    #[test]
    fn boxstats_invariants(xs in proptest::collection::vec(-1e6f64..1e6, 1..80)) {
        let b = BoxStats::from_samples(&xs).unwrap();
        prop_assert!(b.q1 <= b.median && b.median <= b.q3);
        prop_assert!(b.whisker_lo <= b.q1 && b.q3 <= b.whisker_hi);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(b.whisker_lo >= min && b.whisker_hi <= max);
        prop_assert_eq!(b.n, xs.len());
    }

    /// The fluid model's closed form equals its recurrence for any stable
    /// parameter set (Theorem 3 as an algebraic property).
    #[test]
    fn fluid_closed_form_equals_recurrence(
        m in 1.0f64..128.0,
        tc in 2.0f64..200.0,
        tu in 2.0f64..200.0,
        n0 in 0.0f64..32.0,
    ) {
        let f = leashed_sgd::dynamics::FluidModel::new(m, tc, tu);
        prop_assume!(f.is_stable());
        let traj = f.trajectory(n0, 64);
        for (t, &n) in traj.iter().enumerate() {
            let cf = f.closed_form(n0, t as u32);
            prop_assert!((n - cf).abs() < 1e-6 * (1.0 + n.abs()), "t={}: {} vs {}", t, n, cf);
        }
    }

    /// The pool never hands the same pointer to two live acquirers, for
    /// arbitrary acquire/release schedules (recycling on and off): a
    /// freed buffer may be re-issued, a held one must not be.
    #[test]
    fn pool_never_aliases_live_buffers(
        ops in proptest::collection::vec(any::<bool>(), 1..250),
        recycle in any::<bool>(),
    ) {
        let pool = BufferPool::new_with_recycling(4, Arc::new(MemoryGauge::new()), recycle);
        let mut held: Vec<*mut f32> = Vec::new();
        let mut live = std::collections::HashSet::new();
        for acquire in ops {
            if acquire || held.is_empty() {
                let ptr = pool.acquire();
                prop_assert!(
                    live.insert(ptr as usize),
                    "pool aliased a live buffer: {:?}", ptr
                );
                held.push(ptr);
            } else {
                let ptr = held.pop().unwrap();
                live.remove(&(ptr as usize));
                unsafe { pool.release(ptr) };
            }
        }
        for ptr in held.drain(..) {
            unsafe { pool.release(ptr) };
        }
    }

    /// Pool acquire/release round-trips keep the outstanding counter
    /// exact for arbitrary schedules.
    #[test]
    fn pool_outstanding_counter_is_exact(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let pool = BufferPool::new(8, Arc::new(MemoryGauge::new()));
        let mut held = Vec::new();
        for acquire in ops {
            if acquire || held.is_empty() {
                held.push(pool.acquire());
            } else {
                let ptr = held.pop().unwrap();
                unsafe { pool.release(ptr) };
            }
            prop_assert_eq!(pool.outstanding(), held.len());
        }
        for ptr in held.drain(..) {
            unsafe { pool.release(ptr) };
        }
        prop_assert_eq!(pool.outstanding(), 0);
    }
}
