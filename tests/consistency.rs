//! Cross-crate consistency stress tests for the ParameterVector protocol.
//!
//! These test the paper's central claim — Leashed-SGD is *consistent*:
//! every published update is applied exactly once, atomically, onto the
//! previous published state (Lemma 1). HOGWILD!, by design, satisfies
//! none of this; the contrast test documents the difference.

mod common;

use common::{Watchdog, STRESS_LIMIT};
use leashed_sgd::core::baseline::HogwildParams;
use leashed_sgd::core::mem::MemoryGauge;
use leashed_sgd::core::paramvec::{LeashedShared, PublishOutcome};
use leashed_sgd::core::pool::BufferPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn shared(dim: usize) -> LeashedShared {
    let pool = BufferPool::new(dim, Arc::new(MemoryGauge::new()));
    LeashedShared::new(&vec![0.0f32; dim], pool)
}

/// No update is ever lost or double-applied: with integer-valued gradients
/// and eta = 1, the final parameter equals the exact sum of all published
/// gradients regardless of interleaving (f32 is exact on integers < 2^24).
#[test]
fn published_updates_are_applied_exactly_once() {
    let _watchdog = Watchdog::arm("published_updates_are_applied_exactly_once", STRESS_LIMIT);
    let dim = 64;
    let threads = 4;
    let per_thread = 400u64;
    let s = Arc::new(shared(dim));
    let total_published: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
    let mut per_thread_published = Vec::new();
    std::thread::scope(|sc| {
        let mut handles = Vec::new();
        for tid in 0..threads {
            let s = Arc::clone(&s);
            let total = Arc::clone(&total_published);
            handles.push(sc.spawn(move || {
                // Thread tid publishes gradient -(tid+1) (so theta grows by
                // tid+1 per publish with eta = 1).
                let grad = vec![-((tid + 1) as f32); dim];
                let mut sum = 0u64;
                for _ in 0..per_thread {
                    match s.publish_update(&grad, 1.0, None, |_| {}) {
                        PublishOutcome::Published { .. } => {
                            sum += (tid + 1) as u64;
                            total.fetch_add(1, Ordering::Relaxed);
                        }
                        PublishOutcome::Aborted { .. } => unreachable!("no persistence bound"),
                    }
                }
                sum
            }));
        }
        for h in handles {
            per_thread_published.push(h.join().unwrap());
        }
    });
    let expected: u64 = per_thread_published.iter().sum();
    let guard = s.latest();
    for &v in guard.theta() {
        assert_eq!(v as u64, expected, "exact once-only application");
    }
    assert_eq!(guard.seq(), total_published.load(Ordering::Relaxed));
}

/// Reads are monotone: a read preceded by another read never returns an
/// older vector (paper P3).
#[test]
fn reads_are_monotone_per_thread() {
    let _watchdog = Watchdog::arm("reads_are_monotone_per_thread", STRESS_LIMIT);
    let dim = 32;
    let s = Arc::new(shared(dim));
    std::thread::scope(|sc| {
        // One writer continuously publishing.
        let writer = {
            let s = Arc::clone(&s);
            sc.spawn(move || {
                let grad = vec![-1.0f32; dim];
                for _ in 0..5_000 {
                    s.publish_update(&grad, 1.0, None, |_| {});
                }
            })
        };
        // Readers check their observed sequence numbers never decrease.
        for _ in 0..3 {
            let s = Arc::clone(&s);
            sc.spawn(move || {
                let mut last = 0u64;
                for _ in 0..20_000 {
                    let seq = s.latest().seq();
                    assert!(seq >= last, "read went backwards: {seq} < {last}");
                    last = seq;
                }
            });
        }
        writer.join().unwrap();
    });
}

/// Vector contents always correspond exactly to the sequence number —
/// atomicity of the published snapshot under heavy churn.
#[test]
fn snapshots_are_never_torn() {
    let _watchdog = Watchdog::arm("snapshots_are_never_torn", STRESS_LIMIT);
    let dim = 128;
    let s = Arc::new(shared(dim));
    std::thread::scope(|sc| {
        for _ in 0..2 {
            let s = Arc::clone(&s);
            sc.spawn(move || {
                let grad = vec![-1.0f32; dim];
                for _ in 0..2_500 {
                    s.publish_update(&grad, 1.0, None, |_| {});
                }
            });
        }
        for _ in 0..2 {
            let s = Arc::clone(&s);
            sc.spawn(move || {
                let mut buf = vec![0.0f32; dim];
                for _ in 0..10_000 {
                    let seq = s.snapshot_into(&mut buf);
                    // Every component must equal the update count (+1 per
                    // publish), i.e. the whole snapshot is one atomic state.
                    for &v in &buf {
                        assert_eq!(v as u64, seq, "torn snapshot at seq {seq}");
                    }
                }
            });
        }
    });
}

/// The HOGWILD! contrast: the same integer-gradient workload *does* lose
/// updates under contention — demonstrating precisely the inconsistency
/// Leashed-SGD removes. (Losing updates is legal for HOGWILD!; observing
/// zero losses on a single-core box is also legal, so this test only
/// checks bounds, not that losses occur.)
#[test]
fn hogwild_may_lose_updates_but_never_exceeds_total() {
    let _watchdog = Watchdog::arm("hogwild_may_lose_updates_but_never_exceeds_total", STRESS_LIMIT);
    let dim = 64;
    let threads = 4;
    let per_thread = 2_000u64;
    let p = Arc::new(HogwildParams::new(
        &vec![0.0f32; dim],
        Arc::new(MemoryGauge::new()),
    ));
    std::thread::scope(|sc| {
        for _ in 0..threads {
            let p = Arc::clone(&p);
            sc.spawn(move || {
                let grad = vec![-1.0f32; dim];
                for _ in 0..per_thread {
                    p.update(&grad, 1.0);
                }
            });
        }
    });
    let total = threads as u64 * per_thread;
    let mut buf = vec![0.0f32; dim];
    p.read_into(&mut buf);
    for &v in &buf {
        let v = v as u64;
        assert!(v <= total, "component exceeds total applied updates");
        assert!(v > 0, "some updates must land");
    }
    assert_eq!(p.current_seq(), total, "the FAA counter itself is exact");
}

/// Aborted updates have no effect on the shared state.
#[test]
fn aborted_updates_leave_no_trace() {
    let _watchdog = Watchdog::arm("aborted_updates_leave_no_trace", STRESS_LIMIT);
    let dim = 16;
    let s = Arc::new(shared(dim));
    let aborted_total = Arc::new(AtomicU64::new(0));
    let published_total = Arc::new(AtomicU64::new(0));
    std::thread::scope(|sc| {
        for _ in 0..4 {
            let s = Arc::clone(&s);
            let aborted = Arc::clone(&aborted_total);
            let published = Arc::clone(&published_total);
            sc.spawn(move || {
                let grad = vec![-1.0f32; dim];
                for _ in 0..1_000 {
                    match s.publish_update(&grad, 1.0, Some(0), |_| {}) {
                        PublishOutcome::Published { .. } => {
                            published.fetch_add(1, Ordering::Relaxed);
                        }
                        PublishOutcome::Aborted { .. } => {
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let guard = s.latest();
    let published = published_total.load(Ordering::Relaxed);
    for &v in guard.theta() {
        assert_eq!(
            v as u64, published,
            "state reflects only published updates"
        );
    }
    assert_eq!(guard.seq(), published);
}
