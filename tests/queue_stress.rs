//! Concurrency stress tests for the in-tree lock-free queue
//! (`lsgd_sync::SegQueue`) — the free-list under the buffer pool.
//!
//! Every test runs under the abort-on-hang watchdog, so a livelock in
//! the CAS loops fails the suite promptly instead of wedging CI. Thread
//! counts scale with `LSGD_STRESS_THREADS` (the CI high-contention job
//! sets it to ≥ 2× cores to force mid-protocol preemption).
//!
//! Properties exercised, per the queue's contract:
//! * **conservation** — every pushed token is popped exactly once
//!   (no loss, no duplication, no invention);
//! * **per-producer FIFO** — any single consumer observes each
//!   producer's tokens in push order (MPMC linearisability gives no
//!   global order, but per-producer order must survive);
//! * **no double-pop across consumers** — checked via an exactly-once
//!   bitmap over all consumers' pops;
//! * **pointer uniqueness** under the `BufferPool` — the pool never
//!   hands one buffer to two concurrently live acquirers.

mod common;

use common::{stress_threads, Watchdog, STRESS_LIMIT};
use leashed_sgd::core::mem::MemoryGauge;
use leashed_sgd::core::pool::BufferPool;
use leashed_sgd::sync::SegQueue;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tokens are (producer id, per-producer sequence) packed into a u64.
fn token(producer: u64, seq: u64) -> u64 {
    (producer << 40) | seq
}

fn untoken(t: u64) -> (u64, u64) {
    (t >> 40, t & ((1 << 40) - 1))
}

/// N producers × M consumers; asserts exact element conservation and
/// per-producer FIFO order as seen by each consumer.
#[test]
fn mpmc_conserves_tokens_exactly_once() {
    let _watchdog = Watchdog::arm("mpmc_conserves_tokens_exactly_once", STRESS_LIMIT);
    let threads = stress_threads();
    let producers = (threads / 2).max(2) as u64;
    let consumers = (threads / 2).max(2);
    let per_producer: u64 = 20_000;
    let total = producers * per_producer;

    let q = Arc::new(SegQueue::new());
    let popped_count = Arc::new(AtomicU64::new(0));

    let consumer_logs: Vec<Vec<u64>> = std::thread::scope(|s| {
        for p in 0..producers {
            let q = Arc::clone(&q);
            s.spawn(move || {
                for seq in 0..per_producer {
                    q.push(token(p, seq));
                }
            });
        }
        let handles: Vec<_> = (0..consumers)
            .map(|_| {
                let q = Arc::clone(&q);
                let popped_count = Arc::clone(&popped_count);
                s.spawn(move || {
                    let mut log = Vec::new();
                    // Per-producer FIFO: the sequence numbers this
                    // consumer sees from any one producer must be
                    // strictly increasing.
                    let mut last_seen = vec![None::<u64>; producers as usize];
                    while popped_count.load(Ordering::Relaxed) < total {
                        match q.pop() {
                            Some(t) => {
                                popped_count.fetch_add(1, Ordering::Relaxed);
                                let (p, seq) = untoken(t);
                                if let Some(prev) = last_seen[p as usize] {
                                    assert!(
                                        seq > prev,
                                        "per-producer FIFO violated: producer {p} \
                                         gave seq {seq} after {prev}"
                                    );
                                }
                                last_seen[p as usize] = Some(seq);
                                log.push(t);
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    log
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Exactly-once conservation across all consumers.
    let mut seen = vec![false; total as usize];
    for log in &consumer_logs {
        for &t in log {
            let (p, seq) = untoken(t);
            assert!(p < producers && seq < per_producer, "invented token {t:#x}");
            let idx = (p * per_producer + seq) as usize;
            assert!(!seen[idx], "token ({p}, {seq}) popped twice");
            seen[idx] = true;
        }
    }
    let popped: usize = consumer_logs.iter().map(Vec::len).sum();
    assert_eq!(popped as u64, total, "lost tokens");
    assert!(seen.iter().all(|&s| s), "bitmap disagrees with count");
    assert!(q.is_empty());
}

/// Mixed-role churn at an oversubscribed thread count: every thread both
/// pushes and pops in bursts that repeatedly drain the queue to empty,
/// forcing constant segment allocation/teardown at the boundaries.
#[test]
fn oversubscribed_churn_conserves_sum() {
    let _watchdog = Watchdog::arm("oversubscribed_churn_conserves_sum", STRESS_LIMIT);
    let threads = (2 * stress_threads()).max(8) as u64;
    let rounds = 200u64;
    // Burst > one segment (31 slots) so every round crosses boundaries.
    let burst = 100u64;

    let q = Arc::new(SegQueue::new());
    let (pushed_sum, popped_sum): (u64, u64) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let mut pushed = 0u64;
                    let mut popped = 0u64;
                    for r in 0..rounds {
                        for i in 0..burst {
                            let v = t * rounds * burst + r * burst + i;
                            q.push(v);
                            pushed += v;
                        }
                        // Pop slightly more than pushed so the queue
                        // keeps returning to (near-)empty under load.
                        for _ in 0..burst + 2 {
                            if let Some(v) = q.pop() {
                                popped += v;
                            }
                        }
                    }
                    (pushed, popped)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0, 0), |(a, b), (p, c)| (a + p, b + c))
    });
    let leftover: u64 = std::iter::from_fn(|| q.pop()).sum();
    assert_eq!(
        popped_sum + leftover,
        pushed_sum,
        "value conservation violated under churn"
    );
    assert!(q.is_empty());
}

/// The buffer pool must never hand the same pointer to two *live*
/// acquirers — the concurrent counterpart of the single-thread proptest.
/// A shared registry of live addresses is checked on every acquire.
#[test]
fn pool_never_double_hands_a_live_buffer() {
    let _watchdog = Watchdog::arm("pool_never_double_hands_a_live_buffer", STRESS_LIMIT);
    let threads = stress_threads().max(4);
    let pool = Arc::new(BufferPool::new(64, Arc::new(MemoryGauge::new())));
    let live: Arc<Mutex<HashSet<usize>>> = Arc::new(Mutex::new(HashSet::new()));

    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = Arc::clone(&pool);
            let live = Arc::clone(&live);
            s.spawn(move || {
                let mut held = Vec::new();
                for i in 0..3_000usize {
                    let ptr = pool.acquire();
                    {
                        let mut set = live.lock().unwrap();
                        assert!(
                            set.insert(ptr as usize),
                            "pool handed live buffer {ptr:?} out twice"
                        );
                    }
                    held.push(ptr);
                    // Vary hold depth so free-list pressure oscillates.
                    if held.len() > 1 + (i + t) % 4 {
                        let ptr = held.remove(0);
                        live.lock().unwrap().remove(&(ptr as usize));
                        unsafe { pool.release(ptr) };
                    }
                }
                for ptr in held {
                    live.lock().unwrap().remove(&(ptr as usize));
                    unsafe { pool.release(ptr) };
                }
            });
        }
    });
    assert_eq!(pool.outstanding(), 0);
    assert!(live.lock().unwrap().is_empty());
}

/// Producers keep pushing while consumers race `pop` against transient
/// emptiness: `pop` must never block, and every `None` must be
/// legitimate (the queue really could have been empty). Terminates by
/// conservation, which a spurious-None-plus-lost-token bug would break.
#[test]
fn pop_on_transiently_empty_queue_stays_responsive() {
    let _watchdog = Watchdog::arm("pop_on_transiently_empty_queue_stays_responsive", STRESS_LIMIT);
    let q = Arc::new(SegQueue::new());
    let items = 50_000u64;
    let consumed = std::thread::scope(|s| {
        let producer = {
            let q = Arc::clone(&q);
            s.spawn(move || {
                for i in 0..items {
                    q.push(i);
                    if i % 64 == 0 {
                        // Let the consumer drain so it keeps hitting the
                        // empty-queue fast path.
                        std::thread::yield_now();
                    }
                }
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            s.spawn(move || {
                let mut got = 0u64;
                let mut expected_next = 0u64;
                while got < items {
                    match q.pop() {
                        Some(v) => {
                            // Single consumer: global FIFO must hold.
                            assert_eq!(v, expected_next, "FIFO broken past empty transitions");
                            expected_next += 1;
                            got += 1;
                        }
                        None => std::thread::yield_now(),
                    }
                }
                got
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap()
    });
    assert_eq!(consumed, items);
    assert!(q.is_empty());
}
