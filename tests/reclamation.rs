//! Memory-reclamation safety and bounds under load (paper Lemma 2).

mod common;

use common::{Watchdog, STRESS_LIMIT};
use leashed_sgd::core::mem::MemoryGauge;
use leashed_sgd::core::paramvec::LeashedShared;
use leashed_sgd::core::pool::BufferPool;
use std::sync::Arc;

fn make(dim: usize) -> (Arc<MemoryGauge>, LeashedShared) {
    let gauge = Arc::new(MemoryGauge::new());
    let pool = BufferPool::new(dim, Arc::clone(&gauge));
    (gauge, LeashedShared::new(&vec![0.0f32; dim], pool))
}

/// Lemma 2 (ii): the number of simultaneously live ParameterVector
/// buffers is bounded (≤ 2m + 1 in our accounting: one published, one
/// read-held and one in-flight new vector per thread).
#[test]
fn outstanding_buffers_bounded_by_lemma_2() {
    let _watchdog = Watchdog::arm("outstanding_buffers_bounded_by_lemma_2", STRESS_LIMIT);
    let dim = 512;
    for m in [1usize, 2, 4, 8] {
        let (_gauge, s) = make(dim);
        let s = Arc::new(s);
        std::thread::scope(|sc| {
            for _ in 0..m {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    let grad = vec![0.01f32; dim];
                    for _ in 0..300 {
                        let g = s.latest();
                        let _first = g.theta()[0];
                        drop(g);
                        s.publish_update(&grad, 0.005, Some(1), |_| {});
                    }
                });
            }
        });
        let peak = s.pool().outstanding_peak();
        assert!(
            peak <= 2 * m + 1,
            "m={m}: peak {peak} exceeds 2m+1 = {}",
            2 * m + 1
        );
    }
}

/// Steady-state execution allocates a bounded number of fresh buffers and
/// recycles the rest — the "dynamic memory management" claim.
#[test]
fn steady_state_recycles_rather_than_allocates() {
    let _watchdog = Watchdog::arm("steady_state_recycles_rather_than_allocates", STRESS_LIMIT);
    let dim = 256;
    let (gauge, s) = make(dim);
    let grad = vec![0.01f32; dim];
    for _ in 0..2_000 {
        s.publish_update(&grad, 0.005, None, |_| {});
    }
    assert!(
        gauge.total_allocs() <= 4,
        "single-threaded run should allocate O(1) buffers, got {}",
        gauge.total_allocs()
    );
    assert!(gauge.pool_reuses() >= 1_999);
}

/// Everything is reclaimed when the shared state is dropped: no leaks,
/// even with vectors still unreturned (the final published one).
#[test]
fn drop_reclaims_all_memory() {
    let _watchdog = Watchdog::arm("drop_reclaims_all_memory", STRESS_LIMIT);
    let dim = 128;
    let gauge = Arc::new(MemoryGauge::new());
    {
        let pool = BufferPool::new(dim, Arc::clone(&gauge));
        let s = Arc::new(LeashedShared::new(&vec![0.0f32; dim], pool));
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    let grad = vec![0.5f32; dim];
                    for _ in 0..500 {
                        s.publish_update(&grad, 0.1, Some(2), |_| {});
                    }
                });
            }
        });
        assert!(gauge.live() > 0);
    }
    assert_eq!(gauge.live(), 0, "drop must free every buffer");
}

/// A reader guard held across many publishes keeps exactly its one vector
/// alive; memory does not creep while it is held.
#[test]
fn long_lived_reader_pins_one_vector_only() {
    let _watchdog = Watchdog::arm("long_lived_reader_pins_one_vector_only", STRESS_LIMIT);
    let dim = 64;
    let (_gauge, s) = make(dim);
    let grad = vec![0.01f32; dim];
    let pinned = s.latest();
    let before = pinned.theta().to_vec();
    for _ in 0..1_000 {
        s.publish_update(&grad, 0.005, None, |_| {});
    }
    // published (1) + pinned (1).
    assert_eq!(s.pool().outstanding(), 2);
    assert_eq!(pinned.theta(), &before[..], "pinned contents immutable");
    drop(pinned);
    assert_eq!(s.pool().outstanding(), 1);
}

/// The memory gauge's peak reflects the true high-water mark across a
/// concurrent run (sanity for the Fig. 10 experiment).
#[test]
fn gauge_peak_dominates_every_live_sample() {
    let _watchdog = Watchdog::arm("gauge_peak_dominates_every_live_sample", STRESS_LIMIT);
    let dim = 128;
    let (gauge, s) = make(dim);
    let s = Arc::new(s);
    let mut samples = Vec::new();
    std::thread::scope(|sc| {
        let worker = {
            let s = Arc::clone(&s);
            sc.spawn(move || {
                let grad = vec![0.1f32; dim];
                for _ in 0..3_000 {
                    s.publish_update(&grad, 0.01, None, |_| {});
                }
            })
        };
        for _ in 0..50 {
            samples.push(gauge.live());
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        worker.join().unwrap();
    });
    let peak = gauge.peak();
    for &sample in &samples {
        assert!(sample <= peak, "sample {sample} above recorded peak {peak}");
    }
}
