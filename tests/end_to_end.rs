//! End-to-end reproduction pipeline at test scale: the paper's workloads
//! and algorithm lineup, miniaturised to run in seconds.
//!
//! Two tiers live in this file:
//!
//! * **Smoke tests** (default `cargo test`): every workload × algorithm
//!   is driven end to end for a bounded number of updates — wiring,
//!   crash-freedom, and cheap invariants, a couple of seconds total.
//! * **Convergence tests** (`#[ignore]`, run with `cargo test --
//!   --ignored`; CI's `slow-suite` job): the original 30 s-budget runs
//!   that assert the paper's convergence and staleness-ordering claims.
//!   These took ~100 s of wall time, which is why they are off the
//!   default path.

use leashed_sgd::core::prelude::*;
use leashed_sgd::data::SynthDigits;
use std::time::Duration;

/// A miniature of the paper's MLP workload: Table II network, synthetic
/// MNIST-format digits.
fn mini_mlp_problem() -> NnProblem {
    let data = SynthDigits::default().generate(400, 1);
    NnProblem::new(leashed_sgd::nn::mlp_mnist(), data, 32, 200)
}

fn cfg(algorithm: Algorithm, threads: usize) -> TrainConfig {
    TrainConfig {
        algorithm,
        threads,
        eta: 0.1,
        epsilons: vec![0.5],
        max_updates: u64::MAX,
        max_wall: Duration::from_secs(30),
        eval_every: Duration::from_millis(40),
        seed: 2,
        staleness_cap: 512,
        ..TrainConfig::default()
    }
}

/// Smoke profile: same workload, bounded updates instead of a
/// convergence budget — finishes in well under a second per run.
fn smoke_cfg(algorithm: Algorithm, threads: usize) -> TrainConfig {
    let mut c = cfg(algorithm, threads);
    c.max_updates = 400;
    c.max_wall = Duration::from_secs(10);
    c.epsilons = vec![0.9]; // shallow target a smoke run can plausibly hit
    c
}

// ---------------------------------------------------------------------
// Smoke tier (default `cargo test`)
// ---------------------------------------------------------------------

#[test]
fn smoke_full_lineup_runs_on_mlp_digits() {
    let p = mini_mlp_problem();
    for algo in Algorithm::paper_lineup() {
        let r = train(&p, &smoke_cfg(algo, 2));
        assert!(!r.crashed, "{algo}: {}", r.summary());
        assert!(r.published > 0, "{algo}: no updates published");
        assert!(
            r.final_loss.is_finite(),
            "{algo}: loss diverged: {}",
            r.summary()
        );
    }
}

#[test]
fn smoke_cnn_workload_runs() {
    let data = SynthDigits::default().generate(60, 2);
    let p = NnProblem::new(leashed_sgd::nn::cnn_mnist(), data, 8, 32);
    let mut c = smoke_cfg(Algorithm::Leashed { persistence: None }, 2);
    c.max_updates = 24; // the CNN is slow per gradient; two dozen proves the path
    let r = train(&p, &c);
    assert!(!r.crashed, "{}", r.summary());
    assert!(r.published > 0, "no CNN updates published");
    assert!(r.final_loss.is_finite());
}

#[test]
fn smoke_persistence_zero_forces_zero_tau_s() {
    // Tp = 0 forces τs = 0 by construction — no convergence needed.
    let p = mini_mlp_problem();
    let r = train(&p, &smoke_cfg(Algorithm::Leashed { persistence: Some(0) }, 4));
    assert!(!r.crashed, "{}", r.summary());
    assert_eq!(r.tau_s.mean(), 0.0, "Tp=0 must force τs = 0");
}

#[test]
fn monitor_trace_time_axis_is_monotone() {
    // Monotonicity of the monitor's time axis needs updates, not
    // convergence — smoke budget suffices.
    let p = mini_mlp_problem();
    let r = train(&p, &smoke_cfg(Algorithm::AsyncLock, 2));
    let pts = r.loss_trace.points();
    for w in pts.windows(2) {
        assert!(w[1].0 >= w[0].0, "trace time went backwards");
    }
    assert!(pts[0].0 == 0.0, "trace starts at t = 0 with initial loss");
}

#[test]
fn initial_loss_is_ln10_for_ten_classes() {
    // The paper states f(θ₀) ≈ 2.3 (= ln 10) for both architectures.
    let p = mini_mlp_problem();
    let theta = p.init_theta(0);
    let mut scratch = p.scratch();
    let l0 = p.eval_loss(&theta, &mut scratch);
    assert!(
        (l0 - 10f64.ln()).abs() < 0.15,
        "initial loss {l0} should be ≈ ln 10 ≈ 2.303"
    );
}

#[test]
fn same_seed_same_initial_loss_across_algorithms() {
    // Controlled comparison: every algorithm starts from an identical θ₀.
    let p = mini_mlp_problem();
    let mut first: Option<f64> = None;
    for algo in [
        Algorithm::Sequential,
        Algorithm::Hogwild,
        Algorithm::Leashed { persistence: None },
    ] {
        let mut c = cfg(algo, 1);
        c.max_updates = 5; // barely run; we only need initial_loss
        c.epsilons = vec![1e-12];
        c.max_wall = Duration::from_secs(5);
        let r = train(&p, &c);
        match first {
            None => first = Some(r.initial_loss),
            Some(f) => assert_eq!(f, r.initial_loss, "{algo}"),
        }
    }
}

// ---------------------------------------------------------------------
// Convergence tier (#[ignore] — `cargo test -- --ignored`, CI slow-suite)
// ---------------------------------------------------------------------

#[test]
#[ignore = "30 s-budget convergence run; exercised by the CI slow-suite job"]
fn full_lineup_converges_on_mlp_digits() {
    let p = mini_mlp_problem();
    for algo in Algorithm::paper_lineup() {
        let r = train(&p, &cfg(algo, 2));
        assert!(!r.crashed, "{algo}: {}", r.summary());
        assert!(
            r.fully_converged(),
            "{algo} failed 50%-convergence: {}",
            r.summary()
        );
        assert!(r.published > 50, "{algo}: too few updates");
    }
}

#[test]
#[ignore = "30 s-budget convergence run; exercised by the CI slow-suite job"]
fn cnn_workload_trains_and_has_high_tc_tu_ratio() {
    // The CNN's Tc/Tu ratio is the paper's explanation for its low
    // contention (Fig. 9); verify the ratio ordering holds end-to-end.
    let data = SynthDigits::default().generate(300, 2);
    let p = NnProblem::new(leashed_sgd::nn::cnn_mnist(), data, 16, 128);
    let mut c = cfg(Algorithm::Leashed { persistence: None }, 2);
    c.epsilons = vec![0.9]; // shallow target: the CNN is slow per gradient
    let r = train(&p, &c);
    assert!(!r.crashed, "{}", r.summary());
    assert!(r.published > 10);
    let ratio = r.tc.mean() / r.tu.mean().max(1e-12);
    assert!(
        ratio > 50.0,
        "CNN Tc/Tu ratio should be large, got {ratio:.1}"
    );
}

#[test]
#[ignore = "three 30 s-budget convergence runs; exercised by the CI slow-suite job"]
fn leashed_persistence_zero_has_lowest_tau_s() {
    // §IV.2 ordering: mean τs(ps0) ≤ mean τs(ps1) ≤ mean τs(ps∞), with
    // ps0 exactly zero.
    let p = mini_mlp_problem();
    let mut means = Vec::new();
    for tp in [Some(0), Some(1), None] {
        let mut c = cfg(Algorithm::Leashed { persistence: tp }, 4);
        c.epsilons = vec![0.7];
        let r = train(&p, &c);
        means.push((tp, r.tau_s.mean()));
    }
    assert_eq!(means[0].1, 0.0, "Tp=0 forces τs = 0: {means:?}");
    assert!(
        means[0].1 <= means[2].1 + 1e-9,
        "τs(ps0) must not exceed τs(ps∞): {means:?}"
    );
}

#[test]
#[ignore = "convergence-budget run; exercised by the CI slow-suite job"]
fn statistical_efficiency_is_recorded_when_converged() {
    let p = mini_mlp_problem();
    let r = train(&p, &cfg(Algorithm::Hogwild, 2));
    assert!(r.fully_converged(), "{}", r.summary());
    let (eps, iters) = r.iters_to_eps[0];
    assert_eq!(eps, 0.5);
    let iters = iters.expect("converged run must record iterations");
    assert!(iters > 0 && iters <= r.published);
}
