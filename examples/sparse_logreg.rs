//! Sparse logistic regression at scale — the workload the sharded
//! ParameterVector is built for.
//!
//! A high-dimensional text-like instance (power-law token frequencies,
//! L2-normalised log-tf rows) trained with SEQ, HOGWILD!, and sharded
//! Leashed-SGD. The sharded runs use the native sparse-gradient path:
//! each minibatch publishes only `(index, value)` pairs, so only the
//! shards owning touched coordinates are copied + CASed — watch the
//! dirty-shard column sit far below S while the unsharded algorithms pay
//! the full dimension every update.
//!
//! ```text
//! cargo run --release --example sparse_logreg
//! # override the shard count:
//! LSGD_SHARDS=16 cargo run --release --example sparse_logreg
//! ```

use leashed_sgd::core::prelude::*;
use leashed_sgd::core::shard::effective_shards;
use leashed_sgd::data::sparse_logreg::sparse_logreg;
use std::time::Duration;

fn main() {
    let dim = 8_192;
    let shards = 64;
    // What the trainer will actually use (honours LSGD_SHARDS; a
    // configured 0 would select the dim/worker heuristic instead).
    let shards_eff = effective_shards(shards, dim, 4);
    let data = sparse_logreg(4_000, dim, 16, 11);
    println!(
        "sparse logreg: n={} d={} avg_nnz={:.1} | w* reference accuracy {:.3}",
        data.len(),
        data.dim(),
        data.avg_nnz(),
        data.accuracy(&data.w_star),
    );
    let problem = SparseLogRegProblem::new(data, 16);

    let algos = [
        Algorithm::Sequential,
        Algorithm::Hogwild,
        Algorithm::ShardedLeashed {
            persistence: Some(1),
            shards,
            snapshot: SnapshotMode::Consistent,
        },
        Algorithm::ShardedLeashed {
            persistence: Some(1),
            shards,
            snapshot: SnapshotMode::Fast,
        },
    ];
    println!(
        "\n{:<22} {:>10} {:>12} {:>10} {:>10} {:>14}",
        "algo", "50% time", "updates/s", "logloss", "converged", "dirty shards"
    );
    for algo in algos {
        let cfg = TrainConfig {
            algorithm: algo,
            threads: 4,
            eta: 1.0,
            epsilons: vec![0.5],
            max_wall: Duration::from_secs(8),
            eval_every: Duration::from_millis(20),
            seed: 3,
            ..TrainConfig::default()
        };
        let r = train(&problem, &cfg);
        let dirty = if r.dirty_shards.count() > 0 {
            format!(
                "{:.1}/{} (p99 {})",
                r.dirty_shards.mean(),
                shards_eff,
                r.dirty_shards.quantile(0.99)
            )
        } else {
            "-".into()
        };
        println!(
            "{:<22} {:>10} {:>12.0} {:>10.4} {:>10} {:>14}",
            algo.label(),
            r.time_to(0.5)
                .map(|s| format!("{s:.2}s"))
                .unwrap_or_else(|| "-".into()),
            r.updates_per_sec(),
            r.final_loss,
            if r.fully_converged() { "conv" } else { "-" },
            dirty,
        );
        // Protocol counters explain the throughput column: publish
        // retries/aborts and snapshot retries are where the lock-free
        // rows spend the updates/s they give up. Non-empty only when
        // built with `--features trace` and `LSGD_TRACE=1` is set.
        let report = r.trace_report();
        if !report.is_empty() {
            print!("{report}");
        }
    }

    println!(
        "\nThe sharded rows publish sparse (index, value) pairs: only the \
         \nshards owning a minibatch's tokens are copied + CASed, so the \
         \nmean dirty-shard count stays far below S={shards_eff} while SEQ/HOG \
         \ntouch all d={dim} coordinates every update. `LSGD_SHARDS` \
         \noverrides the shard count at runtime."
    );
}
