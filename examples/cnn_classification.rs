//! CNN training (Table III, `d = 27,354`) with Leashed-SGD vs HOGWILD! —
//! the high `Tc/Tu`-ratio regime where the paper reports its largest
//! speedups (Fig. 7), plus the accuracy the trained model reaches.
//!
//! ```text
//! cargo run --release --example cnn_classification
//! ```

use leashed_sgd::core::prelude::*;
use leashed_sgd::data::SynthDigits;
use std::time::Duration;

fn main() {
    println!("generating synthetic MNIST-format digits…");
    let data = SynthDigits::default().generate(1_000, 21);
    let net = leashed_sgd::nn::cnn_mnist();
    println!("{}", net.describe());
    let problem = NnProblem::new(net, data, 32, 400);

    for algo in [
        Algorithm::Hogwild,
        Algorithm::Leashed { persistence: Some(0) },
    ] {
        let cfg = TrainConfig {
            algorithm: algo,
            threads: 2,
            eta: 0.05,
            epsilons: vec![0.75, 0.5, 0.25],
            max_wall: Duration::from_secs(60),
            eval_every: Duration::from_millis(100),
            seed: 3,
            ..TrainConfig::default()
        };
        let r = train(&problem, &cfg);
        println!("\n=== {} ===", algo.label());
        println!("{}", r.summary());
        println!(
            "  Tc mean {:.1}ms | Tu mean {:.3}ms | ratio {:.0} (high ratio -> low contention)",
            r.tc.mean() * 1e3,
            r.tu.mean() * 1e3,
            r.tc.mean() / r.tu.mean().max(1e-12)
        );

        println!(
            "  final eval loss: {:.3} (initial {:.3}, ln 10 ≈ 2.303)",
            r.final_loss, r.initial_loss
        );
    }

    // Accuracy check: train once more sequentially and report how well the
    // CNN actually classifies the synthetic digits (chance = 10%).
    let mut scratch = problem.scratch();
    let mut theta = problem.init_theta(3);
    let acc0 = problem.eval_accuracy(&theta, &mut scratch);
    let mut rng = leashed_sgd::tensor::SmallRng64::new(9);
    let mut grad = vec![0.0f32; problem.dim()];
    use leashed_sgd::core::problem::Problem as _;
    for _ in 0..400 {
        problem.grad(&theta, &mut grad, &mut scratch, &mut rng);
        leashed_sgd::tensor::ops::sgd_step(&mut theta, &grad, 0.05);
    }
    let acc1 = problem.eval_accuracy(&theta, &mut scratch);
    println!(
        "\naccuracy: {:.1}% at init -> {:.1}% after 400 sequential updates",
        acc0 * 100.0,
        acc1 * 100.0
    );
}
