//! The paper's primary workload, at laptop scale: the Table II MLP
//! (`d = 134,794`) trained on MNIST-format synthetic digits by all six
//! algorithm configurations, comparing wall-clock time to 50% of the
//! initial loss — a miniature of Fig. 3.
//!
//! ```text
//! cargo run --release --example mlp_classification [-- threads]
//! ```

use leashed_sgd::core::prelude::*;
use leashed_sgd::data::SynthDigits;
use std::time::Duration;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    println!("generating synthetic MNIST-format digits…");
    let data = SynthDigits::default().generate(1_500, 7);
    let net = leashed_sgd::nn::mlp_mnist();
    println!("{}", net.describe());
    let problem = NnProblem::new(net, data, 64, 512);

    println!("training with m = {threads} workers, eta = 0.05\n");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12}",
        "algo", "50% time", "updates/s", "stale", "outcome"
    );
    for algo in Algorithm::paper_lineup() {
        let cfg = TrainConfig {
            algorithm: algo,
            threads,
            eta: 0.05,
            epsilons: vec![0.5],
            max_wall: Duration::from_secs(25),
            eval_every: Duration::from_millis(50),
            seed: 1,
            ..TrainConfig::default()
        };
        let r = train(&problem, &cfg);
        let time = r
            .time_to(0.5)
            .map(|s| format!("{s:.2}s"))
            .unwrap_or_else(|| "-".into());
        let outcome = if r.crashed {
            "CRASH"
        } else if r.fully_converged() {
            "converged"
        } else {
            "diverged"
        };
        println!(
            "{:<12} {:>10} {:>12.0} {:>10.2} {:>12}",
            algo.label(),
            time,
            r.updates_per_sec(),
            r.staleness.mean(),
            outcome
        );
    }
}
