//! Traced smoke train across all four algorithm families — the
//! observability pipeline end to end.
//!
//! Runs short SEQ / HOGWILD! / Leashed / sharded-Leashed trains with
//! tracing on, prints each run's per-phase p50/p95/p99 table and
//! protocol counters, writes one Chrome-trace JSON (one process group
//! per run, one lane per worker), then re-parses the file and fails
//! (exit 1) unless every declared worker lane carries at least one
//! complete span. CI runs exactly this as its traced smoke test.
//!
//! ```text
//! cargo run --release --features trace --example trace_run [trace.json]
//! ```

use leashed_sgd::core::prelude::*;
use leashed_sgd::trace;
use std::time::Duration;

fn main() {
    if !trace::COMPILED {
        eprintln!(
            "trace_run needs the trace probes compiled in; rerun with\n  \
             cargo run --release --features trace --example trace_run"
        );
        std::process::exit(2);
    }
    // Chrome sink path: CLI arg, else LSGD_TRACE_JSON, else a default in
    // the target dir. Setting the env var (before any train) is how the
    // trainer knows where to append.
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        lsgd_core::env::var("LSGD_TRACE_JSON")
            .unwrap_or_else(|| "target/trace_run.json".to_string())
    });
    let _ = std::fs::remove_file(&path); // fresh trajectory per invocation
    std::env::set_var("LSGD_TRACE_JSON", &path);
    trace::enable();

    let data = lsgd_data::blobs::gaussian_blobs(600, 6, 3, 0.3, 42);
    let net = lsgd_nn::tiny_mlp(6, 16, 3);
    let problem = NnProblem::new(net, data, 32, 256);

    let threads = 2;
    let algos = [
        Algorithm::Sequential,
        Algorithm::Hogwild,
        Algorithm::Leashed { persistence: Some(1) },
        Algorithm::ShardedLeashed {
            persistence: Some(1),
            shards: 0, // dim/worker heuristic
            snapshot: SnapshotMode::Consistent,
        },
    ];
    for algo in algos {
        let cfg = TrainConfig {
            algorithm: algo,
            threads,
            eta: 0.1,
            epsilons: vec![0.5],
            max_wall: Duration::from_secs(2),
            eval_every: Duration::from_millis(20),
            seed: 7,
            ..TrainConfig::default()
        };
        let r = train(&problem, &cfg);
        println!("{}", r.summary());
        let report = r.trace_report();
        if report.is_empty() {
            eprintln!("FAIL: traced run produced no phase stats ({})", algo.label());
            std::process::exit(1);
        }
        print!("{report}");
        if r.phase_stats.is_empty() {
            eprintln!("FAIL: empty per-phase histograms ({})", algo.label());
            std::process::exit(1);
        }
        println!();
    }

    // Validate the accumulated Chrome trace: parses, one run group per
    // train, every declared worker lane has >= 1 complete span.
    match trace::chrome::validate_file(&path) {
        Ok(summary) => {
            println!(
                "{path}: {} events, {} runs, {} lanes, min {} span(s)/lane",
                summary.total_events,
                summary.runs,
                summary.named_lanes,
                summary.min_spans_per_lane()
            );
            if summary.runs != algos.len() {
                eprintln!("FAIL: expected {} run groups, got {}", algos.len(), summary.runs);
                std::process::exit(1);
            }
            // Each traced run has at least its workers' lanes (the
            // monitor lane shows up too when it recorded spans).
            if summary.named_lanes < algos.len() * threads {
                eprintln!(
                    "FAIL: expected >= {} worker lanes, got {}",
                    algos.len() * threads,
                    summary.named_lanes
                );
                std::process::exit(1);
            }
            if summary.min_spans_per_lane() == 0 {
                eprintln!("FAIL: a worker lane carries no complete span");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("FAIL: {path} is not a loadable Chrome trace: {e}");
            std::process::exit(1);
        }
    }
    println!("trace_run: OK — load {path} in Perfetto / chrome://tracing");
}
