//! Sparse convex regression — the regime HOGWILD! was designed for.
//!
//! The original HOGWILD! analysis assumes sparse gradients on a convex
//! problem: concurrent component-wise updates rarely collide, so dropping
//! synchronisation costs almost nothing statistically. This example runs
//! that workload and contrasts it with Leashed-SGD, showing both converge
//! — and then makes the problem *dense*, where HOGWILD!'s lost updates
//! start to bite while consistent publication does not.
//!
//! ```text
//! cargo run --release --example hogwild_regression
//! ```

use leashed_sgd::core::prelude::*;
use leashed_sgd::data::regression::{dense_regression, sparse_regression};
use std::time::Duration;

fn run(label: &str, problem: &RegressionProblem) {
    println!("\n=== {label} ===");
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "algo", "10% time", "updates/s", "final mse"
    );
    for algo in [
        Algorithm::Sequential,
        Algorithm::Hogwild,
        Algorithm::Leashed { persistence: Some(1) },
    ] {
        let cfg = TrainConfig {
            algorithm: algo,
            threads: 4,
            eta: 0.01,
            epsilons: vec![0.1],
            max_wall: Duration::from_secs(15),
            eval_every: Duration::from_millis(20),
            seed: 5,
            ..TrainConfig::default()
        };
        let r = train(problem, &cfg);
        println!(
            "{:<12} {:>12} {:>12.0} {:>10.4}",
            algo.label(),
            r.time_to(0.1)
                .map(|s| format!("{s:.2}s"))
                .unwrap_or_else(|| "-".into()),
            r.updates_per_sec(),
            r.final_loss,
        );
    }
}

fn main() {
    // Sparse: 1000 samples in 200 dims, 5 nonzeros per sample.
    let sparse = RegressionProblem::new(sparse_regression(1_000, 200, 5, 0.05, 11), 8);
    run("sparse regression (HOGWILD!'s home turf)", &sparse);

    // Dense: every update touches every coordinate.
    let dense = RegressionProblem::new(dense_regression(1_000, 200, 0.05, 12), 8);
    run("dense regression (collisions everywhere)", &dense);

    println!(
        "\nBoth regimes converge here — the sparse case is where HOGWILD!'s \
         \nasynchrony is provably near-free; the dense non-convex DL problems \
         \nof the paper are where consistency starts to pay (see fig4/fig7)."
    );
}
