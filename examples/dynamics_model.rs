//! Explore the Section-IV thread-dynamics model interactively: fixed
//! points, trajectories and the persistence bound's effect, for any
//! `(m, Tc, Tu)` you pass on the command line.
//!
//! ```text
//! cargo run --release --example dynamics_model -- [m] [Tc] [Tu]
//! ```

use leashed_sgd::dynamics::des::{simulate, CasMode, DesConfig};
use leashed_sgd::dynamics::staleness::{estimate, gamma_for_persistence};
use leashed_sgd::dynamics::FluidModel;

fn main() {
    let mut args = std::env::args().skip(1);
    let m: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(16.0);
    let tc: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(40.0);
    let tu: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.8);

    let model = FluidModel::new(m, tc, tu).rescaled_stable();
    println!("fluid model: m = {m}, Tc = {tc}, Tu = {tu}");
    println!("  fixed point n*        = {:.4}", model.fixed_point());
    println!("  balance n*/m          = {:.4} (= Tu/(Tu+Tc))", model.balance());
    println!(
        "  settling time (~1% of n*) = {:?} fine steps",
        model.settling_time(0.0, 0.01 * model.fixed_point(), 1_000_000)
    );

    println!("\ntrajectory n_t from n_0 = 0 (coarse samples):");
    let traj = model.trajectory(0.0, 2_000);
    for (i, n) in traj.iter().enumerate().step_by(250) {
        let bar = "#".repeat((n / model.fixed_point() * 30.0).round() as usize);
        println!("  t={i:>5}  n={n:.4}  {bar}");
    }

    println!("\npersistence bound sweep (Cor. 3.2 + DES):");
    println!(
        "  {:<6} {:>8} {:>14} {:>14} {:>10}",
        "Tp", "gamma", "n*_gamma", "DES tau_s", "aborted"
    );
    for tp in [None, Some(4), Some(1), Some(0)] {
        let gamma = gamma_for_persistence(tp);
        let est = estimate(m, tc, tu, gamma);
        let des = simulate(&DesConfig {
            m: m as usize,
            tc,
            tu,
            jitter: 0.2,
            persistence: tp,
            mode: CasMode::Realistic,
            horizon: 30_000.0,
            seed: 1,
        });
        println!(
            "  {:<6} {:>8.2} {:>14.4} {:>14.4} {:>10}",
            tp.map(|v| v.to_string()).unwrap_or_else(|| "inf".into()),
            gamma,
            est.tau_s,
            des.tau_s.mean(),
            des.aborted,
        );
    }
    println!("\n(Tp = 0 forces DES tau_s to exactly 0 — the paper's §IV.2 claim.)");
}
