//! Quickstart: train a small classifier with Leashed-SGD in ~30 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use leashed_sgd::core::prelude::*;
use std::time::Duration;

fn main() {
    // 1. A dataset: three well-separated Gaussian blobs in 6 dimensions.
    let data = leashed_sgd::data::blobs::gaussian_blobs(1_000, 6, 3, 0.3, 42);

    // 2. A model: a tiny MLP, its parameters flattened into one vector —
    //    the ParameterVector abstraction the algorithms share.
    let net = leashed_sgd::nn::tiny_mlp(6, 16, 3);
    let problem = NnProblem::new(net, data, 32, 256);

    // 3. Train with Leashed-SGD (lock-free, consistent), 4 workers,
    //    persistence bound 1.
    let cfg = TrainConfig {
        algorithm: Algorithm::Leashed { persistence: Some(1) },
        threads: 4,
        eta: 0.15,
        epsilons: vec![0.5, 0.1], // stop at 10% of the initial loss
        max_wall: Duration::from_secs(30),
        ..TrainConfig::default()
    };
    let result = train(&problem, &cfg);

    // 4. Inspect the outcome.
    println!("{}", result.summary());
    for (eps, outcome) in &result.outcomes {
        println!("  eps {:>4.0}% -> {:?}", eps * 100.0, outcome);
    }
    println!(
        "  staleness: mean {:.2}, p95 {}",
        result.staleness.mean(),
        result.staleness.quantile(0.95)
    );
    assert!(result.fully_converged(), "expected convergence on blobs");
}
