//! Offline shim for `parking_lot` (mirrors the 0.12 API subset this
//! workspace uses: [`Mutex`] / [`MutexGuard`]).
//!
//! Backed by `std::sync::Mutex` with parking_lot semantics at the API
//! level: `lock()` returns the guard directly (no `Result`), and poisoning
//! is ignored — a panic while holding the lock does not poison it for
//! later users, matching parking_lot's behaviour.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn contended_increments_are_serialised() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock usable after a panicking holder");
    }
}
