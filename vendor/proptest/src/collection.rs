//! Collection strategies (`proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let mut rng = TestRng::new(7);
        let s = vec(-10.0f32..10.0, 1..64);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((1..64).contains(&v.len()));
            assert!(v.iter().all(|x| (-10.0..10.0).contains(x)));
        }
    }

    #[test]
    fn zero_length_allowed_when_range_starts_at_zero() {
        let mut rng = TestRng::new(8);
        let s = vec(0u64..4, 0..3);
        let mut saw_empty = false;
        for _ in 0..200 {
            if s.generate(&mut rng).is_empty() {
                saw_empty = true;
            }
        }
        assert!(saw_empty);
    }
}
