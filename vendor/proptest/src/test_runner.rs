//! Case execution: configuration, RNG, and the run loop behind
//! [`crate::proptest!`].

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion: the whole test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`: retried with new inputs.
    Reject(String),
}

impl TestCaseError {
    /// Failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic xorshift64* generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; zero seeds are remapped off the fixed point.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        s ^= s >> 31;
        if s == 0 {
            s = 0x9E37_79B9_7F4A_7C15;
        }
        TestRng { state: s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; panics on `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below: empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// FNV-1a over the test name: a deterministic per-test base seed.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Runs `case` until `config.cases` successes, panicking on the first
/// failure with the case seed for reproduction.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while passed < config.cases {
        let seed = base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        index += 1;
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected}) for {} successes",
                        passed
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case {passed} \
                     (case seed {seed:#018x}):\n{msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::new(4);
        let mut b = TestRng::new(4);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn run_cases_counts_successes() {
        let mut calls = 0u32;
        run_cases("counts", &ProptestConfig::with_cases(17), |_| {
            calls += 1;
            Ok(())
        });
        assert_eq!(calls, 17);
    }

    #[test]
    fn rejects_do_not_count_as_successes() {
        let mut calls = 0u32;
        run_cases("rejects", &ProptestConfig::with_cases(5), |rng| {
            calls += 1;
            if rng.next_u64() % 2 == 0 {
                Err(TestCaseError::reject("coin"))
            } else {
                Ok(())
            }
        });
        assert!(calls > 5, "some cases must have been rejected and retried");
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_panics_with_seed() {
        run_cases("fails", &ProptestConfig::with_cases(8), |rng| {
            if rng.next_unit_f64() < 0.5 {
                Err(TestCaseError::fail("boom"))
            } else {
                Ok(())
            }
        });
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn excessive_rejects_panic() {
        let cfg = ProptestConfig {
            cases: 1,
            max_global_rejects: 10,
        };
        run_cases("always_rejects", &cfg, |_| Err(TestCaseError::reject("no")));
    }
}
