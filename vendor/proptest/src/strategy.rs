//! Value-generation strategies.
//!
//! Unlike published proptest, a strategy here generates a plain value
//! directly (no value trees / shrinking), which is all the [`crate::proptest!`]
//! runner consumes.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derived strategy applying `f` to each generated value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Free-function form of [`Strategy::generate`], used by the macro so the
/// trait does not need to be imported at every call site.
pub fn generate<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
    strategy.generate(rng)
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}", self.start, self.end
                );
                let unit = rng.next_unit_f64();
                (self.start as f64 + (self.end as f64 - self.start as f64) * unit) as $t
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Always generates a clone of the held value (`Just` in proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (see [`crate::prelude::any`]).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several magnitudes — the useful
        // subset for numeric property tests (published proptest also
        // defaults to finite values unless configured otherwise).
        let magnitude = 10f64.powf(rng.next_unit_f64() * 12.0 - 6.0);
        let sign = if rng.next_u64() & 1 == 1 { 1.0 } else { -1.0 };
        sign * magnitude * rng.next_unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy for [`Arbitrary`] types, created by [`crate::prelude::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..2_000 {
            let v = (-8i32..8).generate(&mut rng);
            assert!((-8..8).contains(&v));
            let u = (0u64..1000).generate(&mut rng);
            assert!(u < 1000);
            let s = (1usize..2).generate(&mut rng);
            assert_eq!(s, 1);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = TestRng::new(2);
        for _ in 0..2_000 {
            let v = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&v));
            let w = (-1e6f64..1e6).generate(&mut rng);
            assert!((-1e6..1e6).contains(&w));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = TestRng::new(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[(0usize..5).generate(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::new(4);
        let (m, n, k) = (1usize..12, 1usize..12, 1usize..24).generate(&mut rng);
        assert!((1..12).contains(&m) && (1..12).contains(&n) && (1..24).contains(&k));
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::new(5);
        let doubled = (1u32..10).prop_map(|v| v * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && (2..20).contains(&doubled));
    }

    #[test]
    fn arbitrary_bool_takes_both_values() {
        let mut rng = TestRng::new(6);
        let vals: Vec<bool> = (0..64).map(|_| bool::arbitrary(&mut rng)).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }
}
