//! Offline shim for `proptest` (mirrors the 1.x API subset this
//! workspace's property tests use).
//!
//! Provided:
//!
//! * the [`proptest!`] macro with the `#![proptest_config(...)]` inner
//!   attribute, `pat in strategy` bindings, and pass-through attributes;
//! * strategies: numeric ranges (`0u64..1000`, `-2.0f32..2.0`, ...),
//!   tuples of strategies, [`collection::vec`], [`prelude::any`], and
//!   [`strategy::Strategy::prop_map`];
//! * assertions: [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`prop_assume!`];
//! * [`prelude::ProptestConfig`] with `with_cases`.
//!
//! Semantics match published proptest where it matters for these tests:
//! each test runs `cases` random cases, rejected cases (via
//! `prop_assume!`) do not count toward the total and abort the run if
//! excessive, and failures panic with the failing values' description.
//! **No shrinking** is performed — the failure message instead carries
//! the deterministic case seed, and generation is derived from the test
//! name, so a failure replays identically on the next run.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Strategy producing any value of `T` (via [`Arbitrary`]).
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any(std::marker::PhantomData)
    }
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(
                stringify!($name),
                &__config,
                |__rng| {
                    $(let $pat = $crate::strategy::generate(&($strat), __rng);)+
                    #[allow(unused_mut)]
                    let mut __case = move || -> $crate::test_runner::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __case()
                },
            );
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: `{:?}`\n right: `{:?}`",
                    ::std::format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: `{:?}`",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    __l
                ),
            ));
        }
    }};
}

/// Rejects the current case (does not count as a run case) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::concat!("assumption failed: ", ::std::stringify!($cond)),
            ));
        }
    };
}
