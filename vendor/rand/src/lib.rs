//! Offline shim for the `rand` crate (mirrors the 0.9 API surface this
//! workspace uses).
//!
//! Provided subset:
//!
//! * [`RngCore`] — `next_u32` / `next_u64` / `fill_bytes`, implemented for
//!   `&mut R` so generic `R: Rng + ?Sized` call sites work as with the
//!   published crate.
//! * [`Rng`] — blanket-implemented extension trait with [`Rng::random`]
//!   and [`Rng::random_range`].
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64` (SplitMix64 seed
//!   expansion, matching the published crate's approach).
//! * [`rngs::StdRng`] — deterministic xoshiro256\*\* generator. The
//!   published `StdRng` is ChaCha12-based and explicitly documents that
//!   its stream may change between versions; this shim keeps the same
//!   contract (seeded determinism, no cross-version stream stability).

#![warn(missing_docs)]

pub mod rngs;

mod distr;

pub use distr::StandardUniform;

/// Low-level source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing extension trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard-uniform distribution
    /// (`[0, 1)` for floats, full range for integers, fair coin for bool).
    #[inline]
    fn random<T>(&mut self) -> T
    where
        StandardUniform: distr::Distribution<T>,
        Self: Sized,
    {
        distr::Distribution::sample(&StandardUniform, self)
    }

    /// Uniform sample in `[low, high)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T: distr::UniformSampled>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, a fixed-size byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_f64_is_unit_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn random_works_through_generic_and_reborrow() {
        fn through<R: Rng>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut r = StdRng::seed_from_u64(5);
        let v = through(&mut r);
        assert!((0.0..1.0).contains(&v));
        // &mut R is itself an RngCore, so trait objects still get entropy.
        let dyn_rng: &mut dyn RngCore = &mut r;
        assert_ne!(dyn_rng.next_u64(), dyn_rng.next_u64());
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = r.random_range(-5i32..7);
            assert!((-5..7).contains(&v));
            let u = r.random_range(10usize..11);
            assert_eq!(u, 10);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
