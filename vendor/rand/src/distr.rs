//! Standard-uniform sampling, mirroring `rand::distr`.

use crate::RngCore;

/// The distribution behind [`crate::Rng::random`]: `[0, 1)` for floats,
/// the full value range for integers, a fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardUniform;

/// Types that can be sampled from a distribution.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for StandardUniform {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa-significant bits.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for StandardUniform {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for StandardUniform {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`crate::Rng::random_range`].
pub trait UniformSampled: Sized {
    /// Uniform sample in `[low, high)`; panics on an empty range.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling; bias negligible for
                // span << 2^64.
                let v = (rng.next_u64() as u128 * span) >> 64;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (low as f64 + (high as f64 - low as f64) * unit) as $t
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);
