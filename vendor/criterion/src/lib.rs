//! Offline shim for `criterion` (mirrors the 0.5 API subset this
//! workspace's benches use).
//!
//! Provided: [`Criterion`], [`BenchmarkGroup`] with
//! `warm_up_time`/`measurement_time`/`sample_size`/`throughput` tuning,
//! [`BenchmarkId`], [`Throughput`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then
//! collects `sample_size` samples within `measurement_time`; median,
//! mean, stddev, min, and (when a [`Throughput`] is set) element/byte
//! rates are printed. Rates are computed from the **median** sample so a
//! single descheduled outlier cannot skew the `Melem/s` lines that BENCH
//! trajectories track. Still not the published crate's bootstrap
//! analysis — swap that in for rigorous confidence intervals.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark manager: entry point handed to `criterion_group!` targets.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards extra CLI words; treat the first
        // non-flag word as a substring filter like the real crate does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) -> &mut Self {
        let id = id.to_string();
        if self.matches(&id) {
            run_one(
                &id,
                Duration::from_millis(500),
                Duration::from_secs(2),
                10,
                None,
                f,
            );
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().map_or(true, |f| id.contains(f))
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets how many samples to collect inside the measurement window.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self._criterion.matches(&full) {
            run_one(&full, self.warm_up, self.measurement, self.sample_size, self.throughput, f);
        }
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing only; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration work declaration, used to print rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    /// Per-iteration seconds, one entry per sample.
    samples: Vec<f64>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times repeated calls of `f`: warm-up phase, then `sample_size`
    /// samples of a calibrated batch each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and calibrate the per-call cost.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warm_up || calls == 0 {
            black_box(f());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls as f64;

        // Size batches so all samples fit in the measurement window.
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_call.max(1e-9)) as u64).clamp(1, u64::MAX);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_secs_f64() / batch as f64);
        }
    }

    /// Times with a caller-measured routine: `f` receives an iteration
    /// budget and returns the elapsed time for exactly that many
    /// iterations (mirrors criterion's `iter_custom`).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        // Calibrate with a single-iteration warm-up call.
        let _ = black_box(f(1));
        let probe = f(1);
        let per_call = probe.as_secs_f64().max(1e-9);
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_call) as u64).max(1);
        for _ in 0..self.sample_size {
            let elapsed = f(batch);
            self.samples.push(elapsed.as_secs_f64() / batch as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        warm_up,
        measurement,
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {id:<40} (no samples)");
        return;
    }
    let stats = Stats::from_samples(&b.samples);
    // Throughput from the median, not the mean: one descheduled sample
    // inflates the mean arbitrarily but moves the median by at most one
    // rank, so regression trajectories stay comparable across noisy runs.
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.3} Melem/s", n as f64 / stats.median / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.3} MiB/s", n as f64 / stats.median / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!(
        "  {id:<40} median {:>11} mean {:>11} stddev {:>11} min {:>11}{rate}",
        fmt_time(stats.median),
        fmt_time(stats.mean),
        fmt_time(stats.stddev),
        fmt_time(stats.min),
    );
}

/// Summary statistics over per-iteration sample times.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stats {
    median: f64,
    mean: f64,
    stddev: f64,
    min: f64,
}

impl Stats {
    fn from_samples(samples: &[f64]) -> Stats {
        let n = samples.len();
        assert!(n > 0, "Stats requires at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let mean = sorted.iter().sum::<f64>() / n as f64;
        // Sample (Bessel-corrected) standard deviation; 0 for n == 1.
        let stddev = if n > 1 {
            (sorted.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        Stats {
            median,
            mean,
            stddev,
            min: sorted[0],
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            sample_size: 4,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 4);
        assert!(b.samples.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn group_chain_configures_and_runs() {
        let mut c = Criterion { filter: None };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("shim_smoke");
            g.warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(4))
                .sample_size(2);
            g.throughput(Throughput::Elements(8));
            g.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &n| {
                b.iter(|| n * 2);
                ran += 1;
            });
            g.finish();
        }
        assert_eq!(ran, 1);
    }

    #[test]
    fn stats_median_resists_one_outlier() {
        // Four fast samples and one 100x-slow outlier: the median (and
        // therefore reported throughput) must stay at the fast value.
        let s = Stats::from_samples(&[1.0, 1.1, 0.9, 1.0, 100.0]);
        assert_eq!(s.median, 1.0);
        assert_eq!(s.min, 0.9);
        assert!(s.mean > 20.0, "mean should absorb the outlier, got {}", s.mean);
        assert!(s.stddev > 40.0, "stddev should expose it, got {}", s.stddev);
    }

    #[test]
    fn stats_even_count_and_singleton() {
        let s = Stats::from_samples(&[4.0, 2.0, 3.0, 1.0]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        let one = Stats::from_samples(&[7.0]);
        assert_eq!(one.median, 7.0);
        assert_eq!(one.stddev, 0.0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            b.iter(|| 1);
            ran = true;
        });
        assert!(!ran);
    }
}
