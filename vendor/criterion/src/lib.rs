//! Offline shim for `criterion` (mirrors the 0.5 API subset this
//! workspace's benches use).
//!
//! Provided: [`Criterion`], [`BenchmarkGroup`] with
//! `warm_up_time`/`measurement_time`/`sample_size`/`throughput` tuning,
//! [`BenchmarkId`], [`Throughput`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then
//! collects `sample_size` samples within `measurement_time`; median,
//! mean, stddev, min, and (when a [`Throughput`] is set) element/byte
//! rates are printed. Rates are computed from the **median** sample so a
//! single descheduled outlier cannot skew the `Melem/s` lines that BENCH
//! trajectories track. Still not the published crate's bootstrap
//! analysis — swap that in for rigorous confidence intervals.
//!
//! # Machine-readable results
//!
//! When `LSGD_BENCH_JSON=<path>` is set, every completed benchmark is
//! also appended to a JSON **array** at `<path>` (the whole file is
//! rewritten after each result, so it is valid JSON even if the process
//! dies mid-run; entries already present are re-ingested first, so the
//! separate bench binaries of a whole-suite `cargo bench` accumulate
//! into one array — delete the file to start a fresh trajectory).
//! Entries carry the id, per-iteration seconds
//! (median/mean/stddev/min) and, when a [`Throughput`] was declared, the
//! per-iteration element/byte count plus the median-derived rate. CI
//! uploads these `BENCH_*.json` files as artifacts so perf trajectories
//! can be diffed across PRs.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark manager: entry point handed to `criterion_group!` targets.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards extra CLI words; treat the first
        // non-flag word as a substring filter like the real crate does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) -> &mut Self {
        let id = id.to_string();
        if self.matches(&id) {
            run_one(
                &id,
                Duration::from_millis(500),
                Duration::from_secs(2),
                10,
                None,
                f,
            );
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().map_or(true, |f| id.contains(f))
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets how many samples to collect inside the measurement window.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self._criterion.matches(&full) {
            run_one(&full, self.warm_up, self.measurement, self.sample_size, self.throughput, f);
        }
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing only; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration work declaration, used to print rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    /// Per-iteration seconds, one entry per sample.
    samples: Vec<f64>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times repeated calls of `f`: warm-up phase, then `sample_size`
    /// samples of a calibrated batch each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and calibrate the per-call cost.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warm_up || calls == 0 {
            black_box(f());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls as f64;

        // Size batches so all samples fit in the measurement window.
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_call.max(1e-9)) as u64).clamp(1, u64::MAX);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_secs_f64() / batch as f64);
        }
    }

    /// Times with a caller-measured routine: `f` receives an iteration
    /// budget and returns the elapsed time for exactly that many
    /// iterations (mirrors criterion's `iter_custom`).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        // Calibrate with a single-iteration warm-up call.
        let _ = black_box(f(1));
        let probe = f(1);
        let per_call = probe.as_secs_f64().max(1e-9);
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_call) as u64).max(1);
        for _ in 0..self.sample_size {
            let elapsed = f(batch);
            self.samples.push(elapsed.as_secs_f64() / batch as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        warm_up,
        measurement,
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {id:<40} (no samples)");
        return;
    }
    let stats = Stats::from_samples(&b.samples);
    json_sink::record(id, &stats, throughput);
    // Throughput from the median, not the mean: one descheduled sample
    // inflates the mean arbitrarily but moves the median by at most one
    // rank, so regression trajectories stay comparable across noisy runs.
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.3} Melem/s", n as f64 / stats.median / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.3} MiB/s", n as f64 / stats.median / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!(
        "  {id:<40} median {:>11} mean {:>11} stddev {:>11} min {:>11} p99 {:>11}{rate}",
        fmt_time(stats.median),
        fmt_time(stats.mean),
        fmt_time(stats.stddev),
        fmt_time(stats.min),
        fmt_time(stats.p99),
    );
}

/// Summary statistics over per-iteration sample times.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stats {
    median: f64,
    mean: f64,
    stddev: f64,
    min: f64,
    p50: f64,
    p95: f64,
    p99: f64,
}

impl Stats {
    fn from_samples(samples: &[f64]) -> Stats {
        let n = samples.len();
        assert!(n > 0, "Stats requires at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let mean = sorted.iter().sum::<f64>() / n as f64;
        // Sample (Bessel-corrected) standard deviation; 0 for n == 1.
        let stddev = if n > 1 {
            (sorted.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        // Nearest-rank (round(q·(n-1))) percentiles — the convention the
        // workspace's LogHistogram quantiles use, so bench tails and
        // trace tails are directly comparable.
        let pct = |q: f64| sorted[((q * (n - 1) as f64).round() as usize).min(n - 1)];
        Stats {
            median,
            mean,
            stddev,
            min: sorted[0],
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }
}

/// The `LSGD_BENCH_JSON` machine-readable results sink (module docs at
/// the crate root). Formatting is hand-rolled: the workspace is built
/// against offline shims, so no serde.
mod json_sink {
    use super::{Stats, Throughput};
    use std::sync::Mutex;

    /// All results recorded so far, as serialised JSON objects; the
    /// target file is rewritten from this list after every record so it
    /// always holds a complete, valid array. `None` until the first
    /// record, at which point any entries already in the target file are
    /// re-ingested — `cargo bench` runs each bench binary as a separate
    /// process, and without the re-ingest each binary would clobber the
    /// previous ones' results. Delete the file first for a fresh
    /// trajectory.
    static ENTRIES: Mutex<Option<Vec<String>>> = Mutex::new(None);

    /// Extracts the entry lines of a JSON array previously written by
    /// this sink (one `{...}` object per line — our own format only).
    fn reingest(path: &str) -> Vec<String> {
        let Ok(existing) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        existing
            .lines()
            .map(|l| l.trim().trim_end_matches(','))
            .filter(|l| l.starts_with('{') && l.ends_with('}'))
            .map(String::from)
            .collect()
    }

    /// Minimal JSON string escaping (quotes, backslashes, control chars)
    /// for benchmark ids.
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// One result as a JSON object. Seconds are emitted with `{:e}` so
    /// nanosecond-scale values survive the round trip; rates are derived
    /// from the median for the same outlier-resistance reason as the
    /// printed report.
    pub(super) fn entry_json(id: &str, stats: &Stats, throughput: Option<Throughput>) -> String {
        // `p50_s`/`p95_s`/`p99_s` are additive — older trajectory files
        // without them still parse, diff tooling just skips the tails.
        let mut s = format!(
            "{{\"id\":\"{}\",\"median_s\":{:e},\"mean_s\":{:e},\"stddev_s\":{:e},\"min_s\":{:e},\"p50_s\":{:e},\"p95_s\":{:e},\"p99_s\":{:e}",
            escape(id),
            stats.median,
            stats.mean,
            stats.stddev,
            stats.min,
            stats.p50,
            stats.p95,
            stats.p99
        );
        match throughput {
            Some(Throughput::Elements(n)) => {
                s.push_str(&format!(
                    ",\"elements\":{n},\"melem_per_s\":{:.3}",
                    n as f64 / stats.median / 1e6
                ));
            }
            Some(Throughput::Bytes(n)) => {
                s.push_str(&format!(
                    ",\"bytes\":{n},\"mib_per_s\":{:.3}",
                    n as f64 / stats.median / (1 << 20) as f64
                ));
            }
            None => {}
        }
        s.push('}');
        s
    }

    /// Records one result and (when `LSGD_BENCH_JSON` is set) rewrites
    /// the target file as a JSON array of everything recorded so far.
    /// I/O errors are reported to stderr, never panicked on — a broken
    /// sink must not fail a benchmark run.
    pub(super) fn record(id: &str, stats: &Stats, throughput: Option<Throughput>) {
        let Ok(path) = std::env::var("LSGD_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut entries = ENTRIES.lock().unwrap();
        let entries = entries.get_or_insert_with(|| reingest(&path));
        entries.push(entry_json(id, stats, throughput));
        let body = format!("[\n  {}\n]\n", entries.join(",\n  "));
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("LSGD_BENCH_JSON: cannot write {path}: {e}");
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn entry_is_valid_and_complete() {
            let stats = Stats {
                median: 1.25e-6,
                mean: 2.0e-6,
                stddev: 5.0e-7,
                min: 1.0e-6,
                p50: 1.25e-6,
                p95: 3.0e-6,
                p99: 4.0e-6,
            };
            let j = entry_json("group/bench \"x\"", &stats, Some(Throughput::Elements(1000)));
            assert!(j.starts_with('{') && j.ends_with('}'));
            assert!(j.contains("\"id\":\"group/bench \\\"x\\\"\""));
            assert!(j.contains("\"median_s\":1.25e-6"));
            assert!(j.contains("\"p95_s\":3e-6"));
            assert!(j.contains("\"p99_s\":4e-6"));
            assert!(j.contains("\"elements\":1000"));
            // 1000 elements / 1.25 µs = 800 Melem/s.
            assert!(j.contains("\"melem_per_s\":800.000"), "{j}");
            // Balanced braces/quotes — cheap well-formedness proxy given
            // there is no JSON parser in the offline shim set.
            assert_eq!(j.matches('"').count() % 2, 0);
        }

        #[test]
        fn entry_without_throughput_has_no_rate_fields() {
            let stats = Stats {
                median: 0.5,
                mean: 0.5,
                stddev: 0.0,
                min: 0.5,
                p50: 0.5,
                p95: 0.5,
                p99: 0.5,
            };
            let j = entry_json("plain", &stats, None);
            assert!(!j.contains("melem_per_s") && !j.contains("mib_per_s"));
            let b = entry_json("bytes", &stats, Some(Throughput::Bytes(1 << 20)));
            assert!(b.contains("\"mib_per_s\":2.000"), "{b}");
        }

        #[test]
        fn control_chars_are_escaped() {
            let e = escape("a\nb\t\"c\\");
            assert_eq!(e, "a\\u000ab\\u0009\\\"c\\\\");
        }

        #[test]
        fn reingest_recovers_entry_lines() {
            let dir = std::env::temp_dir().join(format!(
                "lsgd_bench_json_test_{}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("sink.json");
            let p = path.to_str().unwrap();
            std::fs::write(p, "[\n  {\"id\":\"a\",\"median_s\":1e-6},\n  {\"id\":\"b\",\"median_s\":2e-6}\n]\n").unwrap();
            let got = reingest(p);
            assert_eq!(
                got,
                vec![
                    "{\"id\":\"a\",\"median_s\":1e-6}".to_string(),
                    "{\"id\":\"b\",\"median_s\":2e-6}".to_string()
                ]
            );
            assert!(reingest(dir.join("missing.json").to_str().unwrap()).is_empty());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            sample_size: 4,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 4);
        assert!(b.samples.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn group_chain_configures_and_runs() {
        let mut c = Criterion { filter: None };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("shim_smoke");
            g.warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(4))
                .sample_size(2);
            g.throughput(Throughput::Elements(8));
            g.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &n| {
                b.iter(|| n * 2);
                ran += 1;
            });
            g.finish();
        }
        assert_eq!(ran, 1);
    }

    #[test]
    fn stats_median_resists_one_outlier() {
        // Four fast samples and one 100x-slow outlier: the median (and
        // therefore reported throughput) must stay at the fast value.
        let s = Stats::from_samples(&[1.0, 1.1, 0.9, 1.0, 100.0]);
        assert_eq!(s.median, 1.0);
        assert_eq!(s.min, 0.9);
        assert!(s.mean > 20.0, "mean should absorb the outlier, got {}", s.mean);
        assert!(s.stddev > 40.0, "stddev should expose it, got {}", s.stddev);
    }

    #[test]
    fn stats_percentiles_use_nearest_rank() {
        // 101 samples 0..=100: p50 = 50, p95 = 95, p99 = 99 exactly.
        let samples: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let s = Stats::from_samples(&samples);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        // Singleton: every percentile is the sample.
        let one = Stats::from_samples(&[7.0]);
        assert_eq!((one.p50, one.p95, one.p99), (7.0, 7.0, 7.0));
    }

    #[test]
    fn stats_even_count_and_singleton() {
        let s = Stats::from_samples(&[4.0, 2.0, 3.0, 1.0]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        let one = Stats::from_samples(&[7.0]);
        assert_eq!(one.median, 7.0);
        assert_eq!(one.stddev, 0.0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            b.iter(|| 1);
            ran = true;
        });
        assert!(!ran);
    }
}
