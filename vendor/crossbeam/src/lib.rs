//! Offline shim for `crossbeam` (mirrors the 0.8 API subset this
//! workspace uses: [`queue::SegQueue`]).

#![warn(missing_docs)]

pub mod queue;
