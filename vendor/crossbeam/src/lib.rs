//! Offline shim for `crossbeam` (mirrors the 0.8 API subset this
//! workspace uses: [`queue::SegQueue`]).
//!
//! Since the in-tree lock-free queue landed, [`queue::SegQueue`] is a
//! re-export of [`lsgd_sync::SegQueue`] — lock-free like the published
//! crate, not the original mutex-backed stand-in.

#![warn(missing_docs)]

pub mod queue;
