//! Concurrent queues.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Unbounded MPMC FIFO queue with `crossbeam::queue::SegQueue`'s API.
///
/// The published crate's implementation is lock-free (segmented linked
/// list); this shim is a mutex-guarded `VecDeque`, which preserves the
/// FIFO semantics and thread-safety of every operation but not the
/// lock-freedom. In this workspace the queue only backs the buffer-pool
/// free-list, so consistency results are unaffected; restoring true
/// lock-freedom is a ROADMAP item.
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    /// Creates an empty queue.
    pub const fn new() -> Self {
        SegQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes `value` onto the back of the queue.
    pub fn push(&self, value: T) {
        self.lock().push_back(value);
    }

    /// Pops from the front of the queue, `None` if empty.
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        SegQueue::new()
    }
}

impl<T> std::fmt::Debug for SegQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegQueue").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::SegQueue;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_push_pop_conserves_elements() {
        let q = Arc::new(SegQueue::new());
        let total: u64 = std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        q.push(t * 1_000 + i);
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..2 {
                let q = Arc::clone(&q);
                handles.push(s.spawn(move || {
                    let mut sum = 0u64;
                    let mut misses = 0;
                    while misses < 1_000 {
                        match q.pop() {
                            Some(v) => {
                                sum += v;
                                misses = 0;
                            }
                            None => {
                                misses += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    sum
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let drained: u64 = std::iter::from_fn(|| q.pop()).sum();
        let expected: u64 = (0..4_000u64).sum();
        assert_eq!(total + drained, expected);
    }
}
