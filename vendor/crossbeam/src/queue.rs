//! Concurrent queues.
//!
//! `SegQueue` here is no longer the mutex-backed stand-in this shim
//! shipped with: it re-exports the in-tree lock-free implementation from
//! [`lsgd_sync`], which matches the published crate's algorithm (a
//! segmented Michael–Scott list with CAS-only push/pop and per-slot
//! reclamation — see `lsgd_sync::queue` for the full argument). The
//! original mutex-backed queue survives as
//! `lsgd_sync::MutexSegQueue`, used as a benchmark baseline and test
//! oracle.

pub use lsgd_sync::SegQueue;

#[cfg(test)]
mod tests {
    use super::SegQueue;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_push_pop_conserves_elements() {
        let q = Arc::new(SegQueue::new());
        let total: u64 = std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        q.push(t * 1_000 + i);
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..2 {
                let q = Arc::clone(&q);
                handles.push(s.spawn(move || {
                    let mut sum = 0u64;
                    let mut misses = 0;
                    while misses < 1_000 {
                        match q.pop() {
                            Some(v) => {
                                sum += v;
                                misses = 0;
                            }
                            None => {
                                misses += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    sum
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let drained: u64 = std::iter::from_fn(|| q.pop()).sum();
        let expected: u64 = (0..4_000u64).sum();
        assert_eq!(total + drained, expected);
    }
}
