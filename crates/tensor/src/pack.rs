//! Panel packing for the blocked GEMM kernel.
//!
//! The packed kernel in [`crate::gemm`] never walks the original operand
//! buffers in its inner loop. Instead it copies one cache-block of `op(A)`
//! and `op(B)` at a time into contiguous, micro-kernel-shaped buffers:
//!
//! * [`pack_a`] lays an `mc × kc` block of `op(A)` out as `⌈mc/MR⌉`
//!   *micro-panels*. Micro-panel `p` stores rows `p*MR .. p*MR+MR` in
//!   k-major order: for each `k`, the `MR` values `op(A)[i][k]` are
//!   adjacent. The micro-kernel thus loads one contiguous `MR`-vector of
//!   `A` per `k` step.
//! * [`pack_b`] lays a `kc × nc` block of `op(B)` out as `⌈nc/NR⌉`
//!   micro-panels storing, for each `k`, the `NR` contiguous values
//!   `op(B)[k][j]`.
//!
//! Ragged edges (when `mc % MR != 0` or `nc % NR != 0`) are **zero-padded**
//! so the micro-kernel is always a full `MR × NR` tile; the macro-kernel
//! clips the zero rows/columns when writing back to `C`. Because the
//! orientation (`Transpose`) is resolved *here*, all four `(ta, tb)`
//! combinations reach the identical micro-kernel — transposition costs one
//! strided read during packing (amortised over the `mc`/`nc` reuse of the
//! packed panel) instead of a strided inner loop.

use crate::gemm::{MR, NR};

/// Packs the `mc × kc` block of `op(A)` starting at logical row `i0`,
/// logical column `k0` into `packed` as zero-padded `MR`-row micro-panels.
///
/// `a` is the *stored* row-major buffer with `a_cols` columns; `ta`
/// selects whether the logical operand is `A` or `Aᵀ`. `packed` must hold
/// at least `mc.div_ceil(MR) * MR * kc` elements.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn pack_a(
    packed: &mut [f32],
    a: &[f32],
    a_cols: usize,
    ta: bool,
    i0: usize,
    k0: usize,
    mc: usize,
    kc: usize,
) {
    let panels = mc.div_ceil(MR);
    debug_assert!(packed.len() >= panels * MR * kc);
    for p in 0..panels {
        let ib = i0 + p * MR;
        let rows = MR.min(i0 + mc - ib);
        let dst = &mut packed[p * MR * kc..(p + 1) * MR * kc];
        if ta {
            // op(A)[i][k] = a[k * a_cols + i]: each k step is one
            // contiguous run of `rows` elements of the stored buffer.
            for (k, chunk) in dst.chunks_exact_mut(MR).enumerate().take(kc) {
                let src = &a[(k0 + k) * a_cols + ib..][..rows];
                chunk[..rows].copy_from_slice(src);
                chunk[rows..].iter_mut().for_each(|v| *v = 0.0);
            }
        } else {
            // op(A)[i][k] = a[i * a_cols + k]: gather `rows` strided
            // values per k step (the only strided access in the kernel).
            for (k, chunk) in dst.chunks_exact_mut(MR).enumerate().take(kc) {
                for (r, slot) in chunk.iter_mut().enumerate() {
                    *slot = if r < rows {
                        a[(ib + r) * a_cols + (k0 + k)]
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Packs the `kc × nc` block of `op(B)` starting at logical row `k0`,
/// logical column `j0` into `packed` as zero-padded `NR`-column
/// micro-panels.
///
/// `b` is the *stored* row-major buffer with `b_cols` columns; `tb`
/// selects whether the logical operand is `B` or `Bᵀ`. `packed` must hold
/// at least `nc.div_ceil(NR) * NR * kc` elements.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn pack_b(
    packed: &mut [f32],
    b: &[f32],
    b_cols: usize,
    tb: bool,
    k0: usize,
    j0: usize,
    kc: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    debug_assert!(packed.len() >= panels * NR * kc);
    for p in 0..panels {
        let jb = j0 + p * NR;
        let cols = NR.min(j0 + nc - jb);
        let dst = &mut packed[p * NR * kc..(p + 1) * NR * kc];
        if tb {
            // op(B)[k][j] = b[j * b_cols + k]: strided gather per k step.
            for (k, chunk) in dst.chunks_exact_mut(NR).enumerate().take(kc) {
                for (c, slot) in chunk.iter_mut().enumerate() {
                    *slot = if c < cols {
                        b[(jb + c) * b_cols + (k0 + k)]
                    } else {
                        0.0
                    };
                }
            }
        } else {
            // op(B)[k][j] = b[k * b_cols + j]: contiguous copy per k step.
            for (k, chunk) in dst.chunks_exact_mut(NR).enumerate().take(kc) {
                let src = &b[(k0 + k) * b_cols + jb..][..cols];
                chunk[..cols].copy_from_slice(src);
                chunk[cols..].iter_mut().for_each(|v| *v = 0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Logical element of op(M) for a stored row-major buffer.
    fn op_at(m: &[f32], cols: usize, t: bool, r: usize, c: usize) -> f32 {
        if t {
            m[c * cols + r]
        } else {
            m[r * cols + c]
        }
    }

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 + 1.0).collect()
    }

    #[test]
    fn pack_a_both_orientations_match_logical_layout() {
        // Stored 7x5; as op(A) either 7x5 (No) or 5x7 (Yes).
        let a = seq(35);
        for (ta, lr, lc) in [(false, 7usize, 5usize), (true, 5, 7)] {
            for (i0, k0, mc, kc) in [(0, 0, lr, lc), (1, 2, lr - 2, lc - 2), (0, 0, 3, 2)] {
                let stored_cols = 5;
                let panels = mc.div_ceil(MR);
                let mut packed = vec![f32::NAN; panels * MR * kc];
                pack_a(&mut packed, &a, stored_cols, ta, i0, k0, mc, kc);
                for p in 0..panels {
                    for k in 0..kc {
                        for r in 0..MR {
                            let got = packed[p * MR * kc + k * MR + r];
                            let i = p * MR + r;
                            let want = if i < mc {
                                op_at(&a, stored_cols, ta, i0 + i, k0 + k)
                            } else {
                                0.0
                            };
                            assert_eq!(got, want, "ta={ta} p={p} k={k} r={r}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pack_b_both_orientations_match_logical_layout() {
        let b = seq(54); // stored 6x9
        for (tb, lr, lc) in [(false, 6usize, 9usize), (true, 9, 6)] {
            for (k0, j0, kc, nc) in [(0, 0, lr, lc), (1, 1, lr - 1, lc - 1), (0, 2, 2, 3)] {
                let stored_cols = 9;
                let panels = nc.div_ceil(NR);
                let mut packed = vec![f32::NAN; panels * NR * kc];
                pack_b(&mut packed, &b, stored_cols, tb, k0, j0, kc, nc);
                for p in 0..panels {
                    for k in 0..kc {
                        for c in 0..NR {
                            let got = packed[p * NR * kc + k * NR + c];
                            let j = p * NR + c;
                            let want = if j < nc {
                                op_at(&b, stored_cols, tb, k0 + k, j0 + j)
                            } else {
                                0.0
                            };
                            assert_eq!(got, want, "tb={tb} p={p} k={k} c={c}");
                        }
                    }
                }
            }
        }
    }
}
