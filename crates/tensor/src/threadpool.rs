//! Thin adapter over the unified work-stealing runtime (`lsgd_runtime`).
//!
//! Historically this module owned a condvar work-sharing pool dedicated to
//! GEMM splits, which meant two thread populations (trainer workers + GEMM
//! pool) fighting for the same cores, hand-tuned via a pool-specific env
//! knob. The pool is gone: `ThreadPool` is now an alias for
//! [`lsgd_runtime::Runtime`], whose work-stealing workers run trainer tasks
//! *and* intra-step splits, sized by the single `LSGD_THREADS` knob.
//!
//! The adapter preserves the contract the GEMM layer and its differential
//! suites rely on:
//!
//! * `ThreadPool::new(n)` / `pool.threads()` — `n` compute threads with the
//!   caller participating (`new(1)` runs everything inline).
//! * `pool.parallel_for(ntasks, f)` — runs `f(0..ntasks)` exactly once each,
//!   serial for `ntasks <= 1` or a workerless pool; panics propagate after
//!   the job quiesces.
//! * [`split_ranges`] — the deterministic contiguous partition (re-exported
//!   from the runtime). Combined with disjoint output rectangles and
//!   ascending-order reduction at the call sites, execution order is
//!   irrelevant to the result, which is what keeps serial ≡ parallel
//!   *bitwise* (`gemm_differential`, `prepacked_differential`,
//!   `fastpath_differential`).

pub use lsgd_runtime::{split_ranges, Runtime as ThreadPool};

/// The process-global runtime, sized by `LSGD_THREADS` (the deprecated
/// legacy pool knob still maps onto it with a one-time warning), else by
/// `available_parallelism()`.
pub fn global() -> &'static ThreadPool {
    lsgd_runtime::global()
}

#[cfg(all(test, not(lsgd_model)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// The adapter must hand GEMM the same execution contract the old pool
    /// gave it: exactly-once tasks, caller participation, `threads()`
    /// reporting the sized width.
    #[test]
    fn adapter_preserves_pool_contract() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let hits: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(32, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1)); // ORDERING: Relaxed test tally; join/scope exit orders the read.
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let g = global();
        assert!(g.threads() >= 1);
        assert!(std::ptr::eq(g, global()));
    }
}
