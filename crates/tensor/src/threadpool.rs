//! Minimal in-tree worker pool for data-parallel kernels.
//!
//! The registry is unreachable, so this crate cannot pull in `rayon`;
//! what the packed GEMM needs is far smaller anyway: a fixed set of
//! workers and a blocking [`ThreadPool::parallel_for`] that hands out
//! task indices from a shared atomic counter (work-stealing degenerates
//! to work-*sharing*, which is fine for a handful of equal-sized panel
//! chunks). Workers sleep on a condvar between calls — an idle pool
//! costs nothing, which matters because the SGD trainer already runs one
//! worker thread per core and the GEMM pool must not fight it for cycles
//! when unused.
//!
//! The calling thread participates in the loop (a pool of size `n` has
//! `n - 1` spawned workers), so `ThreadPool::new(1)` is exactly the
//! serial path with no threads and no synchronisation.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// One `parallel_for` invocation, shared between the caller and the
/// workers that pick it up.
struct ForJob {
    /// The caller's closure with its borrow lifetime erased to `'static`.
    /// Only dereferenced while the issuing `parallel_for` frame is
    /// blocked waiting on [`ForJob::pending`], which keeps the real
    /// (shorter-lived) borrow alive — see the transmute in
    /// [`ThreadPool::parallel_for`].
    f: &'static (dyn Fn(usize) + Sync),
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Total task count.
    total: usize,
    /// Tasks claimed-and-finished still outstanding; the job is complete
    /// when this reaches zero.
    pending: AtomicUsize,
    /// Set when any task panicked; the caller re-raises after the join.
    poisoned: AtomicBool,
    /// Completion latch the caller sleeps on.
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl ForJob {
    /// Claims and runs task indices until none remain.
    ///
    /// Panics inside a task are caught (so a worker thread survives and
    /// `pending` still reaches zero — otherwise the caller would block
    /// on [`ForJob::done_cv`] forever) and recorded in
    /// [`ForJob::poisoned`]; the issuing `parallel_for` re-raises them
    /// after every task has stopped. Catching is also what upholds the
    /// lifetime-erasure contract: no unwind can tear down the caller's
    /// frame while other threads still hold `f`.
    fn run(&self) {
        loop {
            // ORDERING: Relaxed — a pure work-claim ticket counter; task
            // data is published by the job installation, not here.
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (self.f)(i))).is_err() {
                self.poisoned.store(true, Ordering::Release);
            }
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                *self.done.lock().unwrap() = true;
                self.done_cv.notify_all();
            }
        }
    }
}

struct Shared {
    /// Pending job announcements, one entry per worker per job.
    jobs: Mutex<Vec<Arc<ForJob>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// Fixed-size worker pool; see the module docs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with total parallelism `threads` (the caller counts
    /// as one, so `threads - 1` OS threads are spawned; `threads <= 1`
    /// spawns none).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            jobs: Mutex::new(Vec::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = threads.saturating_sub(1);
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lsgd-gemm-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn gemm worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Total parallelism of the pool (spawned workers + the caller).
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `f(0), f(1), …, f(ntasks - 1)`, distributing indices across
    /// the pool's workers and the calling thread, and returns once every
    /// task has finished. Tasks must be safe to run concurrently.
    ///
    /// # Panics
    /// If any task panics, the remaining tasks still run to completion
    /// (never leaving a worker dead or the join hanging), and the panic
    /// is re-raised on the calling thread afterwards.
    pub fn parallel_for(&self, ntasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if ntasks == 0 {
            return;
        }
        if self.handles.is_empty() || ntasks == 1 {
            for i in 0..ntasks {
                f(i);
            }
            return;
        }
        // SAFETY: lifetime erasure only. The `'static` reference never
        // escapes this call: we block below until `pending == 0`, after
        // which no worker dereferences `f` again (every further claim
        // sees `next >= total` and returns without touching it).
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let job = Arc::new(ForJob {
            f: f_static,
            next: AtomicUsize::new(0),
            total: ntasks,
            pending: AtomicUsize::new(ntasks),
            poisoned: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut jobs = self.shared.jobs.lock().unwrap();
            // One announcement per worker: late arrivals to a drained job
            // see `next >= total` and return immediately.
            for _ in 0..self.handles.len().min(ntasks - 1) {
                jobs.push(Arc::clone(&job));
            }
        }
        self.shared.available.notify_all();
        job.run();
        let mut done = job.done.lock().unwrap();
        while !*done {
            done = job.done_cv.wait(done).unwrap();
        }
        drop(done);
        if job.poisoned.load(Ordering::Acquire) {
            panic!("ThreadPool::parallel_for: a task panicked");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut jobs = shared.jobs.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = jobs.pop() {
                    break job;
                }
                jobs = shared.available.wait(jobs).unwrap();
            }
        };
        job.run();
    }
}

/// Splits `0..n` into at most `max_tasks` contiguous, near-equal ranges
/// (the longer ranges first), returning an empty vector for `n == 0`.
///
/// Used by data-parallel loops whose items are whole units of work (e.g.
/// the conv layers' per-sample im2col + GEMM): handing each
/// [`ThreadPool::parallel_for`] task one contiguous range keeps per-item
/// results written to disjoint, cache-friendly regions and makes the
/// task decomposition — and therefore any ordered reduction over it —
/// deterministic for a given `(n, max_tasks)`.
pub fn split_ranges(n: usize, max_tasks: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 || max_tasks == 0 {
        return Vec::new();
    }
    let tasks = max_tasks.min(n);
    let base = n / tasks;
    let extra = n % tasks; // the first `extra` ranges get one more item
    let mut out = Vec::with_capacity(tasks);
    let mut start = 0;
    for t in 0..tasks {
        let len = base + usize::from(t < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// The process-wide pool used by `gemm_parallel`.
///
/// Sized from `LSGD_GEMM_THREADS` when set, otherwise from
/// [`std::thread::available_parallelism`] capped at 8 — GEMM panel
/// parallelism stops scaling well before the core counts the SGD trainer
/// itself is designed to occupy.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = std::env::var("LSGD_GEMM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get().min(8))
                    .unwrap_or(1)
            });
        ThreadPool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(hits.len(), &|i| {
            // ORDERING: Relaxed — test tally read after join.
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        // ORDERING: Relaxed — read after parallel_for returns (joined).
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let sum = AtomicU64::new(0);
        pool.parallel_for(10, &|i| {
            // ORDERING: Relaxed — test tally read after join.
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        // ORDERING: Relaxed — read after parallel_for returns (joined).
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn pool_survives_repeated_jobs() {
        let pool = ThreadPool::new(3);
        for round in 0..50 {
            let count = AtomicU64::new(0);
            pool.parallel_for(round % 7 + 1, &|_| {
                // ORDERING: Relaxed — test tally read after join.
                count.fetch_add(1, Ordering::Relaxed);
            });
            // ORDERING: Relaxed — read after parallel_for returns.
            assert_eq!(count.load(Ordering::Relaxed), (round % 7 + 1) as u64);
        }
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = ThreadPool::new(2);
        pool.parallel_for(0, &|_| panic!("must not run"));
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(3);
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_for(16, &|i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(hit.is_err(), "task panic must reach the caller");
        // Workers caught the unwind, so the pool keeps working.
        let count = AtomicU64::new(0);
        pool.parallel_for(8, &|_| {
            // ORDERING: Relaxed — test tally read after join.
            count.fetch_add(1, Ordering::Relaxed);
        });
        // ORDERING: Relaxed — read after parallel_for returns (joined).
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn split_ranges_partitions_exactly() {
        for (n, t) in [(0usize, 4usize), (5, 1), (5, 8), (64, 4), (7, 3), (1, 1)] {
            let ranges = split_ranges(n, t);
            if n == 0 {
                assert!(ranges.is_empty());
                continue;
            }
            assert!(ranges.len() <= t && ranges.len() <= n);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                // Near-equal: lengths differ by at most one, longest first.
                assert!(w[0].len() >= w[1].len());
                assert!(w[0].len() - w[1].len() <= 1);
            }
        }
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(4);
        pool.parallel_for(8, &|_| {});
        drop(pool); // must not hang or leak
    }
}
