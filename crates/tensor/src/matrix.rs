//! Row-major `f32` matrix.
//!
//! The experiments only ever need two-dimensional dense data (minibatches
//! of flattened images, weight matrices, im2col buffers), so a simple
//! row-major `Vec<f32>` wrapper is the right amount of machinery: it keeps
//! indexing branch-free and lets the GEMM kernel work on contiguous rows.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major `f32` matrix.
///
/// Storage is a single contiguous `Vec<f32>` of length `rows * cols`;
/// element `(r, c)` lives at `r * cols + c`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from an existing backing vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "backing vector length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(r, c)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements (`rows * cols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat immutable view of the backing storage (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the backing storage (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor; prefer [`Matrix::row`] in hot loops.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter; prefer [`Matrix::row_mut`] in hot loops.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reshapes in place. The element count must be preserved.
    ///
    /// # Panics
    /// Panics if `rows * cols != self.len()`.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        assert_eq!(rows * cols, self.data.len(), "reshape must preserve size");
        self.rows = rows;
        self.cols = cols;
    }

    /// Resizes the matrix, discarding contents, reusing the allocation when
    /// possible. All elements are reset to zero.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Resizes the matrix *without* resetting retained elements: contents
    /// are unspecified (a mix of stale values and zeros) and the caller
    /// must overwrite every element before reading any.
    ///
    /// This exists for the gradient hot path, where buffers like the
    /// activation stack are fully overwritten every iteration and the
    /// `O(rows·cols)` zero-fill of [`Matrix::resize_zeroed`] was pure
    /// overhead per step. Steady-state calls with an unchanged shape cost
    /// nothing.
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Returns the transposed matrix (allocates).
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let src = self.row(r);
            for (c, &v) in src.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Index (within each row) of the maximum element, one per row.
    /// Ties resolve to the lowest index. Used for classification argmax.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0usize;
                let mut best_v = row[0];
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute difference between two same-shape matrices.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix (no allocation).
    fn default() -> Self {
        Matrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6.min(self.rows);
        for r in 0..max_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:9.4}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m[(0, 1)], 1.0);
    }

    #[test]
    fn row_views_are_contiguous() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(m.row(1), &[2.0, 3.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(4, 7, |r, c| (r * 100 + c) as f32);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), t.get(c, r));
            }
        }
    }

    #[test]
    fn argmax_rows_with_ties_picks_first() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 3.0, 3.0, -1.0, -5.0, -0.5]);
        assert_eq!(m.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut m = Matrix::from_fn(2, 6, |r, c| (r * 6 + c) as f32);
        m.reshape(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.get(2, 3), 11.0);
    }

    #[test]
    #[should_panic]
    fn reshape_size_mismatch_panics() {
        let mut m = Matrix::zeros(2, 2);
        m.reshape(3, 3);
    }

    #[test]
    fn max_abs_diff_reports_largest_gap() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![1.5, 2.0, 0.5]);
        assert_eq!(a.max_abs_diff(&b), 2.5);
    }

    #[test]
    fn resize_zeroed_resets() {
        let mut m = Matrix::from_vec(1, 2, vec![5.0, 6.0]);
        m.resize_zeroed(2, 2);
        assert_eq!(m.rows(), 2);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
