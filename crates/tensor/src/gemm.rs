//! Packed, register-blocked general matrix multiplication.
//!
//! `gemm` computes `C = alpha * op(A) * op(B) + beta * C` where `op` is
//! identity or transpose, covering the four orientations backpropagation
//! needs (`X·Wᵀ`, `dYᵀ·X`, `dY·W`, …) without materialising transposed
//! copies.
//!
//! Entry points:
//!
//! * [`gemm`] over [`Matrix`] operands, and
//! * [`gemm_slices`] over raw `&[f32]` row-major buffers with explicit
//!   shapes — used by the neural-network layers, whose weight matrices are
//!   *sub-slices of the flat ParameterVector* (the paper's central data
//!   structure) and must be multiplied in place without copies;
//! * [`gemm_parallel`] / [`gemm_slices_parallel`] — the same contract,
//!   with the M (or, for wide outputs, N) panel loop split across the
//!   in-tree worker pool in [`crate::threadpool`]. Small products fall
//!   back to the serial path so the paper's tiny CNN im2col GEMMs never
//!   pay dispatch overhead;
//! * [`gemm_naive`] / [`gemm_naive_slices`] — the previous blocked-loop
//!   kernel, retained as the differential-testing oracle and the
//!   benchmark baseline.
//!
//! # Kernel design (BLIS-style packed panels)
//!
//! The fast path is a three-level cache-blocked loop nest in the style of
//! Goto/BLIS (`jc → pc → ic` over `NC × KC × MC` blocks):
//!
//! 1. [`crate::pack::pack_b`] copies one `KC × NC` block of `op(B)` into a
//!    contiguous buffer of `NR`-column micro-panels (zero-padded at ragged
//!    edges);
//! 2. [`crate::pack::pack_a`] copies one `MC × KC` block of `op(A)` into
//!    `MR`-row micro-panels;
//! 3. the macro-kernel sweeps `MR × NR` tiles of `C`, each computed by a
//!    register-blocked micro-kernel that keeps the whole accumulator tile
//!    in registers for the full `KC` reduction — `C` traffic per tile is
//!    one read-modify-write instead of one per `k` step, and the `MR`/`NR`
//!    loads are contiguous by construction, so the compiler auto-vectorises
//!    the fused loop without explicit intrinsics. (An optional
//!    `std::arch` SSE2 micro-kernel sits behind the `simd-intrinsics`
//!    feature for builds that want guaranteed vector code.)
//!
//! Because packing resolves the orientation up front, all four `(ta, tb)`
//! combinations — including `Aᵀ·B` and `Aᵀ·Bᵀ`, which previously ran
//! scalar fallbacks — funnel through this same micro-kernel; a transpose
//! costs one strided *pack* (amortised over panel reuse) rather than a
//! strided inner loop.
//!
//! Packing scratch lives in thread-local buffers sized to the block
//! limits, so steady-state calls do not allocate.

use crate::matrix::Matrix;
use crate::pack::{pack_a, pack_b};
use crate::panels::{PackedA, PackedB};
use crate::threadpool::{self, ThreadPool};
use std::cell::RefCell;

/// Whether an operand participates as itself or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Transpose {
    /// True for [`Transpose::Yes`].
    #[inline]
    pub fn is_t(self) -> bool {
        matches!(self, Transpose::Yes)
    }
}

/// Micro-kernel tile rows: the register block holds `MR × NR` accumulators.
pub const MR: usize = 6;
/// Micro-kernel tile columns (kept a multiple of the 4-lane SSE width).
pub const NR: usize = 8;
/// Cache block over the reduction (k) dimension: one `MR × KC` A
/// micro-panel plus one `KC × NR` B micro-panel stay L1-resident.
pub const KC: usize = 256;
/// Cache block over the M dimension: the packed `MC × KC` A panel targets
/// L2. A multiple of `MR` so interior blocks carry no zero-padded rows.
pub const MC: usize = 72;
/// Cache block over the N dimension: the packed `KC × NC` B panel targets L2/L3.
pub const NC: usize = 256;

/// The serial jc-loop and the parallel N-split must place block starts at
/// the same positions modulo the AVX2 pair width (2·NR) or panel pairing
/// — and FMA rounding — would differ between them.
const _: () = assert!(NC % (2 * NR) == 0, "NC must be a multiple of 2*NR");
const _: () = assert!(MC % MR == 0, "MC must be a multiple of MR");

/// Minimum `2·m·n·k` flop count before [`gemm_slices_parallel`] fans out;
/// below this the dispatch overhead exceeds the win (the paper's CNN
/// im2col products sit well under it).
const PAR_MIN_FLOPS: usize = 1 << 21;

/// `C = alpha * op(A) * op(B) + beta * C` over raw row-major slices.
///
/// `a_shape`, `b_shape` are the *stored* shapes `(rows, cols)` of the
/// buffers (before `op` is applied); `c_shape` is the shape of `C`.
///
/// # Panics
/// Panics if any buffer length or the operand shapes are inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn gemm_slices(
    alpha: f32,
    a: &[f32],
    a_shape: (usize, usize),
    ta: Transpose,
    b: &[f32],
    b_shape: (usize, usize),
    tb: Transpose,
    beta: f32,
    c: &mut [f32],
    c_shape: (usize, usize),
) {
    let (m, n, k) = validate(a, a_shape, ta, b, b_shape, tb, c, c_shape);
    scale_c(beta, c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    if small_m_prefers_naive(m, tb) {
        return naive_dispatch(alpha, a, b, c, ta, tb, m, n, k);
    }
    // SAFETY: `c` is the unique mutable borrow of the full `m × n` output
    // and this call covers the whole rectangle serially.
    unsafe {
        packed_gemm_rect(
            alpha,
            a,
            a_shape.1,
            ta.is_t(),
            b,
            b_shape.1,
            tb.is_t(),
            CPtr(c.as_mut_ptr()),
            n,
            (0, m),
            (0, n),
            k,
        );
    }
}

/// With only a handful of output rows and an untransposed `B`, the
/// packed kernel cannot amortise its `B`-panel copy (each packed element
/// is used `⌈m/MR⌉ ≈ 1` time) and pads `A` up to a full `MR` micro-panel,
/// while the naive `ikj`/rank-1 loops stream `B` straight from memory at
/// full vector width. The paper's per-sample CNN im2col products
/// (`4 × 9 × 676`) sit squarely in this regime.
///
/// Public so callers holding *prepacked* operands (which can only feed
/// the packed kernel) can apply the identical policy — falling back to a
/// fresh-operand [`gemm_slices`] call for shapes this predicate claims —
/// and thereby stay bitwise identical to the fresh-pack path on every
/// shape.
#[inline]
pub fn small_m_prefers_naive(m: usize, tb: Transpose) -> bool {
    !tb.is_t() && m < 8
}


/// Orientation dispatch into the retained naive kernels (post-validation,
/// post-`beta`).
#[allow(clippy::too_many_arguments)]
fn naive_dispatch(
    alpha: f32,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
) {
    match (ta.is_t(), tb.is_t()) {
        (false, false) => gemm_nn(alpha, a, b, c, m, n, k),
        (false, true) => gemm_nt(alpha, a, b, c, m, n, k),
        (true, false) => gemm_tn(alpha, a, b, c, m, n, k),
        (true, true) => gemm_tt(alpha, a, b, c, m, n, k),
    }
}

/// `C = alpha * op(A) * op(B) + beta * C` over [`Matrix`] operands.
///
/// # Panics
/// Panics if the shapes are inconsistent.
pub fn gemm(
    alpha: f32,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f32,
    c: &mut Matrix,
) {
    let a_shape = (a.rows(), a.cols());
    let b_shape = (b.rows(), b.cols());
    let c_shape = (c.rows(), c.cols());
    gemm_slices(
        alpha,
        a.as_slice(),
        a_shape,
        ta,
        b.as_slice(),
        b_shape,
        tb,
        beta,
        c.as_mut_slice(),
        c_shape,
    );
}

/// Convenience wrapper allocating the output: `op(A) * op(B)`.
pub fn matmul(a: &Matrix, ta: Transpose, b: &Matrix, tb: Transpose) -> Matrix {
    let m = if ta.is_t() { a.cols() } else { a.rows() };
    let n = if tb.is_t() { b.rows() } else { b.cols() };
    let mut c = Matrix::zeros(m, n);
    gemm(1.0, a, ta, b, tb, 0.0, &mut c);
    c
}

// ---------------------------------------------------------------------------
// Parallel entry points
// ---------------------------------------------------------------------------

/// [`gemm_slices`] with the panel loop split across the global worker pool.
///
/// Falls back to the serial kernel when the pool has a single thread or
/// the product is too small to amortise dispatch (see `PAR_MIN_FLOPS`).
/// Results are bitwise identical to the serial kernel: threads partition
/// `C` disjointly and each partition runs the same blocked loop.
#[allow(clippy::too_many_arguments)]
pub fn gemm_slices_parallel(
    alpha: f32,
    a: &[f32],
    a_shape: (usize, usize),
    ta: Transpose,
    b: &[f32],
    b_shape: (usize, usize),
    tb: Transpose,
    beta: f32,
    c: &mut [f32],
    c_shape: (usize, usize),
) {
    gemm_slices_parallel_in(
        threadpool::global(),
        alpha,
        a,
        a_shape,
        ta,
        b,
        b_shape,
        tb,
        beta,
        c,
        c_shape,
    );
}

/// [`gemm_slices_parallel`] against an explicit [`ThreadPool`] (used by the
/// differential tests to exercise the parallel path regardless of the
/// host's core count).
#[allow(clippy::too_many_arguments)]
pub fn gemm_slices_parallel_in(
    pool: &ThreadPool,
    alpha: f32,
    a: &[f32],
    a_shape: (usize, usize),
    ta: Transpose,
    b: &[f32],
    b_shape: (usize, usize),
    tb: Transpose,
    beta: f32,
    c: &mut [f32],
    c_shape: (usize, usize),
) {
    let (m, n, k) = validate(a, a_shape, ta, b, b_shape, tb, c, c_shape);
    scale_c(beta, c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    if small_m_prefers_naive(m, tb) {
        // Same fast path as the serial entry point: keeps parallel and
        // serial results bitwise identical for every shape.
        return naive_dispatch(alpha, a, b, c, ta, tb, m, n, k);
    }
    let threads = pool.threads();
    if threads <= 1 || 2 * m * n * k < PAR_MIN_FLOPS {
        // SAFETY: unique borrow of C, whole rectangle, serial.
        unsafe {
            packed_gemm_rect(
                alpha,
                a,
                a_shape.1,
                ta.is_t(),
                b,
                b_shape.1,
                tb.is_t(),
                CPtr(c.as_mut_ptr()),
                n,
                (0, m),
                (0, n),
                k,
            );
        }
        return;
    }

    // Partition C into disjoint rectangles: by M-panels when there are
    // enough rows to feed every thread a micro-panel multiple, otherwise
    // (short-and-wide outputs) by N-panels.
    let (split_rows, chunk, ntasks) = if m >= threads * MR {
        let chunk = m.div_ceil(threads).next_multiple_of(MR);
        (true, chunk, m.div_ceil(chunk))
    } else if n >= threads * NR {
        // Column chunks are aligned to the *paired* panel width (2·NR),
        // not NR: the AVX2 macro-kernel consumes B panels in pairs
        // starting from each block's first panel, so only 2·NR-aligned
        // block starts keep the pair grouping — and therefore the FMA
        // rounding of every element — identical to the serial kernel's
        // NC-aligned blocks (NC is a multiple of 2·NR by const assert).
        let chunk = n.div_ceil(threads).next_multiple_of(2 * NR);
        (false, chunk, n.div_ceil(chunk))
    } else {
        (true, m, 1)
    };
    let cp = CPtr(c.as_mut_ptr());
    let (a_cols, b_cols) = (a_shape.1, b_shape.1);
    let (ta, tb) = (ta.is_t(), tb.is_t());
    pool.parallel_for(ntasks, &|t| {
        let (rows, cols) = if split_rows {
            ((t * chunk, ((t + 1) * chunk).min(m)), (0, n))
        } else {
            ((0, m), (t * chunk, ((t + 1) * chunk).min(n)))
        };
        // SAFETY: tasks cover pairwise-disjoint rectangles of C (distinct
        // `t` ⇒ distinct row or column ranges), and `parallel_for` joins
        // every task before returning, so the `&mut c` borrow outlives
        // all writes through `cp`.
        unsafe {
            packed_gemm_rect(alpha, a, a_cols, ta, b, b_cols, tb, cp, n, rows, cols, k);
        }
    });
}

/// [`gemm`] with the panel loop split across the global worker pool.
pub fn gemm_parallel(
    alpha: f32,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f32,
    c: &mut Matrix,
) {
    let a_shape = (a.rows(), a.cols());
    let b_shape = (b.rows(), b.cols());
    let c_shape = (c.rows(), c.cols());
    gemm_slices_parallel(
        alpha,
        a.as_slice(),
        a_shape,
        ta,
        b.as_slice(),
        b_shape,
        tb,
        beta,
        c.as_mut_slice(),
        c_shape,
    );
}

// ---------------------------------------------------------------------------
// Flexible-source entry points (prepacked panels / fused custom packing)
// ---------------------------------------------------------------------------

/// Where the `A` operand of a [`gemm_flex`] call comes from.
pub enum ASource<'a> {
    /// A row-major slice packed fresh per cache block (the classic path).
    Slices {
        /// Stored row-major buffer.
        a: &'a [f32],
        /// Stored `(rows, cols)` before `op` is applied.
        shape: (usize, usize),
        /// Orientation.
        trans: Transpose,
    },
    /// Panels prepacked once (e.g. a weight matrix reused across every
    /// GEMM of an SGD step — see [`crate::panels`]). Skips `pack_a`.
    Prepacked(&'a PackedA),
}

impl ASource<'_> {
    /// Logical `(m, k)` after `op`.
    fn dims(&self) -> (usize, usize) {
        match self {
            ASource::Slices { a, shape, trans } => {
                assert_eq!(a.len(), shape.0 * shape.1, "gemm_flex: A buffer length");
                if trans.is_t() {
                    (shape.1, shape.0)
                } else {
                    *shape
                }
            }
            ASource::Prepacked(pa) => pa.dims(),
        }
    }
}

/// A caller-supplied block packer: `pack(dst, k0, j0, kc, nc)` fills
/// `dst` with the panel-layout block `[k0..k0+kc) x [j0..j0+nc)` of the
/// logical operand (see [`BSource::Packer`]).
pub type BlockPacker<'a> = dyn Fn(&mut [f32], usize, usize, usize, usize) + Sync + 'a;

/// Where the `B` operand of a [`gemm_flex`] call comes from.
pub enum BSource<'a> {
    /// A row-major slice packed fresh per cache block (the classic path).
    Slices {
        /// Stored row-major buffer.
        b: &'a [f32],
        /// Stored `(rows, cols)` before `op` is applied.
        shape: (usize, usize),
        /// Orientation.
        trans: Transpose,
    },
    /// Panels prepacked once per SGD step (see [`crate::panels`]).
    Prepacked(&'a PackedB),
    /// A custom block packer, for operands that are cheaper to *generate*
    /// in panel layout than to materialise and re-pack — the conv layer's
    /// fused im2col lowering. `pack(dst, k0, j0, kc, nc)` must fill `dst`
    /// with exactly what [`crate::pack::pack_b`] would produce for that
    /// block of the logical `k × n` operand (zero-padded `NR`-column
    /// micro-panels), so results stay bitwise identical to materialising
    /// the operand and calling [`gemm_slices`].
    Packer {
        /// Block packer: `(dst, k0, j0, kc, nc)`.
        pack: &'a BlockPacker<'a>,
        /// Logical `(k, n)` of the operand.
        shape: (usize, usize),
    },
}

impl BSource<'_> {
    /// Logical `(k, n)` after `op`.
    fn dims(&self) -> (usize, usize) {
        match self {
            BSource::Slices { b, shape, trans } => {
                assert_eq!(b.len(), shape.0 * shape.1, "gemm_flex: B buffer length");
                if trans.is_t() {
                    (shape.1, shape.0)
                } else {
                    *shape
                }
            }
            BSource::Prepacked(pb) => pb.dims(),
            BSource::Packer { shape, .. } => *shape,
        }
    }
}

/// `C = alpha * op(A) * op(B) + beta * C` where either operand may be a
/// plain slice, a prepacked panel set, or (for `B`) a custom block
/// packer. Always runs the packed kernel; results are bitwise identical
/// to [`gemm_slices`] whenever that call would take the packed path
/// (callers holding prepacked operands should consult
/// [`small_m_prefers_naive`] and fall back to [`gemm_slices`] for shapes
/// it claims, as the nn layers do).
///
/// # Panics
/// Panics on shape/buffer-length inconsistencies.
pub fn gemm_flex(
    alpha: f32,
    a: &ASource<'_>,
    b: &BSource<'_>,
    beta: f32,
    c: &mut [f32],
    c_shape: (usize, usize),
) {
    let (m, n, k) = validate_flex(a, b, c, c_shape);
    scale_c(beta, c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    // SAFETY: unique mutable borrow of the whole `m × n` output, serial.
    unsafe {
        flex_gemm_rect(alpha, a, b, CPtr(c.as_mut_ptr()), n, (0, m), (0, n), k);
    }
}

/// [`gemm_flex`] with the M-panel loop split across `pool`.
///
/// Unlike [`gemm_slices_parallel`] this splits **rows only** (each task
/// sweeps the full `jc`/`pc` block loops from column 0), because
/// prepacked `B` blocks exist only at `NC`-aligned starts; row chunks are
/// `MC`-aligned so prepacked `A` blocks line up too. Serial and parallel
/// results are bitwise identical for the same reason as
/// [`gemm_slices_parallel`]: tasks own disjoint row bands of `C` and run
/// the identical blocked loop over them.
pub fn gemm_flex_parallel_in(
    pool: &ThreadPool,
    alpha: f32,
    a: &ASource<'_>,
    b: &BSource<'_>,
    beta: f32,
    c: &mut [f32],
    c_shape: (usize, usize),
) {
    let (m, n, k) = validate_flex(a, b, c, c_shape);
    scale_c(beta, c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    let threads = pool.threads();
    let cp = CPtr(c.as_mut_ptr());
    if threads <= 1 || 2 * m * n * k < PAR_MIN_FLOPS || m < 2 * MC {
        // SAFETY: unique borrow of C, whole rectangle, serial.
        unsafe {
            flex_gemm_rect(alpha, a, b, cp, n, (0, m), (0, n), k);
        }
        return;
    }
    // MC-aligned row chunks keep every task's `ic` block starts at the
    // positions prepacked A blocks live at (multiples of MC from zero).
    let chunk = m.div_ceil(threads).next_multiple_of(MC);
    let ntasks = m.div_ceil(chunk);
    pool.parallel_for(ntasks, &|t| {
        let rows = (t * chunk, ((t + 1) * chunk).min(m));
        // SAFETY: tasks cover pairwise-disjoint row bands of C, and
        // `parallel_for` joins every task before returning, so the
        // `&mut c` borrow outlives all writes through `cp`.
        unsafe {
            flex_gemm_rect(alpha, a, b, cp, n, rows, (0, n), k);
        }
    });
}

/// [`gemm_flex_parallel_in`] against the global worker pool.
pub fn gemm_flex_parallel(
    alpha: f32,
    a: &ASource<'_>,
    b: &BSource<'_>,
    beta: f32,
    c: &mut [f32],
    c_shape: (usize, usize),
) {
    gemm_flex_parallel_in(threadpool::global(), alpha, a, b, beta, c, c_shape);
}

/// Shape validation for the flexible-source entry points.
fn validate_flex(
    a: &ASource<'_>,
    b: &BSource<'_>,
    c: &[f32],
    c_shape: (usize, usize),
) -> (usize, usize, usize) {
    let (m, k) = a.dims();
    let (kb, n) = b.dims();
    assert_eq!(k, kb, "gemm_flex: inner dimensions disagree ({k} vs {kb})");
    assert_eq!(c.len(), c_shape.0 * c_shape.1, "gemm_flex: C buffer length");
    assert_eq!(c_shape, (m, n), "gemm_flex: C shape");
    (m, n, k)
}

// ---------------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------------

/// Checks buffer lengths and operand shapes; returns the logical `(m, n, k)`.
#[allow(clippy::too_many_arguments)]
fn validate(
    a: &[f32],
    a_shape: (usize, usize),
    ta: Transpose,
    b: &[f32],
    b_shape: (usize, usize),
    tb: Transpose,
    c: &[f32],
    c_shape: (usize, usize),
) -> (usize, usize, usize) {
    assert_eq!(a.len(), a_shape.0 * a_shape.1, "gemm: A buffer length");
    assert_eq!(b.len(), b_shape.0 * b_shape.1, "gemm: B buffer length");
    assert_eq!(c.len(), c_shape.0 * c_shape.1, "gemm: C buffer length");
    let (m, k) = if ta.is_t() {
        (a_shape.1, a_shape.0)
    } else {
        a_shape
    };
    let (kb, n) = if tb.is_t() {
        (b_shape.1, b_shape.0)
    } else {
        b_shape
    };
    assert_eq!(k, kb, "gemm: inner dimensions disagree ({k} vs {kb})");
    assert_eq!(c_shape, (m, n), "gemm: C shape");
    (m, n, k)
}

/// Applies the `beta * C` term. `beta == 0` overwrites (so pre-existing
/// NaN/Inf in `C` cannot propagate), `beta == 1` is a no-op.
fn scale_c(beta: f32, c: &mut [f32]) {
    if beta != 1.0 {
        if beta == 0.0 {
            c.iter_mut().for_each(|v| *v = 0.0);
        } else {
            c.iter_mut().for_each(|v| *v *= beta);
        }
    }
}

/// Raw pointer to `C` that may cross a thread boundary.
///
/// Each parallel task owns a disjoint rectangle of `C`; sending the base
/// pointer (rather than overlapping `&mut` slices) keeps the aliasing
/// model honest. All dereferences happen in [`packed_gemm_rect`] under
/// its documented disjointness contract.
#[derive(Clone, Copy)]
struct CPtr(*mut f32);
unsafe impl Send for CPtr {}
unsafe impl Sync for CPtr {}

thread_local! {
    /// Per-thread packing scratch (`A` panel, `B` panel), grown on demand
    /// and reused across calls so steady-state GEMMs never allocate.
    static PACK_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Internal `A` operand handle for the blocked rect kernel.
enum ARef<'a> {
    /// Pack fresh per block from a stored row-major buffer.
    Pack { a: &'a [f32], a_cols: usize, ta: bool },
    /// Serve blocks from a full prepacked operand.
    Pre(&'a PackedA),
}

/// Internal `B` operand handle for the blocked rect kernel.
enum BRef<'a> {
    /// Pack fresh per block from a stored row-major buffer.
    Pack { b: &'a [f32], b_cols: usize, tb: bool },
    /// Serve blocks from a full prepacked operand.
    Pre(&'a PackedB),
    /// Generate blocks with a caller-supplied packer (fused im2col).
    Custom(&'a BlockPacker<'a>),
}

/// Serial packed kernel over the rectangle `rows × cols` of `C`.
///
/// # Safety
/// `cp` must point to a live `.. × c_cols` row-major buffer covering the
/// rectangle, and no other thread may read or write that rectangle for
/// the duration of the call.
#[allow(clippy::too_many_arguments)]
unsafe fn packed_gemm_rect(
    alpha: f32,
    a: &[f32],
    a_cols: usize,
    ta: bool,
    b: &[f32],
    b_cols: usize,
    tb: bool,
    cp: CPtr,
    c_cols: usize,
    rows: (usize, usize),
    cols: (usize, usize),
    k: usize,
) {
    packed_rect(
        alpha,
        &ARef::Pack { a, a_cols, ta },
        &BRef::Pack { b, b_cols, tb },
        cp,
        c_cols,
        rows,
        cols,
        k,
    );
}

/// [`packed_rect`] over the public flexible sources.
///
/// # Safety
/// Same contract as [`packed_gemm_rect`].
#[allow(clippy::too_many_arguments)]
unsafe fn flex_gemm_rect(
    alpha: f32,
    a: &ASource<'_>,
    b: &BSource<'_>,
    cp: CPtr,
    c_cols: usize,
    rows: (usize, usize),
    cols: (usize, usize),
    k: usize,
) {
    let aref = match a {
        ASource::Slices { a, shape, trans } => ARef::Pack {
            a,
            a_cols: shape.1,
            ta: trans.is_t(),
        },
        ASource::Prepacked(pa) => ARef::Pre(pa),
    };
    let bref = match b {
        BSource::Slices { b, shape, trans } => BRef::Pack {
            b,
            b_cols: shape.1,
            tb: trans.is_t(),
        },
        BSource::Prepacked(pb) => BRef::Pre(pb),
        BSource::Packer { pack, .. } => BRef::Custom(*pack),
    };
    packed_rect(alpha, &aref, &bref, cp, c_cols, rows, cols, k);
}

/// The three-level blocked loop nest over any operand sources. Block
/// geometry is *identical* regardless of source — prepacked operands
/// store blocks at exactly the `(MC, KC, NC)`-aligned starts this loop
/// visits, and custom packers fill the same `pack_b` panel layout — so
/// every source combination feeds the macro-kernel the same bytes in the
/// same order and results are bitwise identical across them.
///
/// # Safety
/// Same contract as [`packed_gemm_rect`]. Additionally, prepacked
/// operands require their aligned block starts: `rows.0 % MC == 0` when
/// `A` is prepacked, `cols.0 % NC == 0` when `B` is (upheld by the
/// public entry points, which row-split at `MC` multiples and never
/// column-split non-slice sources).
#[allow(clippy::too_many_arguments)]
unsafe fn packed_rect(
    alpha: f32,
    a: &ARef<'_>,
    b: &BRef<'_>,
    cp: CPtr,
    c_cols: usize,
    rows: (usize, usize),
    cols: (usize, usize),
    k: usize,
) {
    let (i_lo, i_hi) = rows;
    let (j_lo, j_hi) = cols;
    if i_lo >= i_hi || j_lo >= j_hi {
        return;
    }
    PACK_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let (ref mut abuf, ref mut bbuf) = *scratch;
        let kc_max = KC.min(k);
        let mc_max = MC.min(i_hi - i_lo).div_ceil(MR) * MR;
        let nc_max = NC.min(j_hi - j_lo).div_ceil(NR) * NR;
        abuf.resize(mc_max * kc_max, 0.0);
        bbuf.resize(nc_max * kc_max, 0.0);

        for jc in (j_lo..j_hi).step_by(NC) {
            let nc = NC.min(j_hi - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                let bpanel: &[f32] = match b {
                    BRef::Pack { b, b_cols, tb } => {
                        pack_b(bbuf, b, *b_cols, *tb, pc, jc, kc, nc);
                        bbuf
                    }
                    BRef::Pre(pb) => pb.block(pc, jc),
                    BRef::Custom(pack) => {
                        pack(&mut bbuf[..nc.div_ceil(NR) * NR * kc], pc, jc, kc, nc);
                        bbuf
                    }
                };
                for ic in (i_lo..i_hi).step_by(MC) {
                    let mc = MC.min(i_hi - ic);
                    let apanel: &[f32] = match a {
                        ARef::Pack { a, a_cols, ta } => {
                            pack_a(abuf, a, *a_cols, *ta, ic, pc, mc, kc);
                            abuf
                        }
                        ARef::Pre(pa) => pa.block(ic, pc),
                    };
                    macro_kernel(alpha, apanel, bpanel, mc, nc, kc, cp, c_cols, ic, jc);
                }
            }
        }
    });
}

/// Sweeps `MR × NR` tiles of one `mc × nc` block of `C`, invoking the
/// micro-kernel on packed panels and clipping zero-padded edges on
/// write-back.
///
/// Safety: see [`packed_gemm_rect`] — `cp` covers the block exclusively.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    alpha: f32,
    packed_a: &[f32],
    packed_b: &[f32],
    mc: usize,
    nc: usize,
    kc: usize,
    cp: CPtr,
    c_cols: usize,
    i0: usize,
    j0: usize,
) {
    let npanels = nc.div_ceil(NR);
    let wide = cpu_has_avx2_fma();
    let mut jp = 0;
    while jp < npanels {
        // When the host has AVX2+FMA, consume B micro-panels in pairs so
        // the tile is MR × 2·NR across 256-bit registers; the pairing
        // changes only which register an element lands in, never its
        // per-k accumulation order, so results stay identical across
        // kernels up to the FMA contraction.
        let pair = wide && jp + 2 <= npanels;
        let width = if pair { 2 * NR } else { NR };
        let cols = width.min(nc - jp * NR);
        for ip in 0..mc.div_ceil(MR) {
            let pa = &packed_a[ip * MR * kc..(ip + 1) * MR * kc];
            let rows = MR.min(mc - ip * MR);
            let (ci, cj) = (i0 + ip * MR, j0 + jp * NR);
            if pair {
                let pb0 = &packed_b[jp * NR * kc..(jp + 1) * NR * kc];
                let pb1 = &packed_b[(jp + 1) * NR * kc..(jp + 2) * NR * kc];
                let mut acc = [[0.0f32; 2 * NR]; MR];
                // SAFETY: `cpu_has_avx2_fma()` verified the features.
                #[cfg(target_arch = "x86_64")]
                unsafe {
                    microkernel_avx2(kc, pa, pb0, pb1, &mut acc)
                };
                write_tile(alpha, &acc[..rows], cp, c_cols, ci, cj, cols);
            } else {
                let pb = &packed_b[jp * NR * kc..(jp + 1) * NR * kc];
                let mut acc = [[0.0f32; NR]; MR];
                microkernel(kc, pa, pb, &mut acc);
                write_tile(alpha, &acc[..rows], cp, c_cols, ci, cj, cols);
            }
        }
        jp += if pair { 2 } else { 1 };
    }
}

/// `C[ci..ci+rows][cj..cj+cols] += alpha * acc`, clipping the tile's
/// zero-padded edge columns.
///
/// Safety of the raw write: the rows/columns addressed lie inside the
/// rectangle this thread exclusively owns (contract of
/// [`packed_gemm_rect`]).
#[inline(always)]
fn write_tile<const W: usize>(
    alpha: f32,
    acc: &[[f32; W]],
    cp: CPtr,
    c_cols: usize,
    ci: usize,
    cj: usize,
    cols: usize,
) {
    for (r, arow) in acc.iter().enumerate() {
        // SAFETY: see function docs.
        let crow =
            unsafe { std::slice::from_raw_parts_mut(cp.0.add((ci + r) * c_cols + cj), cols) };
        for (dst, &v) in crow.iter_mut().zip(arow.iter()) {
            *dst += alpha * v;
        }
    }
}

/// Whether the host supports the 256-bit FMA micro-kernel (checked once).
#[inline]
fn cpu_has_avx2_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVX2_FMA: OnceLock<bool> = OnceLock::new();
        *AVX2_FMA.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// 256-bit micro-kernel: an `MR × 2·NR` tile over a *pair* of packed B
/// panels, one FMA per accumulator register per `k` step. Only reached
/// after [`cpu_has_avx2_fma`] returns true.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_avx2(
    kc: usize,
    pa: &[f32],
    pb0: &[f32],
    pb1: &[f32],
    acc: &mut [[f32; 2 * NR]; MR],
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(NR, 8, "kernel assumes one __m256 per packed B panel row");
    let mut vacc = [[_mm256_setzero_ps(); 2]; MR];
    for k in 0..kc {
        let b0 = _mm256_loadu_ps(pb0.as_ptr().add(k * NR));
        let b1 = _mm256_loadu_ps(pb1.as_ptr().add(k * NR));
        for (r, vrow) in vacc.iter_mut().enumerate() {
            let a = _mm256_broadcast_ss(&*pa.as_ptr().add(k * MR + r));
            vrow[0] = _mm256_fmadd_ps(a, b0, vrow[0]);
            vrow[1] = _mm256_fmadd_ps(a, b1, vrow[1]);
        }
    }
    for (r, vrow) in vacc.iter().enumerate() {
        _mm256_storeu_ps(acc[r].as_mut_ptr(), vrow[0]);
        _mm256_storeu_ps(acc[r].as_mut_ptr().add(NR), vrow[1]);
    }
}

/// Register-blocked `MR × NR` micro-kernel over packed panels.
///
/// `pa` holds `kc` steps of `MR` contiguous A values, `pb` holds `kc`
/// steps of `NR` contiguous B values; the accumulator tile stays in
/// registers for the whole reduction. The iterator shape (exact chunks,
/// fixed-size inner loops) is what lets the compiler keep `acc` in vector
/// registers and emit SIMD without intrinsics.
#[inline(always)]
fn microkernel(kc: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    {
        // SAFETY: SSE2 is part of the x86_64 baseline.
        unsafe { microkernel_sse2(kc, pa, pb, acc) };
        return;
    }
    #[allow(unreachable_code)]
    microkernel_portable(kc, pa, pb, acc);
}

/// Portable micro-kernel, written for auto-vectorisation.
#[inline(always)]
#[cfg_attr(all(feature = "simd-intrinsics", target_arch = "x86_64"), allow(dead_code))]
fn microkernel_portable(kc: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (ach, bch) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)).take(kc) {
        let bvals: &[f32; NR] = bch.try_into().unwrap();
        for (r, arow) in acc.iter_mut().enumerate() {
            let ar = ach[r];
            for (dst, &bv) in arow.iter_mut().zip(bvals.iter()) {
                *dst += ar * bv;
            }
        }
    }
}

/// Explicit SSE2 micro-kernel (`simd-intrinsics` feature): the same tile
/// shape as the portable kernel, with the `NR`-wide rows held in `__m128`
/// lanes so vectorisation does not depend on the optimiser.
#[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
#[inline(always)]
unsafe fn microkernel_sse2(kc: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    const LANES: usize = NR / 4;
    let mut vacc = [[_mm_setzero_ps(); LANES]; MR];
    for (ach, bch) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)).take(kc) {
        let mut bv = [_mm_setzero_ps(); LANES];
        for (l, b) in bv.iter_mut().enumerate() {
            *b = _mm_loadu_ps(bch.as_ptr().add(l * 4));
        }
        for (r, vrow) in vacc.iter_mut().enumerate() {
            let ar = _mm_set1_ps(ach[r]);
            for (v, &b) in vrow.iter_mut().zip(bv.iter()) {
                *v = _mm_add_ps(*v, _mm_mul_ps(ar, b));
            }
        }
    }
    for (r, vrow) in vacc.iter().enumerate() {
        for (l, &v) in vrow.iter().enumerate() {
            _mm_storeu_ps(acc[r].as_mut_ptr().add(l * 4), v);
        }
    }
}

// ---------------------------------------------------------------------------
// Retained baseline kernel (differential oracle + bench baseline)
// ---------------------------------------------------------------------------

/// The pre-packing blocked kernel over raw slices: cache-blocked `ikj`
/// loops for the `No/No` orientation, dot/axpy loops for the transposed
/// ones (scalar for `tt`). Kept verbatim as the differential-testing
/// oracle and the `gemm` bench baseline; new code should call
/// [`gemm_slices`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_naive_slices(
    alpha: f32,
    a: &[f32],
    a_shape: (usize, usize),
    ta: Transpose,
    b: &[f32],
    b_shape: (usize, usize),
    tb: Transpose,
    beta: f32,
    c: &mut [f32],
    c_shape: (usize, usize),
) {
    let (m, n, k) = validate(a, a_shape, ta, b, b_shape, tb, c, c_shape);
    scale_c(beta, c);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    naive_dispatch(alpha, a, b, c, ta, tb, m, n, k);
}

/// [`gemm_naive_slices`] over [`Matrix`] operands.
pub fn gemm_naive(
    alpha: f32,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f32,
    c: &mut Matrix,
) {
    let a_shape = (a.rows(), a.cols());
    let b_shape = (b.rows(), b.cols());
    let c_shape = (c.rows(), c.cols());
    gemm_naive_slices(
        alpha,
        a.as_slice(),
        a_shape,
        ta,
        b.as_slice(),
        b_shape,
        tb,
        beta,
        c.as_mut_slice(),
        c_shape,
    );
}

#[inline]
fn row(buf: &[f32], r: usize, cols: usize) -> &[f32] {
    &buf[r * cols..(r + 1) * cols]
}

#[inline]
fn row_mut(buf: &mut [f32], r: usize, cols: usize) -> &mut [f32] {
    &mut buf[r * cols..(r + 1) * cols]
}

/// C += alpha * A * B — A is m×k, B is k×n. ikj loop, blocked.
///
/// For `m ≤ MR` (the small-m regime this kernel is kept for — per-sample
/// conv products like `dW = dY·cols`), the loop nest is swapped to
/// `k`-outer so each B row is loaded once and streamed to all `m` output
/// rows, instead of `m` full passes over B. Each `C[i][j]` still
/// accumulates its `k` terms in ascending-`k` order, so the result is
/// **bitwise identical** to the blocked `ikj` order — only memory
/// traffic changes (~1.5× faster on the CNN's `dW` products).
fn gemm_nn(alpha: f32, a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    if m <= MR {
        for kk in 0..k {
            let brow = row(b, kk, n);
            for i in 0..m {
                let aik = alpha * a[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                axpy_inner(aik, brow, row_mut(c, i, n));
            }
        }
        return;
    }
    for i0 in (0..m).step_by(MC) {
        let i1 = (i0 + MC).min(m);
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            for i in i0..i1 {
                let arow = &row(a, i, k)[k0..k1];
                let crow = row_mut(c, i, n);
                for (kk, &aik) in arow.iter().enumerate() {
                    let aik = alpha * aik;
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = row(b, k0 + kk, n);
                    axpy_inner(aik, brow, crow);
                }
            }
        }
    }
}

/// C += alpha * A * Bᵀ — A is m×k, B is n×k (C[i][j] = A-row i · B-row j).
fn gemm_nt(alpha: f32, a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    for i in 0..m {
        let arow = row(a, i, k);
        let crow = row_mut(c, i, n);
        for (j, cij) in crow.iter_mut().enumerate().take(n) {
            let brow = row(b, j, k);
            *cij += alpha * dot_inner(arow, brow);
        }
    }
}

/// C += alpha * Aᵀ * B — A is k×m, B is k×n. Accumulate rank-1 updates row by row.
fn gemm_tn(alpha: f32, a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    for kk in 0..k {
        let arow = row(a, kk, m);
        let brow = row(b, kk, n);
        for (i, &aik) in arow.iter().enumerate().take(m) {
            let aik = alpha * aik;
            if aik == 0.0 {
                continue;
            }
            let crow = row_mut(c, i, n);
            axpy_inner(aik, brow, crow);
        }
    }
}

/// C += alpha * Aᵀ * Bᵀ — A is k×m, B is n×k. Rare orientation; explicit indexing.
fn gemm_tt(alpha: f32, a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            let brow = row(b, j, k);
            for (kk, &bjk) in brow.iter().enumerate() {
                acc += a[kk * m + i] * bjk;
            }
            c[i * n + j] += alpha * acc;
        }
    }
}

/// y += a * x over equal-length slices; shaped for auto-vectorisation.
///
/// Lengths must match: a mismatch here means an upstream shape bug, and
/// silently truncating (as this once did) would turn it into quietly
/// wrong gradients instead of a loud test failure.
#[inline]
fn axpy_inner(a: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len(), "axpy_inner: slice lengths differ");
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &mut y[..n]);
    for i in 0..n {
        y[i] += a * x[i];
    }
}

/// Dot product over equal-length slices with 4-way unrolling for ILP.
///
/// Lengths must match — see [`axpy_inner`] on why truncation is a bug.
#[inline]
fn dot_inner(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len(), "dot_inner: slice lengths differ");
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut acc = [0.0f32; 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..n {
        tail += x[i] * y[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: naive triple loop with explicit transposes.
    fn gemm_ref(
        alpha: f32,
        a: &Matrix,
        ta: Transpose,
        b: &Matrix,
        tb: Transpose,
        beta: f32,
        c: &Matrix,
    ) -> Matrix {
        let at = |i: usize, k: usize| {
            if ta.is_t() {
                a.get(k, i)
            } else {
                a.get(i, k)
            }
        };
        let bt = |k: usize, j: usize| {
            if tb.is_t() {
                b.get(j, k)
            } else {
                b.get(k, j)
            }
        };
        let (m, k) = if ta.is_t() {
            (a.cols(), a.rows())
        } else {
            (a.rows(), a.cols())
        };
        let n = if tb.is_t() { b.rows() } else { b.cols() };
        Matrix::from_fn(m, n, |i, j| {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += at(i, kk) * bt(kk, j);
            }
            alpha * acc + beta * c.get(i, j)
        })
    }

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = crate::rng::SmallRng64::new(seed);
        Matrix::from_fn(rows, cols, |_, _| s.next_f32() * 2.0 - 1.0)
    }

    fn check_all_orientations(m: usize, n: usize, k: usize, seed: u64) {
        for (ta, ar, ac) in [(Transpose::No, m, k), (Transpose::Yes, k, m)] {
            for (tb, br, bc) in [(Transpose::No, k, n), (Transpose::Yes, n, k)] {
                let a = rand_mat(ar, ac, seed);
                let b = rand_mat(br, bc, seed + 1);
                let c0 = rand_mat(m, n, seed + 2);
                let expected = gemm_ref(0.7, &a, ta, &b, tb, 0.3, &c0);
                for kernel in [gemm, gemm_naive, gemm_parallel] {
                    let mut c = c0.clone();
                    kernel(0.7, &a, ta, &b, tb, 0.3, &mut c);
                    let err = c.max_abs_diff(&expected);
                    assert!(
                        err < 1e-3 * (k as f32).max(1.0),
                        "orientation ({ta:?},{tb:?}) m={m} n={n} k={k}: err {err}"
                    );
                }
            }
        }
    }

    #[test]
    fn small_square() {
        check_all_orientations(4, 4, 4, 11);
    }

    #[test]
    fn rectangular_shapes() {
        check_all_orientations(3, 7, 5, 22);
        check_all_orientations(7, 3, 5, 33);
        check_all_orientations(1, 9, 2, 44);
    }

    #[test]
    fn shapes_crossing_block_boundaries() {
        check_all_orientations(65, 17, 260, 55);
        check_all_orientations(130, 5, 257, 66);
    }

    #[test]
    fn shapes_straddling_microtile_boundaries() {
        for (m, n, k) in [
            (MR - 1, NR + 1, 3),
            (MR + 1, NR - 1, KC + 1),
            (MC + MR - 1, NC + NR - 1, 7),
        ] {
            check_all_orientations(m, n, k, 77);
        }
    }

    #[test]
    fn degenerate_dimensions() {
        // k = 0 leaves beta*C.
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let mut c = Matrix::from_vec(2, 3, vec![1.0; 6]);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c);
        assert!(c.as_slice().iter().all(|&v| (v - 0.5).abs() < 1e-7));
    }

    #[test]
    fn alpha_zero_scales_c_only() {
        let a = rand_mat(3, 3, 1);
        let b = rand_mat(3, 3, 2);
        let mut c = Matrix::from_vec(3, 3, vec![2.0; 9]);
        gemm(0.0, &a, Transpose::No, &b, Transpose::No, 2.0, &mut c);
        assert!(c.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn beta_zero_overwrites_nan_and_inf() {
        let a = rand_mat(3, 4, 5);
        let b = rand_mat(4, 2, 6);
        let expected = matmul(&a, Transpose::No, &b, Transpose::No);
        let mut c = Matrix::from_vec(3, 2, vec![f32::NAN, f32::INFINITY, -1.0, f32::NAN, 0.0, 9.0]);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
        assert!(c.as_slice().iter().all(|v| v.is_finite()));
        assert!(c.max_abs_diff(&expected) < 1e-5);
    }

    #[test]
    fn identity_multiplication() {
        let n = 9;
        let eye = Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 });
        let x = rand_mat(n, n, 7);
        let got = matmul(&eye, Transpose::No, &x, Transpose::No);
        assert!(got.max_abs_diff(&x) < 1e-6);
        let got = matmul(&x, Transpose::No, &eye, Transpose::No);
        assert!(got.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn matmul_shapes() {
        let a = rand_mat(2, 5, 3);
        let b = rand_mat(5, 4, 4);
        let c = matmul(&a, Transpose::No, &b, Transpose::No);
        assert_eq!((c.rows(), c.cols()), (2, 4));
        let c = matmul(&a, Transpose::Yes, &a, Transpose::No);
        assert_eq!((c.rows(), c.cols()), (5, 5));
    }

    #[test]
    fn transpose_equivalence_against_materialized() {
        // op(A)=Aᵀ must equal multiplying by the materialised transpose.
        let a = rand_mat(6, 4, 9);
        let b = rand_mat(6, 5, 10);
        let fast = matmul(&a, Transpose::Yes, &b, Transpose::No);
        let slow = matmul(&a.transposed(), Transpose::No, &b, Transpose::No);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn slice_api_matches_matrix_api() {
        let a = rand_mat(5, 6, 20);
        let b = rand_mat(6, 4, 21);
        let mut c1 = Matrix::zeros(5, 4);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c1);
        let mut c2 = vec![0.0f32; 20];
        gemm_slices(
            1.0,
            a.as_slice(),
            (5, 6),
            Transpose::No,
            b.as_slice(),
            (6, 4),
            Transpose::No,
            0.0,
            &mut c2,
            (5, 4),
        );
        assert_eq!(c1.as_slice(), &c2[..]);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        // Parallel partitioning must not change the reduction order, so
        // results are bitwise equal, not merely close. The shape list
        // covers both sub-threshold serial fallbacks AND products big
        // enough to actually fan out (2·m·n·k ≥ 2²¹), in both split
        // directions: (256, 256, 64) row-splits, (16, 160, 512) and
        // (12, 2048, 50) have too few rows for 4 threads and N-split —
        // the arm where AVX2 panel pairing must stay chunk-invariant.
        let pool = ThreadPool::new(4);
        for (m, n, k) in [
            (70, 33, 129),
            (257, 64, 40),
            (3, 300, 80),
            (256, 256, 64),
            (16, 160, 512),
            (12, 2048, 50),
        ] {
            let a = rand_mat(m, k, 91);
            let b = rand_mat(k, n, 92);
            let mut c1 = Matrix::zeros(m, n);
            gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c1);
            let mut c2 = Matrix::zeros(m, n);
            gemm_slices_parallel_in(
                &pool,
                1.0,
                a.as_slice(),
                (m, k),
                Transpose::No,
                b.as_slice(),
                (k, n),
                Transpose::No,
                0.0,
                c2.as_mut_slice(),
                (m, n),
            );
            assert_eq!(c1.as_slice(), c2.as_slice(), "m={m} n={n} k={k}");
        }
    }

    #[test]
    #[should_panic]
    fn slice_api_rejects_bad_buffer_length() {
        let mut c = vec![0.0f32; 4];
        gemm_slices(
            1.0,
            &[1.0; 5],
            (2, 3),
            Transpose::No,
            &[1.0; 6],
            (3, 2),
            Transpose::No,
            0.0,
            &mut c,
            (2, 2),
        );
    }
}
