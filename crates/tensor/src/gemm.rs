//! Blocked general matrix multiplication.
//!
//! `gemm` computes `C = alpha * op(A) * op(B) + beta * C` where `op` is
//! identity or transpose, covering the four orientations backpropagation
//! needs (`X·Wᵀ`, `dYᵀ·X`, `dY·W`, …) without materialising transposed
//! copies.
//!
//! Two entry points are provided:
//!
//! * [`gemm`] over [`Matrix`] operands, and
//! * [`gemm_slices`] over raw `&[f32]` row-major buffers with explicit
//!   shapes — used by the neural-network layers, whose weight matrices are
//!   *sub-slices of the flat ParameterVector* (the paper's central data
//!   structure) and must be multiplied in place without copies.
//!
//! The kernel is a cache-blocked triple loop in `ikj` order with the inner
//! loop over contiguous `C`/`B` rows so the compiler auto-vectorises it.
//! For the shapes in the Leashed-SGD experiments (minibatch 512, layer
//! widths 128–784) this is within a small factor of a tuned BLAS and —
//! more importantly for the paper's measurements — has the same *relative*
//! cost profile between the MLP GEMMs and the CNN's many small GEMMs.

use crate::matrix::Matrix;

/// Whether an operand participates as itself or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Transpose {
    #[inline]
    fn is_t(self) -> bool {
        matches!(self, Transpose::Yes)
    }
}

/// Blocking factor over the reduction (k) dimension, sized so that a block
/// of B rows stays in L1 alongside the C accumulator rows.
const KC: usize = 256;
/// Blocking factor over the M dimension.
const MC: usize = 64;

/// `C = alpha * op(A) * op(B) + beta * C` over raw row-major slices.
///
/// `a_shape`, `b_shape` are the *stored* shapes `(rows, cols)` of the
/// buffers (before `op` is applied); `c_shape` is the shape of `C`.
///
/// # Panics
/// Panics if any buffer length or the operand shapes are inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn gemm_slices(
    alpha: f32,
    a: &[f32],
    a_shape: (usize, usize),
    ta: Transpose,
    b: &[f32],
    b_shape: (usize, usize),
    tb: Transpose,
    beta: f32,
    c: &mut [f32],
    c_shape: (usize, usize),
) {
    assert_eq!(a.len(), a_shape.0 * a_shape.1, "gemm: A buffer length");
    assert_eq!(b.len(), b_shape.0 * b_shape.1, "gemm: B buffer length");
    assert_eq!(c.len(), c_shape.0 * c_shape.1, "gemm: C buffer length");
    let (m, k) = if ta.is_t() {
        (a_shape.1, a_shape.0)
    } else {
        a_shape
    };
    let (kb, n) = if tb.is_t() {
        (b_shape.1, b_shape.0)
    } else {
        b_shape
    };
    assert_eq!(k, kb, "gemm: inner dimensions disagree ({k} vs {kb})");
    assert_eq!(c_shape, (m, n), "gemm: C shape");

    if beta != 1.0 {
        if beta == 0.0 {
            c.iter_mut().for_each(|v| *v = 0.0);
        } else {
            c.iter_mut().for_each(|v| *v *= beta);
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    // Dispatch on orientation; each variant keeps its inner loop contiguous.
    match (ta.is_t(), tb.is_t()) {
        (false, false) => gemm_nn(alpha, a, b, c, m, n, k),
        (false, true) => gemm_nt(alpha, a, b, c, m, n, k),
        (true, false) => gemm_tn(alpha, a, b, c, m, n, k),
        (true, true) => gemm_tt(alpha, a, b, c, m, n, k),
    }
}

/// `C = alpha * op(A) * op(B) + beta * C` over [`Matrix`] operands.
///
/// # Panics
/// Panics if the shapes are inconsistent.
pub fn gemm(
    alpha: f32,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f32,
    c: &mut Matrix,
) {
    let a_shape = (a.rows(), a.cols());
    let b_shape = (b.rows(), b.cols());
    let c_shape = (c.rows(), c.cols());
    gemm_slices(
        alpha,
        a.as_slice(),
        a_shape,
        ta,
        b.as_slice(),
        b_shape,
        tb,
        beta,
        c.as_mut_slice(),
        c_shape,
    );
}

/// Convenience wrapper allocating the output: `op(A) * op(B)`.
pub fn matmul(a: &Matrix, ta: Transpose, b: &Matrix, tb: Transpose) -> Matrix {
    let m = if ta.is_t() { a.cols() } else { a.rows() };
    let n = if tb.is_t() { b.rows() } else { b.cols() };
    let mut c = Matrix::zeros(m, n);
    gemm(1.0, a, ta, b, tb, 0.0, &mut c);
    c
}

#[inline]
fn row(buf: &[f32], r: usize, cols: usize) -> &[f32] {
    &buf[r * cols..(r + 1) * cols]
}

#[inline]
fn row_mut(buf: &mut [f32], r: usize, cols: usize) -> &mut [f32] {
    &mut buf[r * cols..(r + 1) * cols]
}

/// C += alpha * A * B — A is m×k, B is k×n. ikj loop, blocked.
fn gemm_nn(alpha: f32, a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    for i0 in (0..m).step_by(MC) {
        let i1 = (i0 + MC).min(m);
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            for i in i0..i1 {
                let arow = &row(a, i, k)[k0..k1];
                let crow = row_mut(c, i, n);
                for (kk, &aik) in arow.iter().enumerate() {
                    let aik = alpha * aik;
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = row(b, k0 + kk, n);
                    axpy_inner(aik, brow, crow);
                }
            }
        }
    }
}

/// C += alpha * A * Bᵀ — A is m×k, B is n×k (C[i][j] = A-row i · B-row j).
fn gemm_nt(alpha: f32, a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    for i in 0..m {
        let arow = row(a, i, k);
        let crow = row_mut(c, i, n);
        for (j, cij) in crow.iter_mut().enumerate().take(n) {
            let brow = row(b, j, k);
            *cij += alpha * dot_inner(arow, brow);
        }
    }
}

/// C += alpha * Aᵀ * B — A is k×m, B is k×n. Accumulate rank-1 updates row by row.
fn gemm_tn(alpha: f32, a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    for kk in 0..k {
        let arow = row(a, kk, m);
        let brow = row(b, kk, n);
        for (i, &aik) in arow.iter().enumerate().take(m) {
            let aik = alpha * aik;
            if aik == 0.0 {
                continue;
            }
            let crow = row_mut(c, i, n);
            axpy_inner(aik, brow, crow);
        }
    }
}

/// C += alpha * Aᵀ * Bᵀ — A is k×m, B is n×k. Rare orientation; explicit indexing.
fn gemm_tt(alpha: f32, a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            let brow = row(b, j, k);
            for (kk, &bjk) in brow.iter().enumerate() {
                acc += a[kk * m + i] * bjk;
            }
            c[i * n + j] += alpha * acc;
        }
    }
}

/// y += a * x over equal-length slices; shaped for auto-vectorisation.
#[inline]
fn axpy_inner(a: f32, x: &[f32], y: &mut [f32]) {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &mut y[..n]);
    for i in 0..n {
        y[i] += a * x[i];
    }
}

/// Dot product over equal-length slices with 4-way unrolling for ILP.
#[inline]
fn dot_inner(x: &[f32], y: &[f32]) -> f32 {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut acc = [0.0f32; 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..n {
        tail += x[i] * y[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: naive triple loop with explicit transposes.
    fn gemm_ref(
        alpha: f32,
        a: &Matrix,
        ta: Transpose,
        b: &Matrix,
        tb: Transpose,
        beta: f32,
        c: &Matrix,
    ) -> Matrix {
        let at = |i: usize, k: usize| {
            if ta.is_t() {
                a.get(k, i)
            } else {
                a.get(i, k)
            }
        };
        let bt = |k: usize, j: usize| {
            if tb.is_t() {
                b.get(j, k)
            } else {
                b.get(k, j)
            }
        };
        let (m, k) = if ta.is_t() {
            (a.cols(), a.rows())
        } else {
            (a.rows(), a.cols())
        };
        let n = if tb.is_t() { b.rows() } else { b.cols() };
        Matrix::from_fn(m, n, |i, j| {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += at(i, kk) * bt(kk, j);
            }
            alpha * acc + beta * c.get(i, j)
        })
    }

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = crate::rng::SmallRng64::new(seed);
        Matrix::from_fn(rows, cols, |_, _| s.next_f32() * 2.0 - 1.0)
    }

    fn check_all_orientations(m: usize, n: usize, k: usize, seed: u64) {
        for (ta, ar, ac) in [(Transpose::No, m, k), (Transpose::Yes, k, m)] {
            for (tb, br, bc) in [(Transpose::No, k, n), (Transpose::Yes, n, k)] {
                let a = rand_mat(ar, ac, seed);
                let b = rand_mat(br, bc, seed + 1);
                let c0 = rand_mat(m, n, seed + 2);
                let expected = gemm_ref(0.7, &a, ta, &b, tb, 0.3, &c0);
                let mut c = c0.clone();
                gemm(0.7, &a, ta, &b, tb, 0.3, &mut c);
                let err = c.max_abs_diff(&expected);
                assert!(
                    err < 1e-3 * (k as f32).max(1.0),
                    "orientation ({ta:?},{tb:?}) m={m} n={n} k={k}: err {err}"
                );
            }
        }
    }

    #[test]
    fn small_square() {
        check_all_orientations(4, 4, 4, 11);
    }

    #[test]
    fn rectangular_shapes() {
        check_all_orientations(3, 7, 5, 22);
        check_all_orientations(7, 3, 5, 33);
        check_all_orientations(1, 9, 2, 44);
    }

    #[test]
    fn shapes_crossing_block_boundaries() {
        check_all_orientations(65, 17, 260, 55);
        check_all_orientations(130, 5, 257, 66);
    }

    #[test]
    fn degenerate_dimensions() {
        // k = 0 leaves beta*C.
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let mut c = Matrix::from_vec(2, 3, vec![1.0; 6]);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c);
        assert!(c.as_slice().iter().all(|&v| (v - 0.5).abs() < 1e-7));
    }

    #[test]
    fn alpha_zero_scales_c_only() {
        let a = rand_mat(3, 3, 1);
        let b = rand_mat(3, 3, 2);
        let mut c = Matrix::from_vec(3, 3, vec![2.0; 9]);
        gemm(0.0, &a, Transpose::No, &b, Transpose::No, 2.0, &mut c);
        assert!(c.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn identity_multiplication() {
        let n = 9;
        let eye = Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 });
        let x = rand_mat(n, n, 7);
        let got = matmul(&eye, Transpose::No, &x, Transpose::No);
        assert!(got.max_abs_diff(&x) < 1e-6);
        let got = matmul(&x, Transpose::No, &eye, Transpose::No);
        assert!(got.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn matmul_shapes() {
        let a = rand_mat(2, 5, 3);
        let b = rand_mat(5, 4, 4);
        let c = matmul(&a, Transpose::No, &b, Transpose::No);
        assert_eq!((c.rows(), c.cols()), (2, 4));
        let c = matmul(&a, Transpose::Yes, &a, Transpose::No);
        assert_eq!((c.rows(), c.cols()), (5, 5));
    }

    #[test]
    fn transpose_equivalence_against_materialized() {
        // op(A)=Aᵀ must equal multiplying by the materialised transpose.
        let a = rand_mat(6, 4, 9);
        let b = rand_mat(6, 5, 10);
        let fast = matmul(&a, Transpose::Yes, &b, Transpose::No);
        let slow = matmul(&a.transposed(), Transpose::No, &b, Transpose::No);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn slice_api_matches_matrix_api() {
        let a = rand_mat(5, 6, 20);
        let b = rand_mat(6, 4, 21);
        let mut c1 = Matrix::zeros(5, 4);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c1);
        let mut c2 = vec![0.0f32; 20];
        gemm_slices(
            1.0,
            a.as_slice(),
            (5, 6),
            Transpose::No,
            b.as_slice(),
            (6, 4),
            Transpose::No,
            0.0,
            &mut c2,
            (5, 4),
        );
        assert_eq!(c1.as_slice(), &c2[..]);
    }

    #[test]
    #[should_panic]
    fn slice_api_rejects_bad_buffer_length() {
        let mut c = vec![0.0f32; 4];
        gemm_slices(
            1.0,
            &[1.0; 5],
            (2, 3),
            Transpose::No,
            &[1.0; 6],
            (3, 2),
            Transpose::No,
            0.0,
            &mut c,
            (2, 2),
        );
    }
}
