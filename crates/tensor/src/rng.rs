//! Seeded random sources.
//!
//! Two generators are provided:
//!
//! * [`SmallRng64`] — a tiny, dependency-free SplitMix64/xorshift-based
//!   generator used inside this crate's tests and in hot data-generation
//!   loops where constructing a full `StdRng` per call would dominate.
//! * Re-exported helpers over [`rand`]'s `StdRng` for code that wants the
//!   external crate's ecosystem (distribution of work across the other
//!   crates in the workspace).
//!
//! The Box–Muller [`normal`]/[`fill_normal`] helpers implement the paper's
//! parameter initialisation `theta ~ N(0, 0.01)` (Algorithm 1,
//! `rand_init`), avoiding an extra `rand_distr` dependency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Minimal xorshift64* PRNG. Deterministic, `Copy`-cheap, good enough for
/// data synthesis and shuffling (not for cryptography).
#[derive(Debug, Clone)]
pub struct SmallRng64 {
    state: u64,
    /// Second Box–Muller variate banked by [`Self::next_normal`].
    cached_normal: Option<f32>,
}

impl SmallRng64 {
    /// Creates a generator from a seed; a zero seed is remapped to a fixed
    /// non-zero constant because xorshift has an all-zero fixed point.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        // SplitMix64 scramble so that consecutive seeds give uncorrelated streams.
        s = s.wrapping_add(0x9E3779B97F4A7C15);
        s = (s ^ (s >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94D049BB133111EB);
        s ^= s >> 31;
        if s == 0 {
            s = 0x9E3779B97F4A7C15;
        }
        SmallRng64 {
            state: s,
            cached_normal: None,
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa-significant bits.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_below: empty range");
        // Multiply-shift bounded sampling; bias is negligible for n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// `lo + (hi - lo) * u` can round up to exactly `hi` (e.g. when the
    /// f32 spacing around `hi` exceeds `(hi - lo) * (1 - u)`), which
    /// would violate the half-open contract; such samples are clamped to
    /// the largest float below `hi`. Degenerate inputs (`lo >= hi`)
    /// return `lo`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        if lo >= hi {
            return lo;
        }
        let u = self.next_f32();
        let span = hi - lo;
        // For ranges wider than f32::MAX the span overflows to +inf and
        // `lo + span * u` would be +inf for every u > 0; the two-sided
        // affine form keeps each term finite there.
        let v = if span.is_finite() {
            lo + span * u
        } else {
            lo * (1.0 - u) + hi * u
        };
        if v >= hi {
            prev_f32(hi).max(lo)
        } else {
            v
        }
    }

    /// Standard normal sample via Box–Muller.
    ///
    /// Each Box–Muller transform yields an independent *pair* of
    /// variates (cos and sin branches); the second is banked and
    /// returned by the next call, halving RNG and transcendental cost in
    /// initialisation loops. `u1 == 0` (where `ln` diverges) is handled
    /// by rejection — `u1` is uniform on `[0, 1)` so the retry
    /// probability is 2⁻⁵³, not by clamping, which would bias the tail.
    #[inline]
    pub fn next_normal(&mut self) -> f32 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_normal = Some((r * theta.sin()) as f32);
        (r * theta.cos()) as f32
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }
}

/// Largest finite `f32` strictly below `x` (requires `x` finite,
/// non-NaN, and not `-inf`). Equivalent to `f32::next_down` but kept
/// in-tree to respect the workspace MSRV.
#[inline]
fn prev_f32(x: f32) -> f32 {
    debug_assert!(x.is_finite());
    if x == 0.0 {
        return -f32::from_bits(1); // smallest-magnitude negative subnormal
    }
    let bits = x.to_bits();
    // IEEE-754 monotonicity: for positive floats the predecessor is
    // bits - 1; for negative floats it is bits + 1.
    f32::from_bits(if x > 0.0 { bits - 1 } else { bits + 1 })
}

/// Seeded `StdRng` constructor, the conventional entry point for the rest
/// of the workspace.
pub fn std_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One `N(mean, std²)` sample from an arbitrary [`rand::Rng`], via
/// Box–Muller. `u1 == 0` is rejected (not clamped) for the same reason
/// as in [`SmallRng64::next_normal`].
pub fn normal<R: Rng>(rng: &mut R, mean: f32, std: f32) -> f32 {
    let u1: f64 = loop {
        let u = rng.random::<f64>();
        if u > 0.0 {
            break u;
        }
    };
    let u2: f64 = rng.random::<f64>();
    let z: f64 = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z as f32
}

/// Fills `out` with i.i.d. `N(mean, std²)` samples — the paper's
/// `rand_init()` with `mean = 0`, `std = 0.01`.
pub fn fill_normal<R: Rng>(rng: &mut R, out: &mut [f32], mean: f32, std: f32) {
    for v in out {
        *v = normal(rng, mean, std);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng64::new(42);
        let mut b = SmallRng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng64::new(1);
        let mut b = SmallRng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = SmallRng64::new(7);
        for _ in 0..10_000 {
            let v = r.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SmallRng64::new(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.next_below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn range_f32_stays_below_hi_where_rounding_forces_hi() {
        // In [2²³, 2²⁴) the f32 spacing is exactly 1, so for lo = 2²⁴ - 1,
        // hi = 2²⁴ every u ≥ 0.5 makes lo + (hi - lo) * u round to hi:
        // roughly half of all draws violated the half-open contract
        // before the clamp.
        let (lo, hi) = (16_777_215.0f32, 16_777_216.0f32);
        let mut r = SmallRng64::new(13);
        let mut clamped = 0;
        for _ in 0..10_000 {
            let v = r.range_f32(lo, hi);
            assert!((lo..hi).contains(&v), "sample {v} escaped [{lo}, {hi})");
            if v == prev_f32(hi) {
                clamped += 1;
            }
        }
        assert!(clamped > 0, "the rounding-up path was never exercised");
        // Extreme-magnitude ranges (huge spans, tiny spans, subnormal gaps).
        let cases = [
            // Span wider than f32::MAX (hi - lo overflows to +inf).
            (-3e38f32, 3e38f32),
            (f32::MIN, f32::MAX),
            (-1e38f32, 1e38f32),
            (0.0, f32::MIN_POSITIVE),
            (1e-40, 2e-40),
            (-16_777_216.0, -16_777_215.0),
            (3.0, 3.0000002),
        ];
        for (lo, hi) in cases {
            let mut r = SmallRng64::new(99);
            for _ in 0..2_000 {
                let v = r.range_f32(lo, hi);
                assert!((lo..hi).contains(&v), "sample {v} escaped [{lo}, {hi})");
            }
        }
        // Degenerate range: lo == hi has no half-open representation;
        // documented to return lo.
        assert_eq!(SmallRng64::new(1).range_f32(2.5, 2.5), 2.5);
    }

    #[test]
    fn prev_f32_is_the_immediate_predecessor() {
        for x in [1.0f32, 16_777_216.0, f32::MIN_POSITIVE, -2.5, 1e38] {
            let p = prev_f32(x);
            assert!(p < x);
            // Nothing representable lies strictly between p and x.
            let mid = (p as f64 + x as f64) / 2.0;
            let back = mid as f32;
            assert!(back == p || back == x);
        }
        assert!(prev_f32(0.0) < 0.0);
    }

    #[test]
    fn next_normal_pairs_are_deterministic_and_independent_of_interleaving() {
        // The banked sin-branch variate must not change the values a
        // fixed seed produces across clones.
        let mut a = SmallRng64::new(5);
        let mut b = SmallRng64::new(5);
        for _ in 0..100 {
            assert_eq!(a.next_normal().to_bits(), b.next_normal().to_bits());
        }
        // Consecutive samples must not be equal (cache returned twice).
        let mut r = SmallRng64::new(8);
        let pairs: Vec<f32> = (0..64).map(|_| r.next_normal()).collect();
        assert!(pairs.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SmallRng64::new(11);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let v = r.next_normal() as f64;
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn fill_normal_matches_requested_std() {
        let mut rng = std_rng(5);
        let mut buf = vec![0.0f32; 20_000];
        fill_normal(&mut rng, &mut buf, 0.0, 0.01);
        let mean = buf.iter().map(|&v| v as f64).sum::<f64>() / buf.len() as f64;
        let var =
            buf.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / buf.len() as f64;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((var.sqrt() - 0.01).abs() < 1e-3, "std {}", var.sqrt());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng64::new(9);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
