#![warn(missing_docs)]
//! # lsgd-tensor — dense linear-algebra substrate for Leashed-SGD
//!
//! The Leashed-SGD paper implements its deep-learning workloads on top of
//! Eigen (C++). This crate is the Rust equivalent substrate: a small,
//! dependency-light dense linear-algebra kernel tuned for the shapes the
//! experiments use (minibatch GEMMs on the order of `512 × 784 × 128` and
//! small convolution lowerings).
//!
//! Provided here:
//!
//! * [`Matrix`] — row-major `f32` matrix with cheap row views.
//! * [`gemm`] — packed, register-blocked matrix multiplication with
//!   transpose variants (`C = alpha * op(A) * op(B) + beta * C`), the
//!   workhorse of both the dense layers and the im2col convolution
//!   lowering. [`pack`] holds the panel-packing routines; [`threadpool`]
//!   the small worker pool behind `gemm::gemm_parallel`.
//! * [`ops`] — BLAS-1 style vector kernels (`axpy`, `dot`, `scale`, …) used
//!   by the SGD update rule itself.
//! * [`rng`] — seeded random sources, including the Box–Muller normal
//!   sampler used for the paper's `N(0, 0.01)` parameter initialisation.
//! * [`numeric`] — numerically-stable softmax / log-sum-exp helpers.
//!
//! Everything is deterministic under a seed and allocation-conscious: the
//! hot paths (`gemm`, `ops`) never allocate.

pub mod gemm;
pub mod matrix;
pub mod numeric;
pub mod ops;
pub mod pack;
pub mod panels;
pub mod rng;
pub mod threadpool;

pub use gemm::{gemm, gemm_naive, gemm_parallel, Transpose};
pub use matrix::Matrix;
pub use panels::{PackedA, PackedB, PackedPanelCache};
pub use rng::SmallRng64;
