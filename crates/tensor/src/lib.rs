#![warn(missing_docs)]
//! # lsgd-tensor — dense linear-algebra substrate for Leashed-SGD
//!
//! The Leashed-SGD paper implements its deep-learning workloads on top of
//! Eigen (C++). This crate is the Rust equivalent substrate: a small,
//! dependency-light dense linear-algebra kernel tuned for the shapes the
//! experiments use (minibatch GEMMs on the order of `512 × 784 × 128` and
//! small convolution lowerings).
//!
//! Provided here:
//!
//! * [`Matrix`] — row-major `f32` matrix with cheap row views.
//! * [`gemm`] — blocked matrix multiplication with transpose variants
//!   (`C = alpha * op(A) * op(B) + beta * C`), the workhorse of both the
//!   dense layers and the im2col convolution lowering.
//! * [`ops`] — BLAS-1 style vector kernels (`axpy`, `dot`, `scale`, …) used
//!   by the SGD update rule itself.
//! * [`rng`] — seeded random sources, including the Box–Muller normal
//!   sampler used for the paper's `N(0, 0.01)` parameter initialisation.
//! * [`numeric`] — numerically-stable softmax / log-sum-exp helpers.
//!
//! Everything is deterministic under a seed and allocation-conscious: the
//! hot paths (`gemm`, `ops`) never allocate.

pub mod gemm;
pub mod matrix;
pub mod numeric;
pub mod ops;
pub mod rng;

pub use gemm::{gemm, Transpose};
pub use matrix::Matrix;
pub use rng::SmallRng64;
