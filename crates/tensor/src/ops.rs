//! BLAS-1 style vector kernels.
//!
//! These are the primitives behind the SGD update itself
//! (`theta[i] -= eta * delta[i]`, Algorithm 1 line 18 of the paper) and
//! assorted glue in the layers. All functions are allocation-free and
//! panic on length mismatch, which turns silent shape bugs into loud ones.

/// `y += a * x`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// The SGD update step `theta -= eta * grad` (eq. (1) of the paper).
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn sgd_step(theta: &mut [f32], grad: &[f32], eta: f32) {
    axpy(-eta, grad, theta);
}

/// Dot product.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = 0.0f32;
    for (a, b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

/// `x *= a`.
#[inline]
pub fn scale(x: &mut [f32], a: f32) {
    for v in x {
        *v *= a;
    }
}

/// Element-wise `out = x - y`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn sub(x: &[f32], y: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), out.len());
    for i in 0..out.len() {
        out[i] = x[i] - y[i];
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Squared Euclidean distance between two vectors.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dist2_sq(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// Mean of a slice (0 for empty input).
#[inline]
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f32>() / x.len() as f32
    }
}

/// True iff every element is finite (no NaN / ±Inf). Used by the trainer's
/// crash detector.
#[inline]
pub fn all_finite(x: &[f32]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// In-place ReLU: `x = max(0, x)`.
#[inline]
pub fn relu_inplace(x: &mut [f32]) {
    for v in x {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Backward of ReLU: zero `grad` wherever the forward activation was zero
/// or negative.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn relu_backward(activation: &[f32], grad: &mut [f32]) {
    assert_eq!(activation.len(), grad.len());
    for (g, &a) in grad.iter_mut().zip(activation) {
        if a <= 0.0 {
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 14.0, 16.0]);
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut theta = [1.0, 1.0];
        sgd_step(&mut theta, &[0.5, -0.5], 0.1);
        assert!((theta[0] - 0.95).abs() < 1e-7);
        assert!((theta[1] - 1.05).abs() < 1e-7);
    }

    #[test]
    #[should_panic]
    fn axpy_length_mismatch_panics() {
        let mut y = [0.0; 2];
        axpy(1.0, &[1.0; 3], &mut y);
    }

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn norms_and_distances() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-7);
        assert!((dist2_sq(&[0.0, 0.0], &[3.0, 4.0]) - 25.0).abs() < 1e-6);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, -2.0, 0.0]));
        assert!(!all_finite(&[1.0, f32::NAN]));
        assert!(!all_finite(&[f32::INFINITY]));
        assert!(!all_finite(&[f32::NEG_INFINITY, 0.0]));
    }

    #[test]
    fn relu_zeroes_negatives_only() {
        let mut x = [-1.0, 0.0, 2.0];
        relu_inplace(&mut x);
        assert_eq!(x, [0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let act = [0.0, 1.0, 0.5, 0.0];
        let mut g = [9.0, 9.0, 9.0, 9.0];
        relu_backward(&act, &mut g);
        assert_eq!(g, [0.0, 9.0, 9.0, 0.0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn scale_and_sub() {
        let mut x = [1.0, -2.0];
        scale(&mut x, -3.0);
        assert_eq!(x, [-3.0, 6.0]);
        let mut out = [0.0; 2];
        sub(&[5.0, 5.0], &[2.0, 7.0], &mut out);
        assert_eq!(out, [3.0, -2.0]);
    }
}
