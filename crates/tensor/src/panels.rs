//! Prepacked weight panels reused across GEMM calls within one SGD step.
//!
//! The packed kernel in [`crate::gemm`] copies one cache block of each
//! operand into micro-kernel-shaped panels *per call*. For the
//! neural-network hot path that is wasteful in a very specific way: the
//! weight operand of a layer is **identical for every GEMM the layer
//! issues during one SGD step** — every per-sample conv product in the
//! minibatch reuses the same filter matrix, and the forward (`X·Wᵀ`) and
//! backward (`dY·W`) products of a dense layer reuse the same `W` (in two
//! different pack orientations). Re-packing it each call re-pays the
//! strided gather that packing exists to amortise.
//!
//! This module provides the missing reuse layer:
//!
//! * [`PackedA`] / [`PackedB`] — a weight matrix packed **in full** (all
//!   `MC×KC` / `KC×NC` cache blocks, in exactly the geometry the blocked
//!   loop nest consumes), so a GEMM can skip `pack_a`/`pack_b` entirely;
//! * [`PackedPanelCache`] — a small per-worker cache of such packings,
//!   keyed by `(buffer pointer, length, stored shape, orientation)` and an
//!   **epoch** stamp. [`PackedPanelCache::begin_step`] bumps the epoch;
//!   entries from a previous epoch are repacked in place (reusing their
//!   allocation) on next access. The epoch is what makes the cheap
//!   pointer key sound: workers that gather parameters into a *stable*
//!   local buffer (HOGWILD!, lock-based, sharded) overwrite the same
//!   allocation every iteration, so the pointer alone cannot detect a new
//!   parameter version — but within one `begin_step` span (one forward +
//!   backward sweep over a single `θ`) the contents cannot change.
//!
//! Packed contents are produced by the same [`crate::pack`] routines the
//! fresh-pack path uses, and consumed by the same macro/micro-kernels, so
//! results are **bitwise identical** to a fresh-pack [`crate::gemm::gemm`]
//! call (asserted by `tests/prepacked_differential.rs`).

use crate::gemm::{Transpose, KC, MC, MR, NC, NR};
use crate::pack::{pack_a, pack_b};

/// A full `op(A)` operand packed as `MR`-row micro-panels, one entry per
/// `(ic, pc)` cache block of the blocked loop nest.
#[derive(Debug, Default)]
pub struct PackedA {
    buf: Vec<f32>,
    /// Logical operand rows `m` (after `op` is applied).
    m: usize,
    /// Logical operand columns `k`.
    k: usize,
    /// Block start offsets, `ic`-major: `offsets[ic_idx * n_pc + pc_idx]`.
    offsets: Vec<usize>,
    n_pc: usize,
}

impl PackedA {
    /// Packs the whole of `op(A)` (stored row-major `a_shape`, orientation
    /// `ta`), reusing this value's allocations.
    pub fn pack(&mut self, a: &[f32], a_shape: (usize, usize), ta: Transpose) {
        assert_eq!(a.len(), a_shape.0 * a_shape.1, "PackedA: buffer length");
        let (m, k) = if ta.is_t() {
            (a_shape.1, a_shape.0)
        } else {
            a_shape
        };
        self.m = m;
        self.k = k;
        self.n_pc = k.div_ceil(KC).max(1);
        self.offsets.clear();
        self.buf.clear();
        let mut off = 0usize;
        for ic in (0..m.max(1)).step_by(MC) {
            let mc = MC.min(m - ic.min(m));
            for pc in (0..k.max(1)).step_by(KC) {
                let kc = KC.min(k - pc.min(k));
                self.offsets.push(off);
                off += mc.div_ceil(MR) * MR * kc;
            }
        }
        self.buf.resize(off, 0.0);
        if m == 0 || k == 0 {
            return;
        }
        let mut idx = 0usize;
        for ic in (0..m).step_by(MC) {
            let mc = MC.min(m - ic);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                let start = self.offsets[idx];
                let len = mc.div_ceil(MR) * MR * kc;
                pack_a(
                    &mut self.buf[start..start + len],
                    a,
                    a_shape.1,
                    ta.is_t(),
                    ic,
                    pc,
                    mc,
                    kc,
                );
                idx += 1;
            }
        }
    }

    /// Logical `(m, k)` of the packed operand.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.m, self.k)
    }

    /// The packed block starting at logical `(ic, pc)`; both must be the
    /// block-aligned starts the loop nest produces (multiples of `MC`/`KC`
    /// from zero).
    #[inline]
    pub(crate) fn block(&self, ic: usize, pc: usize) -> &[f32] {
        debug_assert_eq!(ic % MC, 0, "PackedA: unaligned ic");
        debug_assert_eq!(pc % KC, 0, "PackedA: unaligned pc");
        let idx = (ic / MC) * self.n_pc + pc / KC;
        let start = self.offsets[idx];
        let end = self
            .offsets
            .get(idx + 1)
            .copied()
            .unwrap_or(self.buf.len());
        &self.buf[start..end]
    }
}

/// A full `op(B)` operand packed as `NR`-column micro-panels, one entry
/// per `(jc, pc)` cache block of the blocked loop nest.
#[derive(Debug, Default)]
pub struct PackedB {
    buf: Vec<f32>,
    /// Logical operand rows `k`.
    k: usize,
    /// Logical operand columns `n`.
    n: usize,
    /// Block start offsets, `jc`-major: `offsets[jc_idx * n_pc + pc_idx]`.
    offsets: Vec<usize>,
    n_pc: usize,
}

impl PackedB {
    /// Packs the whole of `op(B)` (stored row-major `b_shape`, orientation
    /// `tb`), reusing this value's allocations.
    pub fn pack(&mut self, b: &[f32], b_shape: (usize, usize), tb: Transpose) {
        assert_eq!(b.len(), b_shape.0 * b_shape.1, "PackedB: buffer length");
        let (k, n) = if tb.is_t() {
            (b_shape.1, b_shape.0)
        } else {
            b_shape
        };
        self.k = k;
        self.n = n;
        self.n_pc = k.div_ceil(KC).max(1);
        self.offsets.clear();
        self.buf.clear();
        let mut off = 0usize;
        for jc in (0..n.max(1)).step_by(NC) {
            let nc = NC.min(n - jc.min(n));
            for pc in (0..k.max(1)).step_by(KC) {
                let kc = KC.min(k - pc.min(k));
                self.offsets.push(off);
                off += nc.div_ceil(NR) * NR * kc;
            }
        }
        self.buf.resize(off, 0.0);
        if k == 0 || n == 0 {
            return;
        }
        let mut idx = 0usize;
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                let start = self.offsets[idx];
                let len = nc.div_ceil(NR) * NR * kc;
                pack_b(
                    &mut self.buf[start..start + len],
                    b,
                    b_shape.1,
                    tb.is_t(),
                    pc,
                    jc,
                    kc,
                    nc,
                );
                idx += 1;
            }
        }
    }

    /// Logical `(k, n)` of the packed operand.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// The packed block starting at logical `(pc, jc)`; both must be the
    /// block-aligned starts the loop nest produces (multiples of `KC`/`NC`
    /// from zero).
    #[inline]
    pub(crate) fn block(&self, pc: usize, jc: usize) -> &[f32] {
        debug_assert_eq!(jc % NC, 0, "PackedB: unaligned jc");
        debug_assert_eq!(pc % KC, 0, "PackedB: unaligned pc");
        let idx = (jc / NC) * self.n_pc + pc / KC;
        let start = self.offsets[idx];
        let end = self
            .offsets
            .get(idx + 1)
            .copied()
            .unwrap_or(self.buf.len());
        &self.buf[start..end]
    }
}

/// Identity of a packable operand: which buffer, which stored shape,
/// which orientation. Cheap to compute and compare in the per-call hot
/// path; sound only *within one epoch* (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PanelKey {
    ptr: usize,
    len: usize,
    rows: usize,
    cols: usize,
    trans: bool,
}

impl PanelKey {
    #[inline]
    fn of(buf: &[f32], shape: (usize, usize), t: Transpose) -> Self {
        PanelKey {
            ptr: buf.as_ptr() as usize,
            len: buf.len(),
            rows: shape.0,
            cols: shape.1,
            trans: t.is_t(),
        }
    }
}

/// Per-worker cache of fully prepacked weight operands, valid for one
/// SGD step at a time (see module docs for the invalidation model).
///
/// Slots are never evicted: the population is bounded by the number of
/// distinct (layer, orientation) weight operands in the network —
/// a handful — and each slot's buffers are reused across steps, so the
/// steady-state hot path performs **zero allocation**.
#[derive(Debug, Default)]
pub struct PackedPanelCache {
    epoch: u64,
    a_slots: Vec<(PanelKey, u64, PackedA)>,
    b_slots: Vec<(PanelKey, u64, PackedB)>,
    hits: u64,
    misses: u64,
}

impl PackedPanelCache {
    /// An empty cache at epoch zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new SGD step: every cached packing becomes stale and will
    /// be repacked (in place) on its next access. Call this exactly once
    /// per parameter version — e.g. at the top of each forward pass.
    #[inline]
    pub fn begin_step(&mut self) {
        self.epoch += 1;
    }

    /// Current epoch (diagnostics/tests).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `(hits, misses)` counters over `get_a`/`get_b` calls (tests and
    /// diagnostics; a miss is any access that had to pack).
    #[inline]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The prepacked `op(A)` panels for `a`, packing (or repacking a
    /// stale/mismatched slot in place) on miss.
    pub fn get_a(&mut self, a: &[f32], a_shape: (usize, usize), ta: Transpose) -> &PackedA {
        let key = PanelKey::of(a, a_shape, ta);
        let idx = self.a_slots.iter().position(|(k, _, _)| *k == key);
        let idx = match idx {
            Some(i) => {
                if self.a_slots[i].1 != self.epoch {
                    let _span = lsgd_trace::span(lsgd_trace::Phase::Pack);
                    self.a_slots[i].2.pack(a, a_shape, ta);
                    self.a_slots[i].1 = self.epoch;
                    self.misses += 1;
                } else {
                    self.hits += 1;
                }
                i
            }
            None => {
                let _span = lsgd_trace::span(lsgd_trace::Phase::Pack);
                let mut packed = PackedA::default();
                packed.pack(a, a_shape, ta);
                self.a_slots.push((key, self.epoch, packed));
                self.misses += 1;
                self.a_slots.len() - 1
            }
        };
        &self.a_slots[idx].2
    }

    /// The prepacked `op(B)` panels for `b`, packing (or repacking a
    /// stale/mismatched slot in place) on miss.
    pub fn get_b(&mut self, b: &[f32], b_shape: (usize, usize), tb: Transpose) -> &PackedB {
        let key = PanelKey::of(b, b_shape, tb);
        let idx = self.b_slots.iter().position(|(k, _, _)| *k == key);
        let idx = match idx {
            Some(i) => {
                if self.b_slots[i].1 != self.epoch {
                    let _span = lsgd_trace::span(lsgd_trace::Phase::Pack);
                    self.b_slots[i].2.pack(b, b_shape, tb);
                    self.b_slots[i].1 = self.epoch;
                    self.misses += 1;
                } else {
                    self.hits += 1;
                }
                i
            }
            None => {
                let _span = lsgd_trace::span(lsgd_trace::Phase::Pack);
                let mut packed = PackedB::default();
                packed.pack(b, b_shape, tb);
                self.b_slots.push((key, self.epoch, packed));
                self.misses += 1;
                self.b_slots.len() - 1
            }
        };
        &self.b_slots[idx].2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 * 0.25 - 3.0).collect()
    }

    /// Prepacked blocks must byte-match a fresh `pack_a`/`pack_b` of the
    /// same block — the property the whole bitwise-identity argument
    /// rests on.
    #[test]
    fn packed_blocks_match_fresh_packing() {
        // Large enough to produce multiple MC/KC/NC blocks.
        let (rows, cols) = (2 * MC + 5, KC + 7);
        let a = seq(rows * cols);
        for ta in [Transpose::No, Transpose::Yes] {
            let (m, k) = if ta.is_t() { (cols, rows) } else { (rows, cols) };
            let mut pa = PackedA::default();
            pa.pack(&a, (rows, cols), ta);
            assert_eq!(pa.dims(), (m, k));
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                for pc in (0..k).step_by(KC) {
                    let kc = KC.min(k - pc);
                    let mut fresh = vec![f32::NAN; mc.div_ceil(MR) * MR * kc];
                    pack_a(&mut fresh, &a, cols, ta.is_t(), ic, pc, mc, kc);
                    assert_eq!(pa.block(ic, pc), &fresh[..], "A ic={ic} pc={pc}");
                }
            }
        }
        let (rows, cols) = (KC + 3, NC + NR + 1);
        let b = seq(rows * cols);
        for tb in [Transpose::No, Transpose::Yes] {
            let (k, n) = if tb.is_t() { (cols, rows) } else { (rows, cols) };
            let mut pb = PackedB::default();
            pb.pack(&b, (rows, cols), tb);
            assert_eq!(pb.dims(), (k, n));
            for jc in (0..n).step_by(NC) {
                let nc = NC.min(n - jc);
                for pc in (0..k).step_by(KC) {
                    let kc = KC.min(k - pc);
                    let mut fresh = vec![f32::NAN; nc.div_ceil(NR) * NR * kc];
                    pack_b(&mut fresh, &b, cols, tb.is_t(), pc, jc, kc, nc);
                    assert_eq!(pb.block(pc, jc), &fresh[..], "B jc={jc} pc={pc}");
                }
            }
        }
    }

    #[test]
    fn cache_hits_within_epoch_and_repacks_after_begin_step() {
        let mut cache = PackedPanelCache::new();
        let mut w = seq(40 * 30);
        let pb_buf_before = {
            let pb = cache.get_b(&w, (40, 30), Transpose::Yes);
            pb.dims()
        };
        assert_eq!(pb_buf_before, (30, 40));
        assert_eq!(cache.stats(), (0, 1));
        // Same key, same epoch: hit, no repack.
        cache.get_b(&w, (40, 30), Transpose::Yes);
        assert_eq!(cache.stats(), (1, 1));
        // Mutate the buffer in place (same pointer — the stable-local-copy
        // worker pattern). Without begin_step the cache serves stale data
        // by design; begin_step must force a repack that sees new values.
        let probe = {
            let pb = cache.get_b(&w, (40, 30), Transpose::Yes);
            pb.block(0, 0)[0]
        };
        w[0] += 100.0; // logical op(B)[0][0] for tb=Yes is w[0]
        cache.begin_step();
        let pb = cache.get_b(&w, (40, 30), Transpose::Yes);
        assert_eq!(pb.block(0, 0)[0], probe + 100.0, "stale panels survived");
        assert_eq!(cache.stats(), (2, 2));
        // One slot only: the repack reused the existing entry.
        assert_eq!(cache.b_slots.len(), 1);
    }

    #[test]
    fn distinct_operands_get_distinct_slots() {
        let mut cache = PackedPanelCache::new();
        let w1 = seq(12 * 8);
        let w2 = seq(12 * 8);
        cache.get_b(&w1, (12, 8), Transpose::No);
        cache.get_b(&w2, (12, 8), Transpose::No);
        cache.get_b(&w1, (12, 8), Transpose::Yes); // same buffer, other orientation
        cache.get_a(&w1, (12, 8), Transpose::No);
        assert_eq!(cache.b_slots.len(), 3);
        assert_eq!(cache.a_slots.len(), 1);
    }

    #[test]
    fn degenerate_dims_pack_empty() {
        let mut pa = PackedA::default();
        pa.pack(&[], (0, 5), Transpose::No);
        assert_eq!(pa.dims(), (0, 5));
        let mut pb = PackedB::default();
        pb.pack(&[], (3, 0), Transpose::No);
        assert_eq!(pb.dims(), (3, 0));
    }
}
