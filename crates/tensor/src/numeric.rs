//! Numerically-stable softmax / log-sum-exp helpers.
//!
//! The paper's networks end in a softmax layer feeding a cross-entropy
//! loss; both are computed here in the max-subtracted form so that large
//! logits (which appear the moment an execution starts to destabilise —
//! exactly the "Crash" regime the paper tracks) do not overflow before the
//! crash detector sees them.

/// In-place stable softmax over a single slice.
///
/// Empty input is a no-op.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in x.iter_mut() {
            *v *= inv;
        }
    } else {
        // All logits were -inf (or NaN poisoned): fall back to uniform so the
        // caller's loss turns into a large-but-finite value rather than NaN
        // where possible.
        let u = 1.0 / x.len() as f32;
        for v in x.iter_mut() {
            *v = u;
        }
    }
}

/// Stable `log(sum(exp(x)))`.
pub fn log_sum_exp(x: &[f32]) -> f32 {
    if x.is_empty() {
        return f32::NEG_INFINITY;
    }
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = x.iter().map(|v| (v - max).exp()).sum();
    max + sum.ln()
}

/// Cross-entropy `-log p[target]` computed directly from logits in the
/// fused stable form `logsumexp(z) - z[target]`.
///
/// # Panics
/// Panics if `target >= logits.len()`.
pub fn cross_entropy_from_logits(logits: &[f32], target: usize) -> f32 {
    assert!(target < logits.len(), "target class out of range");
    log_sum_exp(logits) - logits[target]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut x = [1.0, 2.0, 3.0];
        softmax_inplace(&mut x);
        let s: f32 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_translation_invariant() {
        let mut a = [1.0, 2.0, 3.0];
        let mut b = [1001.0, 1002.0, 1003.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_survives_huge_logits() {
        let mut x = [1e30f32, -1e30, 0.0];
        softmax_inplace(&mut x);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_matches_naive_in_safe_range() {
        let x = [0.1f32, -0.4, 0.7];
        let naive = x.iter().map(|v| v.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&x) - naive).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_logits_is_log_k() {
        let logits = [0.0f32; 10];
        let ce = cross_entropy_from_logits(&logits, 3);
        assert!((ce - (10f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let mut logits = [0.0f32; 10];
        logits[7] = 20.0;
        assert!(cross_entropy_from_logits(&logits, 7) < 1e-3);
        assert!(cross_entropy_from_logits(&logits, 2) > 10.0);
    }

    #[test]
    fn empty_softmax_noop() {
        let mut x: [f32; 0] = [];
        softmax_inplace(&mut x);
    }
}
