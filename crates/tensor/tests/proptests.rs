//! Property-based tests for the linear-algebra substrate.
//!
//! GEMM is the single most load-bearing kernel in the reproduction — every
//! gradient the SGD algorithms exchange flows through it — so its algebraic
//! identities are checked against randomly generated shapes and contents.

use lsgd_tensor::gemm::{gemm, matmul, Transpose};
use lsgd_tensor::ops;
use lsgd_tensor::Matrix;
use proptest::prelude::*;

/// Strategy: random small shape triple (m, n, k).
fn shape() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..12, 1usize..24)
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    Matrix::from_fn(a.rows(), b.cols(), |i, j| {
        (0..a.cols()).map(|k| a.get(i, k) * b.get(k, j)).sum()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A·B matches the naive triple loop.
    #[test]
    fn gemm_matches_naive((m, n, k) in shape(), seed in 0u64..1000) {
        let mut rng = lsgd_tensor::SmallRng64::new(seed);
        let a = Matrix::from_fn(m, k, |_, _| rng.next_f32() - 0.5);
        let b = Matrix::from_fn(k, n, |_, _| rng.next_f32() - 0.5);
        let fast = matmul(&a, Transpose::No, &b, Transpose::No);
        let slow = naive_matmul(&a, &b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-4 * k as f32);
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_of_product((m, n, k) in shape(), seed in 0u64..1000) {
        let mut rng = lsgd_tensor::SmallRng64::new(seed);
        let a = Matrix::from_fn(m, k, |_, _| rng.next_f32() - 0.5);
        let b = Matrix::from_fn(k, n, |_, _| rng.next_f32() - 0.5);
        let lhs = matmul(&a, Transpose::No, &b, Transpose::No).transposed();
        let rhs = matmul(&b, Transpose::Yes, &a, Transpose::Yes);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4 * k as f32);
    }

    /// A·(B + C) = A·B + A·C (distributivity).
    #[test]
    fn distributivity((m, n, k) in shape(), seed in 0u64..1000) {
        let mut rng = lsgd_tensor::SmallRng64::new(seed);
        let a = Matrix::from_fn(m, k, |_, _| rng.next_f32() - 0.5);
        let b = Matrix::from_fn(k, n, |_, _| rng.next_f32() - 0.5);
        let c = Matrix::from_fn(k, n, |_, _| rng.next_f32() - 0.5);
        let bc = Matrix::from_fn(k, n, |i, j| b.get(i, j) + c.get(i, j));
        let lhs = matmul(&a, Transpose::No, &bc, Transpose::No);
        let mut rhs = matmul(&a, Transpose::No, &b, Transpose::No);
        let ac = matmul(&a, Transpose::No, &c, Transpose::No);
        for (r, x) in rhs.as_mut_slice().iter_mut().zip(ac.as_slice()) {
            *r += x;
        }
        prop_assert!(lhs.max_abs_diff(&rhs) < 2e-4 * k as f32);
    }

    /// beta accumulation: gemm(alpha, A, B, 1.0, C) == C + alpha*A*B.
    #[test]
    fn beta_one_accumulates((m, n, k) in shape(), alpha in -2.0f32..2.0, seed in 0u64..1000) {
        let mut rng = lsgd_tensor::SmallRng64::new(seed);
        let a = Matrix::from_fn(m, k, |_, _| rng.next_f32() - 0.5);
        let b = Matrix::from_fn(k, n, |_, _| rng.next_f32() - 0.5);
        let c0 = Matrix::from_fn(m, n, |_, _| rng.next_f32() - 0.5);
        let mut c = c0.clone();
        gemm(alpha, &a, Transpose::No, &b, Transpose::No, 1.0, &mut c);
        let prod = matmul(&a, Transpose::No, &b, Transpose::No);
        let expected = Matrix::from_fn(m, n, |i, j| c0.get(i, j) + alpha * prod.get(i, j));
        prop_assert!(c.max_abs_diff(&expected) < 2e-4 * k as f32);
    }

    /// axpy then reverse axpy restores the original vector.
    #[test]
    fn axpy_involution(xs in proptest::collection::vec(-10.0f32..10.0, 1..64), a in -5.0f32..5.0) {
        let x: Vec<f32> = xs.iter().map(|v| v * 0.5).collect();
        let orig = xs.clone();
        let mut y = xs;
        ops::axpy(a, &x, &mut y);
        ops::axpy(-a, &x, &mut y);
        for (got, want) in y.iter().zip(&orig) {
            prop_assert!((got - want).abs() < 1e-3);
        }
    }

    /// Softmax output is a probability distribution for any finite input.
    #[test]
    fn softmax_is_distribution(xs in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
        let mut x = xs;
        lsgd_tensor::numeric::softmax_inplace(&mut x);
        let sum: f32 = x.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(x.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
    }

    /// dot(x, x) == |x|².
    #[test]
    fn dot_self_is_norm_squared(xs in proptest::collection::vec(-3.0f32..3.0, 1..64)) {
        let d = ops::dot(&xs, &xs);
        let n = ops::norm2(&xs);
        prop_assert!((d - n * n).abs() < 1e-2);
    }
}
