//! Differential property suite: the packed GEMM kernel (serial and
//! parallel) against the retained naive kernel.
//!
//! The packed kernel funnels all four `(ta, tb)` orientations through one
//! micro-kernel via panel packing, so a single packing bug would corrupt
//! every gradient in the reproduction. This suite pits it against
//! [`lsgd_tensor::gemm::gemm_naive_slices`] — the pre-packing blocked
//! loops, kept precisely as this oracle — across:
//!
//! * all four orientations (including `tn`/`tt`, which used to run scalar
//!   fallbacks and now must match through the fast path);
//! * `alpha ∈ {0, 1, 0.5}` and `beta ∈ {0, 1, 2}` (the identity-ish
//!   values every special-cased branch keys on);
//! * degenerate dims (`m/n/k ∈ {0, 1}`) and shapes straddling the
//!   `MR`/`NR` micro-tile and `MC`/`KC`/`NC` cache-block boundaries;
//! * the serial entry point and the pool-parallel one, which must agree
//!   with each other **bitwise** (partitioning may not change any
//!   element's reduction order).

use lsgd_tensor::gemm::{
    gemm_naive_slices, gemm_slices, gemm_slices_parallel_in, Transpose, KC, MC, MR, NC, NR,
};

use lsgd_tensor::SmallRng64;
use proptest::prelude::*;
use lsgd_runtime::Runtime;
use std::sync::OnceLock;

/// Shared injected 4-thread runtime so the parallel path is exercised
/// regardless of the host's core count (CI runners are often single-core).
fn pool() -> &'static Runtime {
    static RT: OnceLock<Runtime> = OnceLock::new();
    RT.get_or_init(|| Runtime::new(4))
}

/// Strategy drawing a dimension from a pool of adversarial values:
/// degenerate sizes plus every block boundary ±1.
fn dim(pool: &'static [usize]) -> impl Strategy<Value = usize> {
    (0..pool.len()).prop_map(move |i| pool[i])
}

const M_POOL: &[usize] = &[0, 1, 2, MR - 1, MR, MR + 1, 2 * MR + 1, MC - 1, MC, MC + 1, 70];
const N_POOL: &[usize] = &[0, 1, 2, NR - 1, NR, NR + 1, 3 * NR + 1, NC - 1, NC, NC + 1, 33];
const K_POOL: &[usize] = &[0, 1, 2, 7, KC - 1, KC, KC + 1, 300];
const ALPHAS: &[f32] = &[0.0, 1.0, 0.5];
const BETAS: &[f32] = &[0.0, 1.0, 2.0];

fn fill(rng: &mut SmallRng64, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
}

fn orientations(i: usize) -> (Transpose, Transpose) {
    [
        (Transpose::No, Transpose::No),
        (Transpose::No, Transpose::Yes),
        (Transpose::Yes, Transpose::No),
        (Transpose::Yes, Transpose::Yes),
    ][i]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Packed serial == naive oracle (within float reassociation slack),
    /// and packed parallel == packed serial bitwise.
    #[test]
    fn packed_matches_naive_all_orientations(
        m in dim(M_POOL),
        n in dim(N_POOL),
        k in dim(K_POOL),
        oi in 0usize..4,
        ai in 0usize..ALPHAS.len(),
        bi in 0usize..BETAS.len(),
        seed in 0u64..10_000,
    ) {
        let (ta, tb) = orientations(oi);
        let (alpha, beta) = (ALPHAS[ai], BETAS[bi]);
        let a_shape = if ta == Transpose::Yes { (k, m) } else { (m, k) };
        let b_shape = if tb == Transpose::Yes { (n, k) } else { (k, n) };
        let mut rng = SmallRng64::new(seed);
        let a = fill(&mut rng, a_shape.0 * a_shape.1);
        let b = fill(&mut rng, b_shape.0 * b_shape.1);
        let c0 = fill(&mut rng, m * n);

        let mut c_oracle = c0.clone();
        gemm_naive_slices(alpha, &a, a_shape, ta, &b, b_shape, tb, beta, &mut c_oracle, (m, n));

        let mut c_packed = c0.clone();
        gemm_slices(alpha, &a, a_shape, ta, &b, b_shape, tb, beta, &mut c_packed, (m, n));

        // Reassociation (blocking, FMA) perturbs each element by at most
        // O(k·eps) relative to the naive left-to-right sum.
        let tol = 1e-5 * (k as f32 + 1.0) + 1e-6;
        for (i, (got, want)) in c_packed.iter().zip(&c_oracle).enumerate() {
            prop_assert!(
                (got - want).abs() <= tol,
                "({ta:?},{tb:?}) alpha={alpha} beta={beta} m={m} n={n} k={k} \
                 elem {i}: packed {got} vs naive {want}"
            );
        }

        let mut c_par = c0.clone();
        gemm_slices_parallel_in(
            pool(), alpha, &a, a_shape, ta, &b, b_shape, tb, beta, &mut c_par, (m, n),
        );
        prop_assert!(
            c_par.iter().zip(&c_packed).all(|(x, y)| x.to_bits() == y.to_bits()),
            "parallel result diverged from serial for ({ta:?},{tb:?}) m={m} n={n} k={k}"
        );
    }

    /// `beta == 0` must *overwrite* C: pre-existing NaN/Inf garbage (e.g.
    /// an uninitialised or poisoned gradient buffer) may not leak into
    /// the product through `0 * NaN`.
    #[test]
    fn beta_zero_overwrites_poisoned_c(
        m in dim(M_POOL),
        n in dim(N_POOL),
        k in dim(K_POOL),
        oi in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let (ta, tb) = orientations(oi);
        let a_shape = if ta == Transpose::Yes { (k, m) } else { (m, k) };
        let b_shape = if tb == Transpose::Yes { (n, k) } else { (k, n) };
        let mut rng = SmallRng64::new(seed);
        let a = fill(&mut rng, a_shape.0 * a_shape.1);
        let b = fill(&mut rng, b_shape.0 * b_shape.1);
        let poison = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
        let c0: Vec<f32> = (0..m * n).map(|i| poison[i % poison.len()]).collect();

        for run in ["serial", "parallel"] {
            let mut c = c0.clone();
            match run {
                "serial" => gemm_slices(1.0, &a, a_shape, ta, &b, b_shape, tb, 0.0, &mut c, (m, n)),
                _ => gemm_slices_parallel_in(
                    pool(), 1.0, &a, a_shape, ta, &b, b_shape, tb, 0.0, &mut c, (m, n),
                ),
            }
            prop_assert!(
                c.iter().all(|v| v.is_finite()),
                "{run} ({ta:?},{tb:?}) m={m} n={n} k={k}: NaN/Inf survived beta=0"
            );
        }
    }
}

/// Shapes that genuinely cross the parallel fan-out threshold
/// (`2·m·n·k ≥ 2²¹`) in both split directions — the random dimension
/// pools above cannot reach the N-split arm (their small-`m` × max-`n·k`
/// products sit just under the threshold), so it is pinned here: packed
/// parallel must match naive within tolerance and serial bitwise.
#[test]
fn parallel_fanout_row_and_col_split_match_naive_and_serial() {
    // (m, n, k): first row-splits across 4 threads, the rest N-split
    // (m < 4·MR), including a non-16-aligned n and an AVX2 pair-odd
    // panel count.
    for (m, n, k) in [(256, 256, 64), (16, 160, 512), (12, 2040, 50), (13, 1000, 90)] {
        for oi in 0..4 {
            let (ta, tb) = orientations(oi);
            let a_shape = if ta == Transpose::Yes { (k, m) } else { (m, k) };
            let b_shape = if tb == Transpose::Yes { (n, k) } else { (k, n) };
            let mut rng = SmallRng64::new(4242 + oi as u64);
            let a = fill(&mut rng, a_shape.0 * a_shape.1);
            let b = fill(&mut rng, b_shape.0 * b_shape.1);
            let c0 = fill(&mut rng, m * n);

            let mut want = c0.clone();
            gemm_naive_slices(0.5, &a, a_shape, ta, &b, b_shape, tb, 2.0, &mut want, (m, n));
            let mut serial = c0.clone();
            gemm_slices(0.5, &a, a_shape, ta, &b, b_shape, tb, 2.0, &mut serial, (m, n));
            let mut par = c0.clone();
            gemm_slices_parallel_in(
                pool(),
                0.5,
                &a,
                a_shape,
                ta,
                &b,
                b_shape,
                tb,
                2.0,
                &mut par,
                (m, n),
            );

            let tol = 1e-5 * (k as f32 + 1.0) + 1e-6;
            assert!(
                par.iter().zip(&want).all(|(x, y)| (x - y).abs() <= tol),
                "parallel vs naive ({ta:?},{tb:?}) m={m} n={n} k={k}"
            );
            assert!(
                par.iter().zip(&serial).all(|(x, y)| x.to_bits() == y.to_bits()),
                "parallel vs serial not bitwise ({ta:?},{tb:?}) m={m} n={n} k={k}"
            );
        }
    }
}

/// Deterministic sweep of every dimension-pool combination at the default
/// orientation mix — a safety net in case the random sampler misses a
/// specific boundary product.
#[test]
fn exhaustive_block_boundary_sweep_nn_tt() {
    for &m in &[0usize, 1, MR, MR + 1, MC + 1] {
        for &n in &[0usize, 1, NR, NR + 1, NC + 1] {
            for &k in &[0usize, 1, KC, KC + 1] {
                for (ta, tb) in [(Transpose::No, Transpose::No), (Transpose::Yes, Transpose::Yes)] {
                    let a_shape = if ta == Transpose::Yes { (k, m) } else { (m, k) };
                    let b_shape = if tb == Transpose::Yes { (n, k) } else { (k, n) };
                    let mut rng = SmallRng64::new(m as u64 * 31 + n as u64 * 7 + k as u64);
                    let a = fill(&mut rng, a_shape.0 * a_shape.1);
                    let b = fill(&mut rng, b_shape.0 * b_shape.1);
                    let c0 = fill(&mut rng, m * n);
                    let mut want = c0.clone();
                    gemm_naive_slices(0.5, &a, a_shape, ta, &b, b_shape, tb, 1.0, &mut want, (m, n));
                    let mut got = c0.clone();
                    gemm_slices(0.5, &a, a_shape, ta, &b, b_shape, tb, 1.0, &mut got, (m, n));
                    let tol = 1e-5 * (k as f32 + 1.0) + 1e-6;
                    assert!(
                        got.iter().zip(&want).all(|(x, y)| (x - y).abs() <= tol),
                        "({ta:?},{tb:?}) m={m} n={n} k={k}"
                    );
                }
            }
        }
    }
}
