//! Differential property suite for the prepacked-panel GEMM paths.
//!
//! The zero-realloc gradient hot path rests on one claim: serving a GEMM
//! from panels packed *earlier* (a [`PackedPanelCache`] entry packed once
//! per SGD step, or a custom fused packer generating panels on the fly)
//! changes **nothing** about the computation — the macro/micro-kernels
//! consume the same bytes in the same order, so results are bitwise
//! identical to a fresh-pack [`gemm_slices`] call. This suite pits every
//! flexible source combination against the fresh-pack kernel across the
//! same adversarial shape pool as `gemm_differential.rs`, including:
//!
//! * prepacked `B` (the dense layers' cached `W` orientations), serial
//!   and pool-parallel;
//! * prepacked `A` (the conv layer's cached filter matrix);
//! * a custom `B` packer that mimics the conv layer's fused im2col by
//!   delegating to `pack_b` over a materialised operand;
//! * forced stale-key invalidation: panels packed for one parameter
//!   version, the backing buffer mutated **in place** (the stable
//!   local-copy worker pattern where the pointer key alone cannot see the
//!   change), `begin_step`, and the repacked result compared fresh.

use lsgd_tensor::gemm::{
    gemm_slices, gemm_slices_parallel_in, ASource, BSource, Transpose, KC, MC, MR, NC, NR,
};
use lsgd_tensor::gemm::{gemm_flex, gemm_flex_parallel_in};
use lsgd_tensor::pack::pack_b;
use lsgd_tensor::panels::{PackedA, PackedPanelCache};

use lsgd_tensor::SmallRng64;
use proptest::prelude::*;
use lsgd_runtime::Runtime;
use std::sync::OnceLock;

/// Shared injected 4-thread runtime so the parallel path is exercised
/// regardless of the host's core count (CI runners are often single-core).
fn pool() -> &'static Runtime {
    static RT: OnceLock<Runtime> = OnceLock::new();
    RT.get_or_init(|| Runtime::new(4))
}

fn dim(pool: &'static [usize]) -> impl Strategy<Value = usize> {
    (0..pool.len()).prop_map(move |i| pool[i])
}

const M_POOL: &[usize] = &[1, 2, MR, MR + 1, MC - 1, MC, MC + 1, 2 * MC + 5, 70];
const N_POOL: &[usize] = &[1, 2, NR, NR + 1, NC - 1, NC, NC + 1, 33];
const K_POOL: &[usize] = &[1, 2, 7, KC - 1, KC, KC + 1, 300];

fn fill(rng: &mut SmallRng64, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
}

fn bits_eq(x: &[f32], y: &[f32]) -> bool {
    x.len() == y.len() && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Prepacked-B GEMM (serial and parallel, via the panel cache with a
    /// forced stale-key repack) is bitwise identical to fresh-pack
    /// `gemm_slices` for both B orientations.
    #[test]
    fn prepacked_b_matches_fresh_pack_bitwise(
        m in dim(M_POOL),
        n in dim(N_POOL),
        k in dim(K_POOL),
        tbi in 0usize..2,
        seed in 0u64..10_000,
    ) {
        // m >= 8 keeps fresh-pack gemm_slices on the packed kernel for
        // tb=No (below that it prefers the streaming naive path, which
        // is exactly why the nn layers consult small_m_prefers_naive
        // before using prepacked panels).
        let m = m.max(8);
        let tb = [Transpose::No, Transpose::Yes][tbi];
        let b_shape = if tb.is_t() { (n, k) } else { (k, n) };
        let mut rng = SmallRng64::new(seed);
        let a = fill(&mut rng, m * k);
        let mut b = fill(&mut rng, b_shape.0 * b_shape.1);
        let c0 = fill(&mut rng, m * n);

        let mut cache = PackedPanelCache::new();
        // Pack for a *previous* parameter version, then mutate the buffer
        // in place and begin a new step: the cache must repack.
        cache.begin_step();
        cache.get_b(&b, b_shape, tb);
        for v in &mut b {
            *v = -*v + 0.125;
        }
        cache.begin_step();

        let mut c_fresh = c0.clone();
        gemm_slices(
            1.0, &a, (m, k), Transpose::No, &b, b_shape, tb, 0.5, &mut c_fresh, (m, n),
        );

        let asrc = ASource::Slices { a: &a, shape: (m, k), trans: Transpose::No };
        let pb = cache.get_b(&b, b_shape, tb);
        let mut c_pre = c0.clone();
        gemm_flex(1.0, &asrc, &BSource::Prepacked(pb), 0.5, &mut c_pre, (m, n));
        prop_assert!(bits_eq(&c_pre, &c_fresh), "serial prepacked-B diverged (m={m} n={n} k={k} tb={tb:?})");

        let mut c_par = c0.clone();
        gemm_flex_parallel_in(
            pool(), 1.0, &asrc, &BSource::Prepacked(pb), 0.5, &mut c_par, (m, n),
        );
        prop_assert!(bits_eq(&c_par, &c_fresh), "parallel prepacked-B diverged (m={m} n={n} k={k} tb={tb:?})");
    }

    /// Prepacked-A GEMM (the conv forward's cached filter matrix, both
    /// orientations) is bitwise identical to fresh-pack `gemm_slices`,
    /// serial and row-parallel.
    #[test]
    fn prepacked_a_matches_fresh_pack_bitwise(
        m in dim(M_POOL),
        n in dim(N_POOL),
        k in dim(K_POOL),
        tai in 0usize..2,
        seed in 0u64..10_000,
    ) {
        let ta = [Transpose::No, Transpose::Yes][tai];
        let a_shape = if ta.is_t() { (k, m) } else { (m, k) };
        let mut rng = SmallRng64::new(seed);
        let a = fill(&mut rng, a_shape.0 * a_shape.1);
        let b = fill(&mut rng, n * k); // stored n×k, used transposed
        let c0 = fill(&mut rng, m * n);

        // tb=Yes keeps fresh-pack gemm_slices on the packed kernel for
        // every m (the conv-forward shape class: tiny m, B transposed).
        let mut c_fresh = c0.clone();
        gemm_slices(
            1.0, &a, a_shape, ta, &b, (n, k), Transpose::Yes, 0.0, &mut c_fresh, (m, n),
        );

        let mut pa = PackedA::default();
        pa.pack(&a, a_shape, ta);
        let bsrc = BSource::Slices { b: &b, shape: (n, k), trans: Transpose::Yes };
        let mut c_pre = c0.clone();
        gemm_flex(1.0, &ASource::Prepacked(&pa), &bsrc, 0.0, &mut c_pre, (m, n));
        prop_assert!(bits_eq(&c_pre, &c_fresh), "serial prepacked-A diverged (m={m} n={n} k={k} ta={ta:?})");

        let mut c_par = c0.clone();
        gemm_flex_parallel_in(
            pool(), 1.0, &ASource::Prepacked(&pa), &bsrc, 0.0, &mut c_par, (m, n),
        );
        prop_assert!(bits_eq(&c_par, &c_fresh), "parallel prepacked-A diverged (m={m} n={n} k={k} ta={ta:?})");
    }

    /// A custom B packer producing `pack_b`-layout blocks yields results
    /// bitwise identical to materialising the operand — the contract the
    /// conv layer's fused im2col lowering relies on.
    #[test]
    fn custom_packer_matches_materialized_operand(
        m in dim(M_POOL),
        n in dim(N_POOL),
        k in dim(K_POOL),
        seed in 0u64..10_000,
    ) {
        let m = m.max(8);
        let mut rng = SmallRng64::new(seed);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n); // the "materialised" operand, k×n
        let c0 = fill(&mut rng, m * n);

        let mut c_fresh = c0.clone();
        gemm_slices(
            1.0, &a, (m, k), Transpose::No, &b, (k, n), Transpose::No, 1.0, &mut c_fresh, (m, n),
        );

        let packer = |dst: &mut [f32], k0: usize, j0: usize, kc: usize, nc: usize| {
            pack_b(dst, &b, n, false, k0, j0, kc, nc);
        };
        let asrc = ASource::Slices { a: &a, shape: (m, k), trans: Transpose::No };
        let bsrc = BSource::Packer { pack: &packer, shape: (k, n) };
        let mut c_custom = c0.clone();
        gemm_flex(1.0, &asrc, &bsrc, 1.0, &mut c_custom, (m, n));
        prop_assert!(bits_eq(&c_custom, &c_fresh), "custom packer diverged (m={m} n={n} k={k})");
    }

    /// Slices/Slices `gemm_flex_parallel` must agree bitwise with
    /// `gemm_slices_parallel_in` *and* serial `gemm_slices` — the two
    /// parallel splits (row-only MC-aligned vs row-or-column) are both
    /// anchored to the serial reduction order.
    #[test]
    fn flex_parallel_slices_matches_classic_parallel(
        m in dim(M_POOL),
        n in dim(N_POOL),
        k in dim(K_POOL),
        seed in 0u64..10_000,
    ) {
        let m = m.max(8);
        let mut rng = SmallRng64::new(seed);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let c0 = fill(&mut rng, m * n);

        let mut c_serial = c0.clone();
        gemm_slices(
            1.0, &a, (m, k), Transpose::No, &b, (k, n), Transpose::No, 0.0, &mut c_serial, (m, n),
        );
        let mut c_classic = c0.clone();
        gemm_slices_parallel_in(
            pool(), 1.0, &a, (m, k), Transpose::No, &b, (k, n), Transpose::No, 0.0,
            &mut c_classic, (m, n),
        );
        let asrc = ASource::Slices { a: &a, shape: (m, k), trans: Transpose::No };
        let bsrc = BSource::Slices { b: &b, shape: (k, n), trans: Transpose::No };
        let mut c_flex = c0.clone();
        gemm_flex_parallel_in(pool(), 1.0, &asrc, &bsrc, 0.0, &mut c_flex, (m, n));
        prop_assert!(bits_eq(&c_classic, &c_serial), "classic parallel diverged");
        prop_assert!(bits_eq(&c_flex, &c_serial), "flex parallel diverged");
    }
}

/// Within one epoch the cache must *hit* (no repacking work) for repeated
/// weight lookups — the property that makes per-sample conv GEMMs cheap.
#[test]
fn cache_hits_across_repeated_lookups_within_a_step() {
    let mut rng = SmallRng64::new(7);
    let w = fill(&mut rng, 64 * 48);
    let mut cache = PackedPanelCache::new();
    cache.begin_step();
    for _ in 0..10 {
        cache.get_b(&w, (64, 48), Transpose::Yes);
        cache.get_a(&w, (64, 48), Transpose::No);
    }
    let (hits, misses) = cache.stats();
    assert_eq!(misses, 2, "one pack per operand per step");
    assert_eq!(hits, 18);
}
