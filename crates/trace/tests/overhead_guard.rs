//! Overhead guard: proves the default (no-feature) build of the probe
//! API is genuinely free. Every guard object is a ZST, so a span in the
//! step hot path compiles to nothing — there is no state to carry, no
//! Drop to run, no branch on a gate. The ISSUE's zero-cost acceptance
//! criterion (disabled-build `sgd_step` medians within noise of the
//! committed reference) is the end-to-end check; this test pins the
//! mechanism it rests on.
#![cfg(not(lsgd_model))]
#![cfg(not(feature = "enabled"))]

use lsgd_trace::{Collector, Counter, Phase, SpanGuard};

#[test]
fn disabled_build_probe_types_are_zero_sized() {
    #[allow(clippy::assertions_on_constants)] // the constant IS the claim under test
    {
        assert!(!lsgd_trace::COMPILED, "guard test must run without the `enabled` feature");
    }
    assert_eq!(std::mem::size_of::<SpanGuard>(), 0, "SpanGuard must be a ZST when disabled");
    assert_eq!(std::mem::size_of::<Collector>(), 0, "Collector must be a ZST when disabled");
    assert!(!std::mem::needs_drop::<SpanGuard>(), "SpanGuard must have no Drop when disabled");
}

#[test]
fn disabled_build_probes_record_nothing_and_gate_stays_off() {
    // Even with the environment begging for a trace, the disabled build
    // must stay off: the runtime gate only exists behind the feature.
    lsgd_trace::enable();
    assert!(!lsgd_trace::enabled());

    lsgd_trace::count(Counter::PublishRetry);
    lsgd_trace::count_n(Counter::StealAttempt, 100);
    let _g = lsgd_trace::span(Phase::GradCompute);
    let _l = lsgd_trace::span_labeled(lsgd_trace::label("layer0.fwd"));
    drop(_g);
    drop(_l);

    let mut c = Collector::new();
    c.sample();
    let dump = c.finish();
    assert!(dump.is_empty(), "disabled build must collect nothing");
    assert!(dump.phases.is_empty());
    assert_eq!(dump.events.len(), 0);
    assert!(lsgd_trace::chrome_path().is_none(), "no export path without the feature");
}
