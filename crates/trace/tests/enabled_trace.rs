//! Integration test for the compiled-in (`--features enabled`) trace
//! path: gate, per-thread slots, span rings, collector deltas, and the
//! Chrome-trace export round-trip.
//!
//! The registry and counters are process-global, so everything runs in
//! one sequential test function — parallel test threads would bleed
//! counter deltas into each other's collector windows.
#![cfg(feature = "enabled")]
#![cfg(not(lsgd_model))]

use lsgd_trace::{chrome, Collector, Counter, Phase};

#[test]
fn traced_run_end_to_end() {
    // The constant IS the claim under test: this cfg must imply probes.
    #[allow(clippy::assertions_on_constants)]
    {
        assert!(lsgd_trace::COMPILED);
    }
    lsgd_trace::enable();
    assert!(lsgd_trace::enabled());

    // --- Run 1: two workers produce counters and spans concurrently. ---
    let collector = Collector::new();
    let layer_label = lsgd_trace::label("layer0.fwd");
    assert_eq!(lsgd_trace::label("layer0.fwd"), layer_label, "interning must be idempotent");

    let handles: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..10 {
                    lsgd_trace::count(Counter::PublishAttempt);
                    let g = lsgd_trace::span(Phase::GradCompute);
                    std::hint::black_box(0u64);
                    drop(g);
                    let g = lsgd_trace::span_labeled(lsgd_trace::label("layer0.fwd"));
                    std::hint::black_box(0u64);
                    drop(g);
                }
                lsgd_trace::count_n(Counter::PublishRetry, 3);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let dump = collector.finish();

    assert_eq!(dump.counter(Counter::PublishAttempt), 20);
    assert_eq!(dump.counter(Counter::PublishRetry), 6);
    assert_eq!(dump.counter(Counter::QueueEmptyPop), 0);
    let grad = dump.phases.get(Phase::GradCompute).expect("phase stats collected");
    assert_eq!(grad.count(), 20);
    let labeled = dump.label_stats();
    assert_eq!(labeled.len(), 1);
    assert_eq!(labeled[0].0, "layer0.fwd");
    assert_eq!(labeled[0].1.count(), 20);
    // Two producing threads → at least two distinct event lanes.
    let mut lanes: Vec<u32> = dump.events.iter().map(|e| e.worker).collect();
    lanes.sort_unstable();
    lanes.dedup();
    assert!(lanes.len() >= 2, "expected ≥2 worker lanes, got {lanes:?}");
    assert_eq!(dump.dropped, 0);
    let report = dump.report();
    assert!(report.contains("grad-compute"));
    assert!(report.contains("publish.attempt"));

    // --- Chrome export round-trips through the validator. ---
    let path = std::env::temp_dir().join("lsgd_trace_enabled_test.json");
    let path_s = path.to_str().unwrap();
    chrome::append_run(path_s, "run-1", &dump).unwrap();
    let summary = chrome::validate_file(path_s).unwrap();
    assert_eq!(summary.runs, 1);
    assert!(summary.named_lanes >= 2);
    assert!(summary.min_spans_per_lane() >= 1, "every worker lane needs a complete span");
    let _ = std::fs::remove_file(path);

    // --- Run 2: a fresh collector sees only its own window. ---
    let collector = Collector::new();
    lsgd_trace::count(Counter::SnapshotRetry);
    let dump2 = collector.finish();
    assert_eq!(dump2.counter(Counter::SnapshotRetry), 1);
    assert_eq!(
        dump2.counter(Counter::PublishAttempt),
        0,
        "per-run deltas must not leak across collector windows"
    );
}
