//! Model checks for the trace data plane: the single-writer counter
//! cells and the SPSC span-event ring, i.e. the producer→collector
//! handoff that runs concurrently with training when tracing is on.
//!
//! Run with `RUSTFLAGS="--cfg lsgd_model" cargo test -p lsgd_trace
//! --test model_trace`. The mutation test additionally needs
//! `--cfg lsgd_mutate_relaxed_ring`, which flips the ring's head
//! `Release` publish to `Relaxed`; the regular invariants are compiled
//! out under that cfg because they would (correctly) fail.
#![cfg(lsgd_model)]

use lsgd_check::thread;
use lsgd_trace::ring::{EventRing, SpanRecord};
use lsgd_trace::{Counter, CounterCell};
use std::sync::Arc;

fn rec(label: u32) -> SpanRecord {
    SpanRecord { label, start_ns: u64::from(label) * 10, dur_ns: 1 }
}

/// A worker bumps its own cell while the collector reads concurrently:
/// concurrent reads are monotone and bounded, and after join the
/// collector sees every increment (no lost updates from the
/// plain load+store single-writer increment).
#[cfg(not(lsgd_mutate_relaxed_ring))]
#[test]
fn counter_handoff_loses_no_increments() {
    lsgd_check::model(|| {
        let cell = Arc::new(CounterCell::new());
        let c2 = Arc::clone(&cell);
        let worker = thread::spawn(move || {
            for _ in 0..3 {
                c2.add(Counter::PublishAttempt, 1);
            }
            c2.add(Counter::PublishRetry, 2);
        });
        // Collector samples mid-flight: monotone, never above the total.
        let mut last = 0;
        for _ in 0..2 {
            let v = cell.get(Counter::PublishAttempt);
            assert!(v >= last && v <= 3, "non-monotone or overshooting read: {v}");
            last = v;
            thread::yield_now();
        }
        worker.join().unwrap();
        // Join gives happens-before: the final snapshot must be exact.
        let snap = cell.snapshot();
        assert_eq!(snap[Counter::PublishAttempt as usize], 3, "lost increment");
        assert_eq!(snap[Counter::PublishRetry as usize], 2, "lost bulk increment");
    });
}

/// Two workers write their own cells while the collector aggregates
/// across both — per-worker isolation means totals add up exactly.
#[cfg(not(lsgd_mutate_relaxed_ring))]
#[test]
fn per_worker_cells_aggregate_exactly() {
    lsgd_check::model(|| {
        let cells: Arc<[CounterCell; 2]> = Arc::new([CounterCell::new(), CounterCell::new()]);
        let handles: Vec<_> = (0..2)
            .map(|w| {
                let cells = Arc::clone(&cells);
                thread::spawn(move || {
                    cells[w].add(Counter::StealHit, (w + 1) as u64);
                })
            })
            .collect();
        // Mid-flight aggregate is a lower bound of the final total.
        let partial: u64 = cells.iter().map(|c| c.get(Counter::StealHit)).sum();
        assert!(partial <= 3);
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = cells.iter().map(|c| c.get(Counter::StealHit)).sum();
        assert_eq!(total, 3, "cross-cell aggregation lost an increment");
    });
}

/// Producer pushes across a wraparound of a tiny ring while the
/// collector drains concurrently: every record is either delivered in
/// order or counted as dropped — never lost, duplicated, or torn. The
/// checker's vector-clock race detection validates the slot accesses on
/// every explored schedule.
#[cfg(not(lsgd_mutate_relaxed_ring))]
#[test]
fn ring_wraparound_conserves_records_in_order() {
    lsgd_check::model(|| {
        let ring = Arc::new(EventRing::new(2));
        let r2 = Arc::clone(&ring);
        let n = 4u32;
        let producer = thread::spawn(move || {
            for i in 0..n {
                r2.push(rec(i));
            }
        });
        let mut out = Vec::new();
        // Interleave a couple of drains with the producer, then join and
        // take the final drain.
        for _ in 0..2 {
            ring.drain(&mut out);
            thread::yield_now();
        }
        producer.join().unwrap();
        ring.drain(&mut out);
        let labels: Vec<u32> = out.iter().map(|r| r.label).collect();
        // Conservation: delivered + dropped == pushed.
        assert_eq!(
            labels.len() as u64 + ring.dropped(),
            u64::from(n),
            "records lost or duplicated: delivered {labels:?}, dropped {}",
            ring.dropped()
        );
        // Order: delivered records are a strictly increasing subsequence
        // (drop-newest never reorders survivors).
        assert!(
            labels.windows(2).all(|w| w[0] < w[1]),
            "delivered out of order: {labels:?}"
        );
        // Integrity: each record arrived whole, not torn.
        for r in &out {
            assert_eq!(r.start_ns, u64::from(r.label) * 10, "torn record: {r:?}");
            assert_eq!(r.dur_ns, 1, "torn record: {r:?}");
        }
    });
}

/// THE mutation test: with `--cfg lsgd_mutate_relaxed_ring`, the
/// producer's head publish is `Relaxed` instead of `Release`, so the
/// collector's slot read has no happens-before edge to the producer's
/// slot write. The checker must report that as a data race — proving a
/// green run of the other tests actually depends on the `Release`.
#[cfg(lsgd_mutate_relaxed_ring)]
#[test]
fn weakened_ring_release_is_caught() {
    let report = lsgd_check::explore(lsgd_check::Config::default(), || {
        let ring = Arc::new(EventRing::new(2));
        let r2 = Arc::clone(&ring);
        let producer = thread::spawn(move || r2.push(rec(7)));
        let mut out = Vec::new();
        while out.is_empty() {
            ring.drain(&mut out);
            thread::yield_now();
        }
        let _ = producer.join();
    });
    let failure = report
        .failure
        .expect("the checker must catch the weakened ring publish");
    assert!(
        failure.message.contains("data race"),
        "expected a data-race report, got: {}",
        failure.message
    );
    assert!(!failure.seed.is_empty(), "failure must carry a replay seed");
}
