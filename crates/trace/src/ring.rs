//! Single-producer / single-consumer span-event ring, built on the
//! `lsgd_check` shim atomics so the producer→collector handoff is
//! verified by the in-tree model checker (`tests/model_trace.rs`).
//!
//! Protocol: a classic Lamport ring with power-of-two capacity.
//!
//! * The **producer** (the instrumented worker thread) owns `head`: it
//!   loads `head` Relaxed (it is the only writer), loads `tail` Acquire
//!   to see how much room the consumer has freed, writes the slot via
//!   `UnsafeCell::with_mut`, and publishes with a **Release** store of
//!   `head + 1`. When the ring is full it drops the newest event and
//!   bumps a `dropped` counter instead of blocking — observability must
//!   never stall the training step.
//! * The **consumer** (the collector, any thread, one at a time) owns
//!   `tail`: Acquire load of `head` (synchronizes with the producer's
//!   Release store, making the slot contents visible), Relaxed load of
//!   its own `tail`, reads slots via `UnsafeCell::with`, then frees them
//!   with a **Release** store of the new `tail` (so the producer's
//!   Acquire load of `tail` knows the slots are no longer being read).
//!
//! The `lsgd_mutate_relaxed_ring` cfg deliberately weakens the
//! producer's Release publish to Relaxed; the mutation-sentinel test
//! proves the model checker catches the resulting data race, i.e. that
//! the checker actually guards this protocol.

use lsgd_check::sync::{AtomicU64, AtomicUsize, Ordering, UnsafeCell};

/// One completed span: an interned label plus start/duration in
/// nanoseconds since the trace epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanRecord {
    /// Interned label id (`Phase` ids occupy `0..PHASES`; dynamic labels
    /// from [`crate::label`] follow).
    pub label: u32,
    /// Span start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Fixed-capacity SPSC ring of [`SpanRecord`]s. Capacity must be a
/// power of two.
pub struct EventRing {
    slots: Box<[UnsafeCell<SpanRecord>]>,
    mask: usize,
    /// Producer cursor: total records ever published.
    head: AtomicUsize,
    /// Consumer cursor: total records ever drained.
    tail: AtomicUsize,
    /// Records discarded because the ring was full (producer-side).
    dropped: AtomicU64,
}

// SAFETY: the head/tail protocol above ensures a slot is accessed by at
// most one thread at a time: the producer only writes slots in
// `[tail, head)`-complement (free space, proven free by its Acquire load
// of `tail`), and the consumer only reads slots in `[tail, head)`
// (proven published by its Acquire load of `head`). The model suite
// checks exactly this claim, including at wraparound.
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

impl EventRing {
    /// Creates a ring holding `cap` records. `cap` must be a nonzero
    /// power of two.
    pub fn new(cap: usize) -> Self {
        assert!(cap.is_power_of_two(), "EventRing capacity must be a power of two");
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(SpanRecord::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EventRing {
            slots,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Producer side: append one record, dropping it (and counting the
    /// drop) if the ring is full. Must only be called from the single
    /// producer thread that owns this ring.
    pub fn push(&self, rec: SpanRecord) {
        // ORDERING: Relaxed — the producer is the only thread that ever
        // stores `head`, so it always sees its own latest value.
        let head = self.head.load(Ordering::Relaxed);
        // ORDERING: Acquire — pairs with the consumer's Release store of
        // `tail` in `drain`, ensuring the consumer has finished reading
        // any slot we are about to overwrite.
        let tail = self.tail.load(Ordering::Acquire);
        if head - tail > self.mask {
            // ORDERING: Relaxed — `dropped` is a single-writer counter
            // read only after the producer quiesces (or approximately,
            // mid-run); no ordering with other memory is required.
            let d = self.dropped.load(Ordering::Relaxed);
            // ORDERING: Relaxed — same single-writer argument as the load.
            self.dropped.store(d + 1, Ordering::Relaxed);
            return;
        }
        self.slots[head & self.mask].with_mut(|p| {
            // SAFETY: `head - tail <= mask` proved this slot is free, and
            // single-producer means no other writer exists.
            unsafe { *p = rec }
        });
        #[cfg(not(lsgd_mutate_relaxed_ring))]
        // Release pairs with the consumer's Acquire load of `head`,
        // publishing the slot write above.
        self.head.store(head + 1, Ordering::Release);
        #[cfg(lsgd_mutate_relaxed_ring)]
        // ORDERING: deliberately wrong (mutation sentinel) — Relaxed
        // lets the consumer observe the new head before the slot write,
        // a data race the model checker must report.
        self.head.store(head + 1, Ordering::Relaxed);
    }

    /// Consumer side: drain all published records into `out`. Must not
    /// be called concurrently with itself (single consumer at a time).
    pub fn drain(&self, out: &mut Vec<SpanRecord>) {
        // ORDERING: Acquire — pairs with the producer's Release store,
        // making the slot contents written before that store visible.
        let head = self.head.load(Ordering::Acquire);
        // ORDERING: Relaxed — the consumer is the only thread that ever
        // stores `tail`, so it always sees its own latest value.
        let mut tail = self.tail.load(Ordering::Relaxed);
        while tail != head {
            let rec = self.slots[tail & self.mask].with(|p| {
                // SAFETY: `tail < head` proves the slot was published,
                // and the producer never rewrites a slot until we free
                // it by advancing `tail` below.
                unsafe { *p }
            });
            out.push(rec);
            tail += 1;
        }
        // ORDERING: Release — pairs with the producer's Acquire load of
        // `tail`, guaranteeing our slot reads above complete before the
        // producer is allowed to overwrite them.
        self.tail.store(tail, Ordering::Release);
    }

    /// Number of records discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        // ORDERING: Relaxed — monotone counter, read for reporting only.
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, not(lsgd_model)))]
mod tests {
    use super::*;

    fn rec(label: u32, start: u64) -> SpanRecord {
        SpanRecord { label, start_ns: start, dur_ns: 1 }
    }

    #[test]
    fn push_then_drain_preserves_order() {
        let ring = EventRing::new(8);
        for i in 0..5 {
            ring.push(rec(i, u64::from(i) * 10));
        }
        let mut out = Vec::new();
        ring.drain(&mut out);
        assert_eq!(out.len(), 5);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.label, i as u32);
        }
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_newest_and_counts() {
        let ring = EventRing::new(4);
        for i in 0..7 {
            ring.push(rec(i, 0));
        }
        assert_eq!(ring.dropped(), 3);
        let mut out = Vec::new();
        ring.drain(&mut out);
        // The first 4 survive; the last 3 were dropped (drop-newest).
        assert_eq!(out.iter().map(|r| r.label).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn drain_frees_capacity_across_wraparound() {
        let ring = EventRing::new(4);
        let mut out = Vec::new();
        let mut expected = Vec::new();
        for round in 0u32..10 {
            for i in 0..3 {
                let l = round * 3 + i;
                ring.push(rec(l, 0));
                expected.push(l);
            }
            ring.drain(&mut out);
        }
        assert_eq!(ring.dropped(), 0);
        assert_eq!(out.iter().map(|r| r.label).collect::<Vec<_>>(), expected);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let _ = EventRing::new(6);
    }
}
