#![warn(missing_docs)]
//! # lsgd-trace — zero-cost-when-disabled observability for Leashed-SGD
//!
//! The paper's central claims are about *dynamics* — CAS retries,
//! publication aborts, staleness — so this crate gives every layer of
//! the stack cheap probes and a collector that turns them into
//! per-phase latency histograms, protocol counter deltas, and a
//! Chrome-trace-event JSON file loadable in Perfetto (`chrome://tracing`
//! works too).
//!
//! ## Cost model
//!
//! * **Feature off** (default): every probe ([`count`], [`span`], …) is
//!   an `#[inline(always)]` empty function on zero-sized types. The
//!   overhead-guard test asserts [`COMPILED`] is `false` and the guard
//!   types are ZSTs; callers pay nothing, not even a branch.
//! * **Feature on, gate off**: one Relaxed load of a process-global
//!   latch per probe ([`enabled`] returns `false` until `LSGD_TRACE=1`,
//!   `LSGD_TRACE_JSON=<path>`, or [`enable`] flips it).
//! * **Gate on**: the hot path touches only the calling thread's own
//!   cache-line-padded cell — counters are single-writer plain
//!   load+store (no RMW, no cross-thread traffic), spans push into a
//!   fixed-capacity per-worker SPSC ring that drops (and counts)
//!   overflow instead of blocking. A [`Collector`] aggregates at
//!   monitor cadence from the other side.
//!
//! The ring and counter cells are built on the `lsgd_check` shims, so
//! the producer→collector handoff is model-checked like every other
//! protocol in the tree (`tests/model_trace.rs`), including a mutation
//! sentinel that weakens the ring's Release publish. Inside model
//! executions [`enabled`] reports `false` so instrumented production
//! code adds no schedule points to unrelated model tests.

pub mod chrome;
pub mod counters;
pub mod ring;

pub use counters::{Counter, CounterCell};
pub use ring::{EventRing, SpanRecord};

use lsgd_metrics::table::Table;
use lsgd_metrics::LogHistogram;

/// Whether the `enabled` cargo feature was compiled in. When `false`,
/// every probe in this crate is a no-op regardless of environment.
pub const COMPILED: bool = cfg!(feature = "enabled");

/// Number of fixed step-loop phases (the reserved label ids `0..PHASES`).
pub const PHASES: usize = 5;

/// The fixed phases of one training step, in pipeline order. Their
/// discriminants double as reserved span-label ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Phase {
    /// Acquiring a (consistent) read view of the parameters.
    SnapshotRead = 0,
    /// Computing the mini-batch gradient.
    GradCompute = 1,
    /// Packing weight panels for the GEMM kernels.
    Pack = 2,
    /// Publishing the update (CAS swing / lock / in-place write).
    Publish = 3,
    /// Monitor-thread loss evaluation.
    MonitorEval = 4,
}

impl Phase {
    /// All phases, in discriminant order.
    pub const ALL: [Phase; PHASES] = [
        Phase::SnapshotRead,
        Phase::GradCompute,
        Phase::Pack,
        Phase::Publish,
        Phase::MonitorEval,
    ];

    /// Stable name used in reports and trace lanes.
    pub fn name(self) -> &'static str {
        match self {
            Phase::SnapshotRead => "snapshot-read",
            Phase::GradCompute => "grad-compute",
            Phase::Pack => "pack",
            Phase::Publish => "publish",
            Phase::MonitorEval => "monitor-eval",
        }
    }
}

/// An interned span label returned by [`label`]. Phases come
/// pre-interned; intern custom labels once, outside hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(pub(crate) u32);

/// Per-phase latency histograms (nanoseconds). Empty (zero allocation)
/// for untraced runs; populated by [`Collector::finish`].
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    hists: Vec<LogHistogram>,
}

impl PhaseStats {
    /// An empty, non-collecting instance (what untraced runs carry).
    pub fn empty() -> Self {
        PhaseStats { hists: Vec::new() }
    }

    /// An instance with one histogram per [`Phase`], ready to record.
    pub fn collecting() -> Self {
        PhaseStats { hists: vec![LogHistogram::new(); PHASES] }
    }

    /// True when no phase data was collected.
    pub fn is_empty(&self) -> bool {
        self.hists.is_empty() || self.hists.iter().all(|h| h.count() == 0)
    }

    /// Records one span duration for `phase` (no-op when empty).
    pub fn record(&mut self, phase: Phase, dur_ns: u64) {
        if let Some(h) = self.hists.get_mut(phase as usize) {
            h.record(dur_ns);
        }
    }

    /// The histogram for `phase`, if collecting.
    pub fn get(&self, phase: Phase) -> Option<&LogHistogram> {
        self.hists.get(phase as usize)
    }

    /// Merges another instance into this one (adopting it wholesale if
    /// this one is empty).
    pub fn merge(&mut self, other: &PhaseStats) {
        if other.hists.is_empty() {
            return;
        }
        if self.hists.is_empty() {
            self.hists = other.hists.clone();
            return;
        }
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }

    /// Renders a per-phase count/p50/p95/p99/max table (µs), via
    /// `lsgd_metrics::table`. Empty string when nothing was collected.
    pub fn table(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut t = Table::new(vec!["phase", "count", "p50(us)", "p95(us)", "p99(us)", "max(us)"]);
        for p in Phase::ALL {
            let h = &self.hists[p as usize];
            if h.count() == 0 {
                continue;
            }
            let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
            t.row(vec![
                p.name().to_string(),
                h.count().to_string(),
                us(h.quantile(0.50)),
                us(h.quantile(0.95)),
                us(h.quantile(0.99)),
                us(h.max()),
            ]);
        }
        t.render()
    }
}

/// One drained span event, tagged with the worker lane it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Trace slot (lane) of the producing thread.
    pub worker: u32,
    /// Interned label id.
    pub label: u32,
    /// Span start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Everything one traced run produced: per-phase histograms, per-run
/// counter deltas, raw span events, and the label table.
#[derive(Debug, Clone, Default)]
pub struct TraceDump {
    /// Per-phase latency histograms (empty for untraced runs).
    pub phases: PhaseStats,
    /// `(counter name, per-run delta)` for every [`Counter`], in
    /// declaration order. Empty for untraced runs.
    pub counters: Vec<(&'static str, u64)>,
    /// All span events drained during the run.
    pub events: Vec<SpanEvent>,
    /// Label id → name (phases first, then interned labels).
    pub labels: Vec<String>,
    /// Span events discarded because a worker's ring was full.
    pub dropped: u64,
    /// Number of distinct worker lanes that produced data.
    pub workers: u32,
}

impl TraceDump {
    /// Per-run delta for one counter (0 for untraced runs).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters
            .get(c as usize)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// True when this dump carries no data (untraced run).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.counters.iter().all(|&(_, v)| v == 0)
    }

    /// Per-label duration histograms for *custom* labels (ids beyond the
    /// fixed phases), e.g. the per-layer spans of `profile_step`.
    pub fn label_stats(&self) -> Vec<(String, LogHistogram)> {
        let mut out: Vec<(String, LogHistogram)> = Vec::new();
        for e in &self.events {
            let id = e.label as usize;
            if id < PHASES {
                continue;
            }
            let name = self
                .labels
                .get(id)
                .cloned()
                .unwrap_or_else(|| format!("label-{id}"));
            match out.iter_mut().find(|(n, _)| *n == name) {
                Some((_, h)) => h.record(e.dur_ns),
                None => {
                    let mut h = LogHistogram::new();
                    h.record(e.dur_ns);
                    out.push((name, h));
                }
            }
        }
        out
    }

    /// Renders the full text report: phase table plus nonzero counters.
    pub fn report(&self) -> String {
        let mut s = String::new();
        if self.is_empty() {
            s.push_str("trace: no data (tracing disabled or nothing recorded)\n");
            return s;
        }
        let phases = self.phases.table();
        if !phases.is_empty() {
            s.push_str(&phases);
        }
        let nonzero: Vec<_> = self.counters.iter().filter(|&&(_, v)| v != 0).collect();
        if !nonzero.is_empty() {
            let mut t = Table::new(vec!["counter", "count"]);
            for &&(name, v) in &nonzero {
                t.row(vec![name.to_string(), v.to_string()]);
            }
            s.push_str(&t.render());
        }
        s.push_str(&format!(
            "workers: {}   dropped span events: {}\n",
            self.workers, self.dropped
        ));
        s
    }
}

// ---------------------------------------------------------------------------
// Enabled implementation: gate, registry, epoch clock, label interning.
// These deliberately use **std** atomics/locks, not the lsgd_check shims:
// instrumented production code must not create model-checker schedule
// points when it runs inside unrelated model tests (`enabled()` is
// forced false under `model_active()` for the same reason). Only the
// data-plane structures (ring, counter cells) are built on the shims,
// and those are model-checked directly in tests/model_trace.rs.
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod imp {
    use super::counters::CounterCell;
    use super::ring::EventRing;
    use super::Phase;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// Maximum number of distinct threads that can hold trace slots.
    /// Later threads fall off the end and record nothing.
    pub(crate) const MAX_WORKERS: usize = 64;
    /// Per-worker span ring capacity (power of two). At monitor-cadence
    /// draining this comfortably covers thousands of steps per second.
    const RING_CAP: usize = 4096;

    /// One thread's probes, padded so neighbouring cells never share a
    /// cache line (the whole point of per-worker cells).
    #[repr(align(128))]
    pub(crate) struct WorkerCell {
        pub(crate) counters: CounterCell,
        pub(crate) ring: EventRing,
    }

    pub(crate) struct Registry {
        pub(crate) cells: Vec<WorkerCell>,
        pub(crate) next: AtomicUsize,
        pub(crate) labels: Mutex<Vec<String>>,
    }

    /// Runtime gate: 0 = undetermined, 1 = off, 2 = on.
    static STATE: AtomicU8 = AtomicU8::new(0);
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }

    pub(crate) fn enabled() -> bool {
        // Never record from inside a model execution: the std atomics
        // here are invisible to the checker, and probes must not perturb
        // the schedules of the protocol under test.
        if lsgd_check::model_active() {
            return false;
        }
        // ORDERING: Relaxed — the gate is a monotone latch consulted for
        // an on/off decision only; it orders nothing else, and a stale
        // read merely delays the first recorded event by one probe.
        match STATE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => init_state(),
        }
    }

    #[cold]
    fn init_state() -> bool {
        let on = lsgd_check::env::flag("LSGD_TRACE")
            || lsgd_check::env::var("LSGD_TRACE_JSON").is_some();
        // ORDERING: Relaxed — see `enabled`: a latch, racing initializers
        // compute the same value.
        STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
        on
    }

    pub(crate) fn enable() {
        // ORDERING: Relaxed — see `enabled`.
        STATE.store(2, Ordering::Relaxed);
    }

    /// Nanoseconds since the first probe of the process.
    pub(crate) fn now_ns() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    fn registry() -> &'static Registry {
        REGISTRY.get_or_init(|| Registry {
            cells: (0..MAX_WORKERS)
                .map(|_| WorkerCell {
                    counters: CounterCell::new(),
                    ring: EventRing::new(RING_CAP),
                })
                .collect(),
            next: AtomicUsize::new(0),
            labels: Mutex::new(Phase::ALL.iter().map(|p| p.name().to_string()).collect()),
        })
    }

    /// The registry if any probe has fired yet. The collector uses this
    /// (never `registry()`) so merely constructing a [`super::Collector`]
    /// doesn't allocate the cells.
    pub(crate) fn registry_opt() -> Option<&'static Registry> {
        REGISTRY.get()
    }

    /// This thread's cell, assigning a slot on first use. `None` once
    /// [`MAX_WORKERS`] slots are taken or during thread teardown.
    pub(crate) fn my_cell() -> Option<&'static WorkerCell> {
        let slot = SLOT
            .try_with(|s| {
                let v = s.get();
                if v != usize::MAX {
                    return v;
                }
                // ORDERING: Relaxed — unique-ticket allocation; only
                // atomicity of fetch_add matters, not ordering.
                let v = registry().next.fetch_add(1, Ordering::Relaxed);
                s.set(v);
                v
            })
            .ok()?;
        registry().cells.get(slot)
    }

    /// Number of slots handed out so far (clamped to capacity).
    pub(crate) fn worker_count() -> u32 {
        registry_opt()
            // ORDERING: Relaxed — reporting-only read of the ticket
            // counter.
            .map(|r| r.next.load(Ordering::Relaxed).min(MAX_WORKERS) as u32)
            .unwrap_or(0)
    }

    pub(crate) fn intern(name: &str) -> u32 {
        let reg = registry();
        let mut labels = reg.labels.lock().expect("trace label registry poisoned");
        if let Some(i) = labels.iter().position(|l| l == name) {
            return i as u32;
        }
        labels.push(name.to_string());
        (labels.len() - 1) as u32
    }

    pub(crate) fn label_table() -> Vec<String> {
        registry_opt()
            .map(|r| r.labels.lock().expect("trace label registry poisoned").clone())
            .unwrap_or_else(|| Phase::ALL.iter().map(|p| p.name().to_string()).collect())
    }

    /// Collector-side totals across all cells (monotone, process-global).
    pub(crate) fn counter_totals() -> [u64; super::Counter::COUNT] {
        let mut totals = [0u64; super::Counter::COUNT];
        if let Some(reg) = registry_opt() {
            for cell in &reg.cells {
                let snap = cell.counters.snapshot();
                for (t, v) in totals.iter_mut().zip(snap) {
                    *t += v;
                }
            }
        }
        totals
    }

    /// Total span events dropped across all rings (monotone).
    pub(crate) fn dropped_total() -> u64 {
        registry_opt()
            .map(|r| r.cells.iter().map(|c| c.ring.dropped()).sum())
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Public probe API — identical signatures under both cfgs.
// ---------------------------------------------------------------------------

/// True when tracing is both compiled in and turned on at runtime
/// (`LSGD_TRACE=1`, `LSGD_TRACE_JSON=<path>`, or [`enable`]). Always
/// `false` inside model-checker executions.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "enabled")]
    {
        imp::enabled()
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Turns the runtime gate on programmatically (no-op when not compiled).
#[inline(always)]
pub fn enable() {
    #[cfg(feature = "enabled")]
    imp::enable();
}

/// The Chrome-trace output path, if `LSGD_TRACE_JSON` is set (and the
/// feature is compiled in).
pub fn chrome_path() -> Option<String> {
    #[cfg(feature = "enabled")]
    {
        lsgd_check::env::var("LSGD_TRACE_JSON")
    }
    #[cfg(not(feature = "enabled"))]
    {
        None
    }
}

/// Bumps `c` by one on the calling thread's cell.
#[inline(always)]
pub fn count(c: Counter) {
    count_n(c, 1);
}

/// Bumps `c` by `n` on the calling thread's cell.
#[inline(always)]
pub fn count_n(c: Counter, n: u64) {
    #[cfg(feature = "enabled")]
    {
        if imp::enabled() {
            if let Some(cell) = imp::my_cell() {
                cell.counters.add(c, n);
            }
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (c, n);
    }
}

/// Interns a custom span label. Cheap but not free (a mutex) — intern
/// once outside hot loops and reuse the [`Label`].
pub fn label(name: &str) -> Label {
    #[cfg(feature = "enabled")]
    {
        Label(imp::intern(name))
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        Label(0)
    }
}

/// RAII span: records `[construction, drop)` into the calling thread's
/// event ring. A zero-sized no-op when the feature is off.
#[cfg(feature = "enabled")]
#[must_use = "a span measures until dropped; binding it to _ ends it immediately"]
pub struct SpanGuard {
    label: u32,
    start_ns: u64,
    armed: bool,
}

#[cfg(feature = "enabled")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            if let Some(cell) = imp::my_cell() {
                cell.ring.push(SpanRecord {
                    label: self.label,
                    start_ns: self.start_ns,
                    dur_ns: imp::now_ns().saturating_sub(self.start_ns),
                });
            }
        }
    }
}

/// RAII span: records `[construction, drop)` into the calling thread's
/// event ring. A zero-sized no-op when the feature is off.
#[cfg(not(feature = "enabled"))]
#[must_use = "a span measures until dropped; binding it to _ ends it immediately"]
pub struct SpanGuard {
    _priv: (),
}

#[cfg(feature = "enabled")]
#[inline]
fn span_for(label: u32) -> SpanGuard {
    if imp::enabled() {
        SpanGuard { label, start_ns: imp::now_ns(), armed: true }
    } else {
        SpanGuard { label: 0, start_ns: 0, armed: false }
    }
}

#[cfg(not(feature = "enabled"))]
#[inline(always)]
fn span_for(_label: u32) -> SpanGuard {
    SpanGuard { _priv: () }
}

/// Opens a span for a fixed step-loop phase.
#[inline(always)]
pub fn span(phase: Phase) -> SpanGuard {
    span_for(phase as u32)
}

/// Opens a span for a custom interned label (see [`label`]).
#[inline(always)]
pub fn span_labeled(l: Label) -> SpanGuard {
    span_for(l.0)
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

/// Drains worker rings and computes per-run counter deltas. Create one
/// per run *before* the workers start, call [`Collector::sample`] at
/// monitor cadence (cheap; prevents ring overflow on long runs), and
/// [`Collector::finish`] after the workers join. A ZST no-op when the
/// feature is off.
#[cfg(feature = "enabled")]
pub struct Collector {
    counter_base: [u64; Counter::COUNT],
    dropped_base: u64,
    events: Vec<SpanEvent>,
}

#[cfg(feature = "enabled")]
impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(feature = "enabled")]
impl Collector {
    /// Snapshots current counter totals as the per-run baseline. Does
    /// not allocate the trace registry.
    pub fn new() -> Self {
        Collector {
            counter_base: imp::counter_totals(),
            dropped_base: imp::dropped_total(),
            events: Vec::new(),
        }
    }

    /// Drains every worker ring into the collector's event buffer.
    pub fn sample(&mut self) {
        let Some(reg) = imp::registry_opt() else { return };
        let mut buf = Vec::new();
        for (w, cell) in reg.cells.iter().enumerate() {
            buf.clear();
            cell.ring.drain(&mut buf);
            for r in &buf {
                self.events.push(SpanEvent {
                    worker: w as u32,
                    label: r.label,
                    start_ns: r.start_ns,
                    dur_ns: r.dur_ns,
                });
            }
        }
    }

    /// Final drain + aggregation into a [`TraceDump`].
    pub fn finish(mut self) -> TraceDump {
        self.sample();
        let totals = imp::counter_totals();
        let counters: Vec<_> = Counter::ALL
            .iter()
            .map(|&c| {
                (
                    c.name(),
                    totals[c as usize].saturating_sub(self.counter_base[c as usize]),
                )
            })
            .collect();
        let mut phases = PhaseStats::collecting();
        for e in &self.events {
            if (e.label as usize) < PHASES {
                phases.record(Phase::ALL[e.label as usize], e.dur_ns);
            }
        }
        if phases.is_empty() {
            phases = PhaseStats::empty();
        }
        TraceDump {
            phases,
            counters,
            events: self.events,
            labels: imp::label_table(),
            dropped: imp::dropped_total().saturating_sub(self.dropped_base),
            workers: imp::worker_count(),
        }
    }
}

/// Drains worker rings and computes per-run counter deltas (no-op: the
/// feature is off, so there is nothing to collect).
#[cfg(not(feature = "enabled"))]
#[derive(Default)]
pub struct Collector;

#[cfg(not(feature = "enabled"))]
impl Collector {
    /// No-op constructor.
    #[inline(always)]
    pub fn new() -> Self {
        Collector
    }

    /// No-op sample.
    #[inline(always)]
    pub fn sample(&mut self) {}

    /// Returns an empty [`TraceDump`].
    #[inline(always)]
    pub fn finish(self) -> TraceDump {
        TraceDump::default()
    }
}

#[cfg(all(test, not(lsgd_model)))]
mod tests {
    use super::*;

    #[test]
    fn phase_ids_are_reserved_label_prefix() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
        }
        assert_eq!(Phase::ALL.len(), PHASES);
    }

    #[test]
    fn phase_stats_table_and_merge() {
        let mut a = PhaseStats::collecting();
        for i in 0..100 {
            a.record(Phase::GradCompute, 1_000 + i);
            a.record(Phase::Publish, 50_000);
        }
        let mut b = PhaseStats::collecting();
        b.record(Phase::GradCompute, 2_000);
        a.merge(&b);
        assert_eq!(a.get(Phase::GradCompute).unwrap().count(), 101);
        let t = a.table();
        assert!(t.contains("grad-compute"));
        assert!(t.contains("publish"));
        assert!(!t.contains("pack"), "empty phases are omitted: {t}");

        let mut empty = PhaseStats::empty();
        empty.merge(&a);
        assert_eq!(empty.get(Phase::Publish).unwrap().count(), 100);
        assert!(PhaseStats::empty().table().is_empty());
    }

    #[test]
    fn dump_report_and_label_stats() {
        let dump = TraceDump {
            phases: PhaseStats::empty(),
            counters: Counter::ALL
                .iter()
                .map(|&c| (c.name(), if c == Counter::PublishRetry { 7 } else { 0 }))
                .collect(),
            events: vec![
                SpanEvent { worker: 0, label: PHASES as u32, start_ns: 0, dur_ns: 10 },
                SpanEvent { worker: 1, label: PHASES as u32, start_ns: 5, dur_ns: 30 },
            ],
            labels: {
                let mut l: Vec<String> = Phase::ALL.iter().map(|p| p.name().to_string()).collect();
                l.push("layer0.fwd".to_string());
                l
            },
            dropped: 0,
            workers: 2,
        };
        assert_eq!(dump.counter(Counter::PublishRetry), 7);
        assert_eq!(dump.counter(Counter::PublishAbort), 0);
        let stats = dump.label_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0, "layer0.fwd");
        assert_eq!(stats[0].1.count(), 2);
        let r = dump.report();
        assert!(r.contains("publish.cas_retry"));
        assert!(!r.contains("publish.abort"), "zero counters omitted: {r}");
    }

    #[test]
    fn empty_dump_reports_no_data() {
        let dump = TraceDump::default();
        assert!(dump.is_empty());
        assert!(dump.report().contains("no data"));
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_probes_are_inert() {
        #[allow(clippy::assertions_on_constants)] // the constant IS the claim under test
        {
            assert!(!COMPILED);
        }
        assert!(!enabled());
        count(Counter::StealHit);
        let g = span(Phase::GradCompute);
        drop(g);
        let l = label("anything");
        let g = span_labeled(l);
        drop(g);
        let mut c = Collector::new();
        c.sample();
        assert!(c.finish().is_empty());
    }
}
