//! Chrome-trace-event JSON sink (Perfetto / `chrome://tracing`
//! loadable) plus a minimal validating parser used by CI to prove the
//! emitted file is well-formed and carries ≥ 1 complete span per worker
//! lane.
//!
//! The file is a bare JSON array of event objects — the "JSON Array
//! Format" every trace viewer accepts. Each traced run becomes one
//! `pid` (Perfetto renders it as a separate process group), each worker
//! slot one `tid` lane within it; spans are complete (`"ph":"X"`)
//! events with microsecond `ts`/`dur`. Successive [`append_run`] calls
//! in one process accumulate into the same file (the file is rewritten
//! per call, mirroring the criterion shim's JSON sink), so a bench or
//! example that trains several modes produces one trace with one lane
//! group per mode.

use crate::TraceDump;
use std::fmt::Write as _;
use std::sync::Mutex;

struct Accum {
    path: String,
    next_pid: i64,
    events: Vec<String>,
}

/// Per-process accumulators, keyed by path, so one process can keep
/// appending run groups to each trace file it writes.
static ACCUM: Mutex<Vec<Accum>> = Mutex::new(Vec::new());

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Appends one run's spans to the trace file at `path` as a new `pid`
/// group named `run_label`, rewriting the file. Returns the pid used.
pub fn append_run(path: &str, run_label: &str, dump: &TraceDump) -> std::io::Result<i64> {
    let mut guard = ACCUM.lock().expect("chrome trace accumulator poisoned");
    let idx = match guard.iter().position(|a| a.path == path) {
        Some(i) => i,
        None => {
            guard.push(Accum { path: path.to_string(), next_pid: 1, events: Vec::new() });
            guard.len() - 1
        }
    };
    let accum = &mut guard[idx];
    let pid = accum.next_pid;
    accum.next_pid += 1;

    accum.events.push(format!(
        r#"{{"ph":"M","pid":{pid},"tid":0,"name":"process_name","args":{{"name":"{}"}}}}"#,
        json_escape(run_label)
    ));
    let mut lanes: Vec<u32> = dump.events.iter().map(|e| e.worker).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for w in &lanes {
        accum.events.push(format!(
            r#"{{"ph":"M","pid":{pid},"tid":{w},"name":"thread_name","args":{{"name":"worker-{w}"}}}}"#,
        ));
    }
    for e in &dump.events {
        let name = e
            .labels_name(dump)
            .map(json_escape)
            .unwrap_or_else(|| format!("label-{}", e.label));
        // Microsecond resolution with fractional part so sub-µs spans
        // keep a nonzero duration in the viewer.
        accum.events.push(format!(
            r#"{{"ph":"X","pid":{pid},"tid":{},"name":"{name}","ts":{:.3},"dur":{:.3}}}"#,
            e.worker,
            e.start_ns as f64 / 1e3,
            (e.dur_ns.max(1)) as f64 / 1e3,
        ));
    }

    let mut body = String::from("[\n");
    body.push_str(&accum.events.join(",\n"));
    body.push_str("\n]\n");
    std::fs::write(path, body)?;
    Ok(pid)
}

impl crate::SpanEvent {
    fn labels_name<'a>(&self, dump: &'a TraceDump) -> Option<&'a str> {
        dump.labels.get(self.label as usize).map(|s| s.as_str())
    }
}

// ---------------------------------------------------------------------------
// Validator: a deliberately small recursive-descent JSON parser — just
// enough to prove the file parses and to count complete spans per lane.
// ---------------------------------------------------------------------------

/// A parsed JSON value (validator-internal subset representation).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

/// What [`validate_str`] proved about a trace file.
#[derive(Debug, Clone)]
pub struct TraceFileSummary {
    /// Total number of events in the file.
    pub total_events: usize,
    /// `(pid, tid, complete-span count)` for every lane that carries at
    /// least one `"ph":"X"` event.
    pub span_lanes: Vec<(i64, i64, usize)>,
    /// Number of `thread_name` metadata lanes declared in the file.
    pub named_lanes: usize,
    /// Number of distinct run groups (pids).
    pub runs: usize,
}

impl TraceFileSummary {
    /// Minimum complete-span count across declared worker lanes — the
    /// CI gate asserts this is ≥ 1.
    pub fn min_spans_per_lane(&self) -> usize {
        self.span_lanes.iter().map(|&(_, _, n)| n).min().unwrap_or(0)
    }
}

/// Validates Chrome-trace JSON content: parses, checks the event-array
/// shape, checks every `X` event is complete (string name, numeric
/// nonnegative `ts`/`dur`, integer pid/tid), and demands every
/// `thread_name`-declared lane carries ≥ 1 complete span.
pub fn validate_str(s: &str) -> Result<TraceFileSummary, String> {
    let doc = parse_json(s)?;
    let events = match doc {
        Json::Arr(items) => items,
        _ => return Err("top-level value must be a JSON array of events".to_string()),
    };
    let mut span_lanes: Vec<(i64, i64, usize)> = Vec::new();
    let mut named: Vec<(i64, i64)> = Vec::new();
    let mut pids: Vec<i64> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string \"ph\""))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric \"pid\""))? as i64;
        let tid = ev
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric \"tid\""))? as i64;
        if !pids.contains(&pid) {
            pids.push(pid);
        }
        match ph {
            "X" => {
                ev.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: X event missing string \"name\""))?;
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X event missing numeric \"ts\""))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X event missing numeric \"dur\""))?;
                if ts.is_nan() || dur.is_nan() || ts < 0.0 || dur <= 0.0 {
                    return Err(format!(
                        "event {i}: X event has non-positive extent (ts={ts}, dur={dur})"
                    ));
                }
                match span_lanes.iter_mut().find(|(p, t, _)| *p == pid && *t == tid) {
                    Some((_, _, n)) => *n += 1,
                    None => span_lanes.push((pid, tid, 1)),
                }
            }
            "M" => {
                if ev.get("name").and_then(Json::as_str) == Some("thread_name") {
                    named.push((pid, tid));
                }
            }
            other => return Err(format!("event {i}: unsupported event type \"{other}\"")),
        }
    }
    for (pid, tid) in &named {
        if !span_lanes.iter().any(|(p, t, n)| p == pid && t == tid && *n > 0) {
            return Err(format!(
                "worker lane pid={pid} tid={tid} declares a thread_name but has no complete span"
            ));
        }
    }
    Ok(TraceFileSummary {
        total_events: events.len(),
        span_lanes,
        named_lanes: named.len(),
        runs: pids.len(),
    })
}

/// [`validate_str`] over a file on disk.
pub fn validate_file(path: &str) -> Result<TraceFileSummary, String> {
    let content =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    validate_str(&content)
}

#[cfg(all(test, not(lsgd_model)))]
mod tests {
    use super::*;
    use crate::{PhaseStats, SpanEvent, TraceDump};

    fn dump_with(events: Vec<SpanEvent>) -> TraceDump {
        TraceDump {
            phases: PhaseStats::empty(),
            counters: Vec::new(),
            events,
            labels: crate::Phase::ALL.iter().map(|p| p.name().to_string()).collect(),
            dropped: 0,
            workers: 2,
        }
    }

    #[test]
    fn parser_handles_the_grammar() {
        let v = parse_json(r#" {"a": [1, -2.5e3, "x\n\"y", true, false, null], "b": {}} "#)
            .unwrap();
        assert_eq!(v.get("a").map(|a| matches!(a, Json::Arr(items) if items.len() == 6)), Some(true));
        assert!(parse_json("[1,2,]").is_err());
        assert!(parse_json("[1,2] garbage").is_err());
        assert!(parse_json(r#"{"unterminated": "x"#).is_err());
    }

    #[test]
    fn append_run_emits_valid_perfetto_json() {
        let path = std::env::temp_dir().join("lsgd_trace_chrome_test.json");
        let path = path.to_str().unwrap();
        let dump = dump_with(vec![
            SpanEvent { worker: 0, label: 1, start_ns: 1_000, dur_ns: 2_000 },
            SpanEvent { worker: 1, label: 3, start_ns: 1_500, dur_ns: 500 },
        ]);
        let pid1 = append_run(path, "run-a", &dump).unwrap();
        let pid2 = append_run(path, "run-b", &dump).unwrap();
        assert_ne!(pid1, pid2);
        let summary = validate_file(path).unwrap();
        assert_eq!(summary.runs, 2);
        assert_eq!(summary.named_lanes, 4);
        assert!(summary.min_spans_per_lane() >= 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn validator_rejects_incomplete_spans() {
        let bad = r#"[{"ph":"X","pid":1,"tid":0,"name":"s","ts":0.0,"dur":0.0}]"#;
        assert!(validate_str(bad).is_err());
        let missing = r#"[{"ph":"X","pid":1,"tid":0,"ts":0.0,"dur":1.0}]"#;
        assert!(validate_str(missing).is_err());
        let orphan_lane = r#"[{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"w"}}]"#;
        assert!(validate_str(orphan_lane).is_err());
    }

    #[test]
    fn zero_duration_spans_are_clamped_on_export() {
        let path = std::env::temp_dir().join("lsgd_trace_chrome_clamp.json");
        let path = path.to_str().unwrap();
        let dump = dump_with(vec![SpanEvent { worker: 0, label: 0, start_ns: 0, dur_ns: 0 }]);
        append_run(path, "clamp", &dump).unwrap();
        let summary = validate_file(path).unwrap();
        assert!(summary.min_spans_per_lane() >= 1);
        let _ = std::fs::remove_file(path);
    }
}
