//! Per-worker counter cells: single-writer event counts with no
//! cross-thread read-modify-write on the hot path.
//!
//! Each worker owns one [`CounterCell`] (cache-line padded by the
//! registry in `lib.rs`). The owning worker bumps a counter with a plain
//! load+store — not `fetch_add` — which the single-writer discipline
//! makes safe and keeps the hot path free of atomic RMW traffic. The
//! collector reads the cells Relaxed from any thread; since each counter
//! is monotone, a concurrent read just sees a slightly stale prefix,
//! which is exactly what periodic sampling wants. The model suite
//! (`tests/model_trace.rs`) checks the no-lost-increments claim.

use lsgd_check::sync::{AtomicU64, Ordering};

/// Every protocol event the instrumentation layer counts. The variants
/// mirror the four instrumented layers: `lsgd_sync::SegQueue`,
/// `LeashedShared`/`ShardedShared` publication, the `lsgd_runtime`
/// scheduler, and snapshot reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// `SegQueue::pop` found the queue empty.
    QueueEmptyPop,
    /// `SegQueue::push` lost a CAS and retried.
    QueuePushRetry,
    /// `SegQueue::pop` lost a CAS and retried.
    QueuePopRetry,
    /// A dense (full-vector) publish was issued.
    PublishDense,
    /// A sparse (delta-indexed) publish was issued.
    PublishSparse,
    /// One attempt iteration inside the publish CAS loop.
    PublishAttempt,
    /// The publish CAS lost to a concurrent publisher and retried.
    PublishRetry,
    /// The publish gave up (persistence bound exhausted / aborted).
    PublishAbort,
    /// A snapshot read observed a stale pointer and retried.
    ReadRetry,
    /// A sharded Consistent snapshot failed validation and retried.
    SnapshotRetry,
    /// A sharded snapshot was returned inconsistent (retries exhausted).
    SnapshotInconsistent,
    /// The runtime attempted to steal from a sibling deque.
    StealAttempt,
    /// A steal attempt found work.
    StealHit,
    /// A steal attempt came home empty.
    StealMiss,
    /// A runtime worker went to sleep on the condvar.
    Park,
    /// A runtime worker was woken.
    Unpark,
    /// The runtime spilled a scoped task onto a temporary thread.
    SpillThread,
    /// A pressured pool allocation waited on the free list (gauge cap
    /// reached or an injected OOM).
    PoolPressureWait,
    /// A pressured pool allocation exhausted its bounded wait and was
    /// forced through past the cap.
    PoolPressureForced,
    /// A trainer worker panicked and was contained (run continued on
    /// the survivors).
    WorkerPanic,
    /// The monitor saw a worker make no progress for a full stall
    /// window.
    HeartbeatStall,
    /// A Consistent sharded snapshot exhausted its validate retries and
    /// degraded to a per-shard Fast read.
    SnapshotDegraded,
}

impl Counter {
    /// Number of counter variants (array size of a [`CounterCell`]).
    pub const COUNT: usize = 22;

    /// All variants, in declaration order (index == discriminant).
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::QueueEmptyPop,
        Counter::QueuePushRetry,
        Counter::QueuePopRetry,
        Counter::PublishDense,
        Counter::PublishSparse,
        Counter::PublishAttempt,
        Counter::PublishRetry,
        Counter::PublishAbort,
        Counter::ReadRetry,
        Counter::SnapshotRetry,
        Counter::SnapshotInconsistent,
        Counter::StealAttempt,
        Counter::StealHit,
        Counter::StealMiss,
        Counter::Park,
        Counter::Unpark,
        Counter::SpillThread,
        Counter::PoolPressureWait,
        Counter::PoolPressureForced,
        Counter::WorkerPanic,
        Counter::HeartbeatStall,
        Counter::SnapshotDegraded,
    ];

    /// Stable dotted name used in reports and the Chrome-trace export.
    pub fn name(self) -> &'static str {
        match self {
            Counter::QueueEmptyPop => "queue.empty_pop",
            Counter::QueuePushRetry => "queue.push_cas_retry",
            Counter::QueuePopRetry => "queue.pop_cas_retry",
            Counter::PublishDense => "publish.dense",
            Counter::PublishSparse => "publish.sparse",
            Counter::PublishAttempt => "publish.attempt",
            Counter::PublishRetry => "publish.cas_retry",
            Counter::PublishAbort => "publish.abort",
            Counter::ReadRetry => "read.stale_retry",
            Counter::SnapshotRetry => "snapshot.validate_retry",
            Counter::SnapshotInconsistent => "snapshot.inconsistent",
            Counter::StealAttempt => "steal.attempt",
            Counter::StealHit => "steal.hit",
            Counter::StealMiss => "steal.miss",
            Counter::Park => "runtime.park",
            Counter::Unpark => "runtime.unpark",
            Counter::SpillThread => "runtime.spill_thread",
            Counter::PoolPressureWait => "pool.pressure_wait",
            Counter::PoolPressureForced => "pool.pressure_forced",
            Counter::WorkerPanic => "trainer.worker_panic",
            Counter::HeartbeatStall => "trainer.heartbeat_stall",
            Counter::SnapshotDegraded => "snapshot.degraded_fast",
        }
    }
}

/// One worker's counters. Single writer (the owning worker), any number
/// of concurrent Relaxed readers (the collector).
pub struct CounterCell {
    counts: [AtomicU64; Counter::COUNT],
}

impl Default for CounterCell {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterCell {
    /// Creates a zeroed cell.
    pub fn new() -> Self {
        CounterCell {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Owner-only increment: plain load+store, no RMW. Safe because each
    /// cell has exactly one writer; concurrent collector reads are
    /// monotone-prefix reads, never writes.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        let a = &self.counts[c as usize];
        // ORDERING: Relaxed — single-writer counter: the owner always
        // sees its own latest store, and readers only need a monotone
        // (possibly stale) value, with no ordering against other memory.
        let v = a.load(Ordering::Relaxed);
        // ORDERING: Relaxed — same single-writer argument as the load.
        a.store(v + n, Ordering::Relaxed);
    }

    /// Collector-side read of one counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        // ORDERING: Relaxed — see `add`: monotone value, staleness is
        // acceptable for periodic sampling.
        self.counts[c as usize].load(Ordering::Relaxed)
    }

    /// Collector-side snapshot of all counters.
    pub fn snapshot(&self) -> [u64; Counter::COUNT] {
        std::array::from_fn(|i| {
            // ORDERING: Relaxed — see `add`.
            self.counts[i].load(Ordering::Relaxed)
        })
    }
}

#[cfg(all(test, not(lsgd_model)))]
mod tests {
    use super::*;

    #[test]
    fn all_table_matches_discriminants() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
    }

    #[test]
    fn add_and_snapshot_roundtrip() {
        let cell = CounterCell::new();
        cell.add(Counter::PublishRetry, 3);
        cell.add(Counter::PublishRetry, 2);
        cell.add(Counter::StealHit, 1);
        assert_eq!(cell.get(Counter::PublishRetry), 5);
        let snap = cell.snapshot();
        assert_eq!(snap[Counter::PublishRetry as usize], 5);
        assert_eq!(snap[Counter::StealHit as usize], 1);
        assert_eq!(snap[Counter::QueueEmptyPop as usize], 0);
    }
}
