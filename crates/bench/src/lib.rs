#![warn(missing_docs)]
//! # lsgd-bench — experiment harness for the Leashed-SGD reproduction
//!
//! One binary per paper figure/table (see DESIGN.md §4 for the full
//! index). Each binary prints the same rows/series the paper plots, plus a
//! `paper-vs-measured` note stating the published claim the output should
//! be compared against.
//!
//! All binaries accept a common set of flags (see [`cli::Args`]):
//!
//! ```text
//! --full            paper-scale parameters (68 threads, 11 reps, 60k samples)
//! --threads=a,b,c   thread counts to sweep
//! --reps=N          repetitions per configuration (paper: 11)
//! --samples=N       dataset size (paper: 60,000)
//! --batch=N         minibatch size (paper: 512)
//! --wall=SECS       per-run wall-clock budget
//! --seed=N          base RNG seed
//! --csv=DIR         also write raw CSV series to DIR
//! ```
//!
//! Defaults are scaled down so every figure regenerates in minutes on a
//! small machine; `--full` restores the paper's parameters (expect hours,
//! and a ≥36-core box for the high-parallelism points to be meaningful).

pub mod cli;
pub mod expect;
pub mod workloads;

pub use cli::Args;
