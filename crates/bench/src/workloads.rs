//! Workload construction and repeated-run helpers shared by the harness
//! binaries.

use crate::cli::Args;
use lsgd_core::prelude::*;
use lsgd_data::SynthDigits;
use lsgd_metrics::BoxStats;
use std::time::Duration;

/// Builds the paper's MLP workload (Table II network on MNIST-format
/// digits) at the scale requested by `args`.
pub fn mlp_problem(args: &Args) -> NnProblem {
    let data = SynthDigits::default().generate(args.samples, args.seed);
    let eval = (args.samples / 4).clamp(256, 2048);
    NnProblem::new(lsgd_nn::mlp_mnist(), data, args.batch, eval)
}

/// Builds the paper's CNN workload (Table III network).
pub fn cnn_problem(args: &Args) -> NnProblem {
    let data = SynthDigits::default().generate(args.samples, args.seed + 7);
    let eval = (args.samples / 4).clamp(256, 2048);
    NnProblem::new(lsgd_nn::cnn_mnist(), data, args.batch, eval)
}

/// A `TrainConfig` templated from the common args.
pub fn base_config(args: &Args, algorithm: Algorithm, threads: usize) -> TrainConfig {
    TrainConfig {
        algorithm,
        threads,
        eta: args.eta,
        epsilons: vec![0.5],
        max_updates: u64::MAX,
        max_wall: args.wall,
        eval_every: Duration::from_millis(60),
        seed: args.seed,
        staleness_cap: 1024,
        ..TrainConfig::default()
    }
}

/// Outcome counts over a set of repetitions of one configuration.
#[derive(Debug, Clone, Default)]
pub struct RepSummary {
    /// Wall-clock seconds of the converged runs, per ε (ordered as the
    /// config's epsilons).
    pub times: Vec<Vec<f64>>,
    /// Diverged-run count per ε.
    pub diverged: Vec<usize>,
    /// Crashed-run count per ε.
    pub crashed: Vec<usize>,
    /// All run results (for staleness/memory/trace extraction).
    pub runs: Vec<RunResult>,
}

impl RepSummary {
    /// Box statistics of time-to-ε for threshold index `i`.
    pub fn boxstats(&self, i: usize) -> Option<BoxStats> {
        BoxStats::from_samples(&self.times[i])
    }

    /// `"med 1.23s"`, or the diverge/crash tally when nothing converged.
    pub fn cell(&self, i: usize) -> String {
        match self.boxstats(i) {
            Some(b) => format!("{:.2}s (q1 {:.2}, q3 {:.2})", b.median, b.q1, b.q3),
            None => format!("- (div {}, crash {})", self.diverged[i], self.crashed[i]),
        }
    }
}

/// Runs `reps` independent executions (distinct seeds) of one
/// configuration and aggregates the per-ε outcomes.
pub fn run_reps<P: Problem>(problem: &P, cfg: &TrainConfig, reps: usize) -> RepSummary {
    let n_eps = cfg.epsilons.len();
    let mut out = RepSummary {
        times: vec![Vec::new(); n_eps],
        diverged: vec![0; n_eps],
        crashed: vec![0; n_eps],
        runs: Vec::with_capacity(reps),
    };
    for rep in 0..reps {
        let mut c = cfg.clone();
        c.seed = cfg.seed.wrapping_add(1000 * rep as u64);
        let r = train(problem, &c);
        for (i, (_, outcome)) in r.outcomes.iter().enumerate() {
            match outcome {
                lsgd_metrics::Outcome::Converged(d) => out.times[i].push(d.as_secs_f64()),
                lsgd_metrics::Outcome::Diverged => out.diverged[i] += 1,
                lsgd_metrics::Outcome::Crashed => out.crashed[i] += 1,
            }
        }
        out.runs.push(r);
    }
    out
}

/// The algorithm lineup to benchmark: full paper lineup at `m = 1`
/// (including SEQ), parallel lineup otherwise.
pub fn lineup_for(threads: usize) -> Vec<Algorithm> {
    if threads == 1 {
        Algorithm::paper_lineup()
    } else {
        Algorithm::parallel_lineup()
    }
}

/// Standard banner for harness binaries.
pub fn banner(fig: &str, what: &str, args: &Args) {
    println!("==============================================================");
    println!("  {fig} — {what}");
    println!(
        "  scale: {} | samples {} | batch {} | eta {} | reps {} | wall {:?}",
        if args.full { "FULL (paper)" } else { "quick" },
        args.samples,
        args.batch,
        args.eta,
        args.reps,
        args.wall
    );
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> Args {
        Args {
            samples: 200,
            batch: 16,
            wall: Duration::from_secs(3),
            ..Args::default()
        }
    }

    #[test]
    fn mlp_problem_is_table_ii() {
        let p = mlp_problem(&tiny_args());
        assert_eq!(p.dim(), lsgd_nn::architectures::MLP_D);
    }

    #[test]
    fn cnn_problem_is_table_iii() {
        let p = cnn_problem(&tiny_args());
        assert_eq!(p.dim(), lsgd_nn::architectures::CNN_D);
    }

    #[test]
    fn lineup_includes_seq_only_single_threaded() {
        assert_eq!(lineup_for(1).len(), 6);
        assert_eq!(lineup_for(4).len(), 5);
        assert!(!lineup_for(4).contains(&Algorithm::Sequential));
    }

    #[test]
    fn run_reps_aggregates_outcomes() {
        // A trivially convergent setup: blobs + tiny MLP.
        let data = lsgd_data::blobs::gaussian_blobs(300, 6, 3, 0.3, 1);
        let p = NnProblem::new(lsgd_nn::tiny_mlp(6, 12, 3), data, 16, 128);
        let cfg = TrainConfig {
            algorithm: Algorithm::Hogwild,
            threads: 2,
            eta: 0.2,
            epsilons: vec![0.5],
            max_wall: Duration::from_secs(5),
            eval_every: Duration::from_millis(10),
            ..TrainConfig::default()
        };
        let rs = run_reps(&p, &cfg, 2);
        assert_eq!(rs.runs.len(), 2);
        assert_eq!(rs.times[0].len() + rs.diverged[0] + rs.crashed[0], 2);
        assert!(rs.boxstats(0).is_some(), "blobs should converge: {rs:?}");
    }
}
