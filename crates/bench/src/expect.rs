//! The paper's published claims, printed next to our measurements.
//!
//! Absolute numbers cannot transfer (different hardware, synthetic data);
//! what must reproduce is the *shape*: orderings, stability differences
//! and approximate factors. Each harness binary prints the relevant entry
//! from here after its measured table.

/// Published expectation for one figure.
pub struct Expectation {
    /// Figure/table identifier.
    pub id: &'static str,
    /// What the paper reports.
    pub claim: &'static str,
}

/// The claims extracted from the paper's evaluation section.
pub const EXPECTATIONS: &[Expectation] = &[
    Expectation {
        id: "Fig. 3 (left)",
        claim: "Baselines (ASYNC, HOG) are best at m=16 and deteriorate beyond, \
                with many Diverge/Crash runs at m>16; LSH variants converge \
                stably up to m=56 with minimal staleness penalty.",
    },
    Expectation {
        id: "Fig. 3 (right)",
        claim: "Time per iteration stays roughly constant for baselines under \
                higher parallelism (even when diverging); LSH's iteration time \
                rises moderately under contention (self-regulation).",
    },
    Expectation {
        id: "Fig. 4",
        claim: "At m=16, LSH_ps_inf reaches eps=2.5% in ~65s median vs 89s \
                (ASYNC) and 80s (HOG): 20-30% faster with smaller spread. At \
                m=68 no baseline execution reaches eps=50%.",
    },
    Expectation {
        id: "Fig. 5",
        claim: "Loss-vs-time curves: LSH variants descend faster at every m; \
                at m=68 the baselines oscillate around the initialisation.",
    },
    Expectation {
        id: "Fig. 6",
        claim: "Staleness distributions shift right with m; persistence bound \
                lowers the whole distribution (ps0 < ps1 < ps_inf), ASYNC shows \
                high irregularity from lock contention.",
    },
    Expectation {
        id: "Fig. 7",
        claim: "CNN, m=16: LSH_ps0 reaches eps=10% in ~400s median vs ~500s \
                baselines, best runs below 100s (up to 4x speedup); fewer \
                diverging executions; similar staleness (low contention regime \
                because Tc/Tu is high).",
    },
    Expectation {
        id: "Fig. 8",
        claim: "Step-size sweep at m=16: baselines best at eta=0.005; LSH \
                tolerates larger eta (converges where baselines fail).",
    },
    Expectation {
        id: "Fig. 9",
        claim: "Tc (gradient): MLP ~40-60ms, CNN ~90-120ms (higher despite \
                smaller d, due to many small convolution GEMMs). Tu (update): \
                MLP ~0.5-0.9ms, CNN ~0.2-0.4ms. Tc/Tu ratio much higher for \
                CNN -> lower LAU-SPC contention.",
    },
    Expectation {
        id: "Fig. 10",
        claim: "Memory: LSH reduces CNN-training footprint by ~17% on average \
                vs baselines (dynamic allocation + recycling); MLP footprint \
                comparable or lower.",
    },
    Expectation {
        id: "Sec. IV",
        claim: "Thread balance converges to n*/m = Tu/(Tu+Tc); persistence \
                moves the fixed point to n*_gamma < n*; E[tau_s] ~ n*_gamma; \
                Tp=0 forces tau_s = 0 exactly.",
    },
];

/// Looks up and prints the expectation block for `id`.
pub fn print_expectation(id: &str) {
    for e in EXPECTATIONS {
        if e.id == id {
            println!("\n  paper-vs-measured — {}:", e.id);
            for line in textwrap(e.claim, 68) {
                println!("    | {line}");
            }
            return;
        }
    }
    panic!("no expectation recorded for {id}");
}

/// Tiny greedy word-wrapper for terminal output.
fn textwrap(s: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut cur = String::new();
    for word in s.split_whitespace() {
        if !cur.is_empty() && cur.len() + 1 + word.len() > width {
            lines.push(std::mem::take(&mut cur));
        }
        if !cur.is_empty() {
            cur.push(' ');
        }
        cur.push_str(word);
    }
    if !cur.is_empty() {
        lines.push(cur);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_figures_covered() {
        assert_eq!(EXPECTATIONS.len(), 10);
        for id in [
            "Fig. 3 (left)",
            "Fig. 4",
            "Fig. 7",
            "Fig. 9",
            "Fig. 10",
            "Sec. IV",
        ] {
            assert!(EXPECTATIONS.iter().any(|e| e.id == id), "{id} missing");
        }
    }

    #[test]
    fn textwrap_respects_width() {
        let lines = textwrap("a bb ccc dddd eeeee", 6);
        for l in &lines {
            assert!(l.len() <= 6, "{l}");
        }
        assert_eq!(lines.join(" "), "a bb ccc dddd eeeee");
    }

    #[test]
    #[should_panic]
    fn unknown_id_panics() {
        print_expectation("Fig. 99");
    }
}
