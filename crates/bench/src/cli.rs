//! Minimal flag parsing shared by the harness binaries (no external CLI
//! dependency — the workspace's dependency budget is spent on the science).

use std::time::Duration;

/// Parsed common flags.
#[derive(Debug, Clone)]
pub struct Args {
    /// Paper-scale mode.
    pub full: bool,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Repetitions per configuration.
    pub reps: usize,
    /// Dataset size.
    pub samples: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Per-run wall budget.
    pub wall: Duration,
    /// Base seed.
    pub seed: u64,
    /// Step size η.
    pub eta: f32,
    /// Optional CSV output directory.
    pub csv: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            full: false,
            threads: vec![1, 2, 4],
            reps: 3,
            samples: 2_000,
            batch: 64,
            wall: Duration::from_secs(15),
            seed: 1,
            eta: 0.05,
            csv: None,
        }
    }
}

impl Args {
    /// Parses `std::env::args`, panicking with a usage message on unknown
    /// flags. `defaults` seeds the pre-flag values so each binary can pick
    /// its own scale.
    pub fn parse(defaults: Args) -> Args {
        Self::parse_from(std::env::args().skip(1), defaults)
    }

    /// Testable parser over an explicit iterator.
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I, defaults: Args) -> Args {
        let mut a = defaults;
        for arg in iter {
            let (key, value) = match arg.split_once('=') {
                Some((k, v)) => (k.to_string(), Some(v.to_string())),
                None => (arg.clone(), None),
            };
            let req = |v: &Option<String>| -> String {
                v.clone()
                    .unwrap_or_else(|| panic!("flag {key} requires =value"))
            };
            match key.as_str() {
                "--full" => {
                    a.full = true;
                    // Paper-scale defaults (overridable by later flags).
                    a.threads = vec![1, 4, 8, 16, 24, 32, 34, 40, 48, 56, 64, 68];
                    a.reps = 11;
                    a.samples = 60_000;
                    a.batch = 512;
                    a.wall = Duration::from_secs(120);
                    a.eta = 0.005;
                }
                "--threads" => {
                    a.threads = req(&value)
                        .split(',')
                        .map(|s| s.parse().expect("bad thread count"))
                        .collect();
                }
                "--reps" => a.reps = req(&value).parse().expect("bad reps"),
                "--samples" => a.samples = req(&value).parse().expect("bad samples"),
                "--batch" => a.batch = req(&value).parse().expect("bad batch"),
                "--wall" => {
                    a.wall = Duration::from_secs_f64(req(&value).parse().expect("bad wall"))
                }
                "--seed" => a.seed = req(&value).parse().expect("bad seed"),
                "--eta" => a.eta = req(&value).parse().expect("bad eta"),
                "--csv" => a.csv = Some(req(&value)),
                "--help" | "-h" => {
                    eprintln!(
                        "common flags: --full --threads=a,b,c --reps=N --samples=N \
                         --batch=N --wall=SECS --seed=N --eta=F --csv=DIR"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        a
    }

    /// Writes `content` to `<csv_dir>/<name>` when `--csv` was given.
    pub fn maybe_write_csv(&self, name: &str, content: &str) {
        if let Some(dir) = &self.csv {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{name}");
            std::fs::write(&path, content).expect("write csv");
            println!("  [csv] wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse_from(args.iter().map(|s| s.to_string()), Args::default())
    }

    #[test]
    fn defaults_without_flags() {
        let a = parse(&[]);
        assert!(!a.full);
        assert_eq!(a.threads, vec![1, 2, 4]);
        assert_eq!(a.reps, 3);
    }

    #[test]
    fn full_flag_restores_paper_scale() {
        let a = parse(&["--full"]);
        assert!(a.full);
        assert_eq!(a.reps, 11);
        assert_eq!(a.samples, 60_000);
        assert_eq!(a.batch, 512);
        assert!(a.threads.contains(&68));
        assert!((a.eta - 0.005).abs() < 1e-9);
    }

    #[test]
    fn explicit_flags_override_full() {
        let a = parse(&["--full", "--reps=2", "--threads=3,5"]);
        assert_eq!(a.reps, 2);
        assert_eq!(a.threads, vec![3, 5]);
    }

    #[test]
    fn value_flags_parse() {
        let a = parse(&["--wall=2.5", "--seed=9", "--eta=0.01", "--batch=128"]);
        assert_eq!(a.wall, Duration::from_secs_f64(2.5));
        assert_eq!(a.seed, 9);
        assert_eq!(a.batch, 128);
    }

    #[test]
    #[should_panic]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }
}
