//! Fig. 9 — gradient computation time (Tc) and parameter update time (Tu)
//! for the MLP and CNN workloads.
//!
//! The paper's appendix measures these two distributions because their
//! ratio `Tc/Tu` drives the entire Section-IV contention analysis: the CNN
//! has a *smaller* parameter vector (faster Tu) but *slower* gradients
//! (many small convolution GEMMs), so its LAU-SPC loop is nearly
//! uncontended, while the MLP's lower ratio produces the contention the
//! persistence bound then regulates.

use lsgd_bench::expect::print_expectation;
use lsgd_bench::workloads::{banner, base_config, cnn_problem, mlp_problem};
use lsgd_bench::Args;
use lsgd_core::prelude::*;
use lsgd_dynamics::FluidModel;
use lsgd_metrics::table::Table;

fn main() {
    let args = Args::parse(Args::default());
    banner("Fig. 9", "gradient computation (Tc) and update (Tu) times", &args);

    let mut table = Table::new(vec![
        "arch", "d", "Tc mean", "Tc min..max", "Tu mean", "Tu min..max", "Tc/Tu", "n*/m (m=16)",
    ]);

    let mut ratios = Vec::new();
    for (name, problem) in [
        ("MLP", mlp_problem(&args)),
        ("CNN", cnn_problem(&args)),
    ] {
        // A short single-run training with 2 threads gathers the samples
        // (the paper measures within its normal executions too).
        let mut cfg = base_config(&args, Algorithm::Leashed { persistence: None }, 2);
        cfg.epsilons = vec![0.01]; // don't stop early; let wall budget rule
        cfg.max_wall = args.wall;
        let r = train(&problem, &cfg);
        let ms = 1e3;
        let ratio = r.tc.mean() / r.tu.mean().max(1e-12);
        let fluid = FluidModel::new(16.0, r.tc.mean(), r.tu.mean().max(1e-12));
        table.row(vec![
            name.to_string(),
            format!("{}", problem.dim()),
            format!("{:.2}ms", r.tc.mean() * ms),
            format!("{:.2}..{:.2}ms", r.tc.min() * ms, r.tc.max() * ms),
            format!("{:.3}ms", r.tu.mean() * ms),
            format!("{:.3}..{:.3}ms", r.tu.min() * ms, r.tu.max() * ms),
            format!("{ratio:.0}"),
            format!("{:.4}", fluid.balance()),
        ]);
        ratios.push((name, ratio));
    }
    println!("{}", table.render());

    let mlp_ratio = ratios[0].1;
    let cnn_ratio = ratios[1].1;
    println!(
        "  shape check: CNN Tc/Tu ({cnn_ratio:.0}) {} MLP Tc/Tu ({mlp_ratio:.0}) — paper expects CNN >> MLP",
        if cnn_ratio > mlp_ratio { ">" } else { "<= (MISMATCH)" }
    );
    print_expectation("Fig. 9");
}
