//! Fig. 8 (appendix) — step-size tuning: convergence rate and statistical
//! efficiency across η, MLP at fixed parallelism.
//!
//! The paper uses this sweep to select η = 0.005 for the baselines and to
//! show Leashed-SGD tolerates larger step sizes — part of its "reduced
//! dependency on hyper-parameter tuning" claim (Fig. 1).

use lsgd_bench::expect::print_expectation;
use lsgd_bench::workloads::{banner, base_config, lineup_for, mlp_problem, run_reps};
use lsgd_bench::Args;
use lsgd_metrics::table::Table;

fn main() {
    let args = Args::parse(Args::default());
    banner("Fig. 8", "step-size sweep: time + iterations to eps=50%", &args);
    let problem = mlp_problem(&args);
    let m = if args.full {
        16
    } else {
        *args.threads.last().unwrap_or(&2)
    };
    let etas: Vec<f32> = if args.full {
        vec![0.001, 0.003, 0.005, 0.007, 0.009]
    } else {
        // Quick scale trains a smaller effective problem; shift the sweep
        // up so the fastest settings actually converge inside the budget.
        vec![0.01, 0.03, 0.05, 0.07, 0.09]
    };

    let mut time_tbl = Table::new(vec![
        "eta", "algo", "time to 50%", "diverge", "crash",
    ]);
    let mut iter_tbl = Table::new(vec!["eta", "algo", "iterations to 50% (median)"]);
    let mut csv = String::from("eta,algo,median_s,median_iters,diverged,crashed\n");

    for &eta in &etas {
        for algo in lineup_for(m) {
            let mut cfg = base_config(&args, algo, m);
            cfg.eta = eta;
            let rs = run_reps(&problem, &cfg, args.reps);
            time_tbl.row(vec![
                format!("{eta}"),
                algo.label(),
                rs.cell(0),
                rs.diverged[0].to_string(),
                rs.crashed[0].to_string(),
            ]);
            // Statistical efficiency: published updates when 50% was hit.
            let mut iters: Vec<f64> = rs
                .runs
                .iter()
                .filter_map(|r| r.iters_to_eps[0].1.map(|u| u as f64))
                .collect();
            iters.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let med_iters = if iters.is_empty() {
                "-".to_string()
            } else {
                format!("{:.0}", iters[iters.len() / 2])
            };
            iter_tbl.row(vec![format!("{eta}"), algo.label(), med_iters.clone()]);
            let med = rs
                .boxstats(0)
                .map(|b| format!("{:.3}", b.median))
                .unwrap_or_else(|| "-".into());
            csv.push_str(&format!(
                "{eta},{},{med},{med_iters},{},{}\n",
                algo.label(),
                rs.diverged[0],
                rs.crashed[0]
            ));
        }
    }
    println!("--- convergence rate (wall-clock) ---");
    println!("{}", time_tbl.render());
    println!("--- statistical efficiency (iterations) ---");
    println!("{}", iter_tbl.render());
    args.maybe_write_csv("fig8.csv", &csv);
    print_expectation("Fig. 8");
}
