//! Per-layer timing decomposition of one NN gradient step — the
//! diagnostic behind the sgd_step benchmark's optimisation work. A thin
//! consumer of `lsgd_trace` labeled spans: every (layer, direction) rep
//! opens a span, and the report is the drained trace's per-label
//! p50/p95/p99 table — the same machinery the trainer's phase stats use,
//! so there is exactly one timing path to trust.
//!
//! ```text
//! cargo run --release -p lsgd_bench --features trace --bin profile_step [baseline]
//! ```

use lsgd_metrics::table::Table;
use lsgd_nn::{ComputeOpts, Layer, LayerCache, Network, StepCtx};
use lsgd_tensor::{Matrix, SmallRng64};

fn time_network(name: &str, net: &Network, batch: usize, baseline: bool) {
    let theta = net.init_params(1);
    let mut rng = SmallRng64::new(2);
    let x = Matrix::from_fn(batch, net.in_dim(), |_, _| rng.next_f32() - 0.5);
    let y: Vec<u8> = (0..batch)
        .map(|_| rng.next_below(net.n_classes()) as u8)
        .collect();
    let mut ws = net.workspace(batch);
    if baseline {
        ws.set_compute_opts(ComputeOpts::baseline());
    }
    let mut grad = vec![0.0f32; net.param_len()];
    // Warm up.
    for _ in 0..5 {
        net.loss_grad(&theta, &x, &y, &mut grad, &mut ws);
    }
    let label = lsgd_trace::label(&format!("{name} batch={batch} loss_grad"));
    for _ in 0..50 {
        let _span = lsgd_trace::span_labeled(label);
        net.loss_grad(&theta, &x, &y, &mut grad, &mut ws);
    }
}

/// Times one layer's forward and backward in isolation, one labeled span
/// per rep.
fn time_layer(l: &dyn Layer, batch: usize, baseline: bool) {
    let mut rng = SmallRng64::new(3);
    let mut params = vec![0.0f32; l.param_len()];
    for v in &mut params {
        *v = rng.next_f32() - 0.5;
    }
    let x = Matrix::from_fn(batch, l.in_dim(), |_, _| rng.next_f32() - 0.5);
    let dy = Matrix::from_fn(batch, l.out_dim(), |_, _| rng.next_f32() - 0.5);
    let mut yv = Matrix::zeros(batch, l.out_dim());
    let mut dx = Matrix::zeros(batch, l.in_dim());
    let mut dp = vec![0.0f32; l.param_len()];
    let mut cache = LayerCache::default();
    let mut ctx = if baseline {
        StepCtx {
            use_panels: false,
            threads: 1,
            ..StepCtx::default()
        }
    } else {
        StepCtx::default()
    };
    for _ in 0..5 {
        ctx.panels.begin_step();
        l.forward(&params, &x, &mut yv, &mut cache, &mut ctx);
        l.backward(&params, &x, &yv, &dy, &mut cache, &mut ctx, &mut dp, &mut dx);
    }
    let fwd = lsgd_trace::label(&format!("{} fwd", l.describe()));
    let bwd = lsgd_trace::label(&format!("{} bwd", l.describe()));
    let reps = 100;
    for _ in 0..reps {
        ctx.panels.begin_step();
        let _span = lsgd_trace::span_labeled(fwd);
        l.forward(&params, &x, &mut yv, &mut cache, &mut ctx);
    }
    for _ in 0..reps {
        let _span = lsgd_trace::span_labeled(bwd);
        l.backward(&params, &x, &yv, &dy, &mut cache, &mut ctx, &mut dp, &mut dx);
    }
}

fn main() {
    if !lsgd_trace::COMPILED {
        eprintln!(
            "profile_step needs the trace probes compiled in; rerun with\n  \
             cargo run --release -p lsgd_bench --features trace --bin profile_step"
        );
        std::process::exit(2);
    }
    lsgd_trace::enable();
    let baseline = std::env::args().any(|a| a == "baseline");
    let batch = 64;
    println!(
        "== per-layer (batch {batch}, {} path) ==",
        if baseline { "baseline" } else { "fast" }
    );
    use lsgd_nn::activation::Relu;
    use lsgd_nn::conv::Conv2d;
    use lsgd_nn::dense::Dense;
    use lsgd_nn::pool::MaxPool2d;
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(1, 28, 28, 4, 3)),
        Box::new(Relu::new(4 * 26 * 26)),
        Box::new(MaxPool2d::new(4, 26, 26, 2)),
        Box::new(Conv2d::new(4, 13, 13, 8, 3)),
        Box::new(MaxPool2d::new(8, 11, 11, 2)),
        Box::new(Dense::new(200, 128)),
        Box::new(Dense::new(128, 10)),
    ];
    let mut collector = lsgd_trace::Collector::new();
    for l in &layers {
        time_layer(l.as_ref(), batch, baseline);
        collector.sample(); // keep the ring from wrapping between layers
    }
    time_network("cnn", &lsgd_nn::cnn_mnist(), 64, baseline);
    collector.sample();
    time_network("mlp", &lsgd_nn::mlp_mnist(), 128, baseline);

    let dump = collector.finish();
    let mut t = Table::new(vec!["site", "reps", "p50 µs", "p95 µs", "p99 µs"]);
    let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
    for (name, h) in dump.label_stats() {
        t.row(vec![
            name,
            h.count().to_string(),
            us(h.quantile(0.50)),
            us(h.quantile(0.95)),
            us(h.quantile(0.99)),
        ]);
    }
    print!("{}", t.render());
    if let Some(path) = lsgd_trace::chrome_path() {
        let tag = if baseline { "profile_step baseline" } else { "profile_step fast" };
        match lsgd_trace::chrome::append_run(&path, tag, &dump) {
            Ok(_) => println!("chrome trace appended to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
