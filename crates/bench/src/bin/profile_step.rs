//! Per-layer timing decomposition of one NN gradient step — the
//! diagnostic behind the sgd_step benchmark's optimisation work. Prints
//! wall time per (layer, direction) for the Table III CNN and Table II
//! MLP at training minibatch sizes, on the current compute path.
//!
//! ```text
//! cargo run --release -p lsgd_bench --bin profile_step [baseline]
//! ```

use lsgd_nn::{ComputeOpts, Layer, LayerCache, Network, StepCtx};
use lsgd_tensor::{Matrix, SmallRng64};
use std::time::Instant;

fn time_network(name: &str, net: &Network, batch: usize, baseline: bool) {
    let theta = net.init_params(1);
    let mut rng = SmallRng64::new(2);
    let x = Matrix::from_fn(batch, net.in_dim(), |_, _| rng.next_f32() - 0.5);
    let y: Vec<u8> = (0..batch)
        .map(|_| rng.next_below(net.n_classes()) as u8)
        .collect();
    let mut ws = net.workspace(batch);
    if baseline {
        ws.set_compute_opts(ComputeOpts::baseline());
    }
    let mut grad = vec![0.0f32; net.param_len()];
    // Warm up.
    for _ in 0..5 {
        net.loss_grad(&theta, &x, &y, &mut grad, &mut ws);
    }
    let reps = 50;
    let t0 = Instant::now();
    for _ in 0..reps {
        net.loss_grad(&theta, &x, &y, &mut grad, &mut ws);
    }
    let per = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "{name} batch={batch} {}: loss_grad {:.3} ms",
        if baseline { "baseline" } else { "fast" },
        per * 1e3
    );
}

/// Times one layer's forward and backward in isolation.
fn time_layer(l: &dyn Layer, batch: usize, baseline: bool) {
    let mut rng = SmallRng64::new(3);
    let mut params = vec![0.0f32; l.param_len()];
    for v in &mut params {
        *v = rng.next_f32() - 0.5;
    }
    let x = Matrix::from_fn(batch, l.in_dim(), |_, _| rng.next_f32() - 0.5);
    let dy = Matrix::from_fn(batch, l.out_dim(), |_, _| rng.next_f32() - 0.5);
    let mut yv = Matrix::zeros(batch, l.out_dim());
    let mut dx = Matrix::zeros(batch, l.in_dim());
    let mut dp = vec![0.0f32; l.param_len()];
    let mut cache = LayerCache::default();
    let mut ctx = if baseline {
        StepCtx {
            use_panels: false,
            threads: 1,
            ..StepCtx::default()
        }
    } else {
        StepCtx::default()
    };
    let reps = 100;
    for _ in 0..5 {
        ctx.panels.begin_step();
        l.forward(&params, &x, &mut yv, &mut cache, &mut ctx);
        l.backward(&params, &x, &yv, &dy, &mut cache, &mut ctx, &mut dp, &mut dx);
    }
    let t0 = Instant::now();
    for _ in 0..reps {
        ctx.panels.begin_step();
        l.forward(&params, &x, &mut yv, &mut cache, &mut ctx);
    }
    let fwd = t0.elapsed().as_secs_f64() / reps as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        l.backward(&params, &x, &yv, &dy, &mut cache, &mut ctx, &mut dp, &mut dx);
    }
    let bwd = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "  {:<44} fwd {:>9.1} µs   bwd {:>9.1} µs",
        l.describe(),
        fwd * 1e6,
        bwd * 1e6
    );
}

fn main() {
    let baseline = std::env::args().any(|a| a == "baseline");
    let batch = 64;
    println!("== per-layer (batch {batch}, {} path) ==", if baseline { "baseline" } else { "fast" });
    use lsgd_nn::activation::Relu;
    use lsgd_nn::conv::Conv2d;
    use lsgd_nn::dense::Dense;
    use lsgd_nn::pool::MaxPool2d;
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(1, 28, 28, 4, 3)),
        Box::new(Relu::new(4 * 26 * 26)),
        Box::new(MaxPool2d::new(4, 26, 26, 2)),
        Box::new(Conv2d::new(4, 13, 13, 8, 3)),
        Box::new(MaxPool2d::new(8, 11, 11, 2)),
        Box::new(Dense::new(200, 128)),
        Box::new(Dense::new(128, 10)),
    ];
    for l in &layers {
        time_layer(l.as_ref(), batch, baseline);
    }
    time_network("cnn", &lsgd_nn::cnn_mnist(), 64, baseline);
    time_network("mlp", &lsgd_nn::mlp_mnist(), 128, baseline);
}
