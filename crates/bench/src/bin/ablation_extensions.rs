//! Ablation — the extension features on top of the paper's setting:
//!
//! 1. **Top-k gradient sparsification** (paper §VII future work): density
//!    sweep × {HOG, LSH} on the MLP workload. Sparse updates are the
//!    regime where HOGWILD!'s inconsistency is provably cheap; this
//!    quantifies what consistency costs/buys as density varies.
//! 2. **Staleness-adaptive step size** (MindTheStep direction): constant
//!    vs `η/(1+βτ)` at an aggressive base step under oversubscription,
//!    where constant-step runs destabilise.

use lsgd_bench::workloads::{banner, base_config, mlp_problem, run_reps};
use lsgd_bench::Args;
use lsgd_core::prelude::*;
use lsgd_core::trainer::EtaPolicy;
use lsgd_metrics::table::Table;

fn main() {
    let args = Args::parse(Args::default());
    banner("Ablation", "sparsification density + adaptive step size", &args);
    let problem = mlp_problem(&args);
    let m = *args.threads.last().unwrap_or(&2);

    println!("\n--- 1. gradient sparsification (keep-fraction sweep, m = {m}) ---");
    let mut table = Table::new(vec![
        "density", "algo", "time to 50%", "diverge", "crash", "updates/s",
    ]);
    for density in [1.0f32, 0.3, 0.1, 0.03] {
        for algo in [
            Algorithm::Hogwild,
            Algorithm::Leashed { persistence: Some(1) },
        ] {
            let mut cfg = base_config(&args, algo, m);
            cfg.sparsify = (density < 1.0).then_some(density);
            let rs = run_reps(&problem, &cfg, args.reps);
            let ups: f64 = rs.runs.iter().map(|r| r.updates_per_sec()).sum::<f64>()
                / rs.runs.len() as f64;
            table.row(vec![
                format!("{density}"),
                algo.label(),
                rs.cell(0),
                rs.diverged[0].to_string(),
                rs.crashed[0].to_string(),
                format!("{ups:.0}"),
            ]);
        }
    }
    println!("{}", table.render());

    println!("\n--- 2. staleness-adaptive step size (hot base eta, m = {}) ---", m * 4);
    let hot_eta = args.eta * 8.0;
    let mut table = Table::new(vec![
        "policy", "algo", "time to 50%", "diverge", "crash",
    ]);
    for (name, policy) in [
        ("constant", EtaPolicy::Constant),
        ("tau-adaptive b=0.5", EtaPolicy::TauAdaptive { beta: 0.5 }),
    ] {
        for algo in [
            Algorithm::Hogwild,
            Algorithm::Leashed { persistence: None },
        ] {
            let mut cfg = base_config(&args, algo, m * 4);
            cfg.eta = hot_eta;
            cfg.eta_policy = policy;
            let rs = run_reps(&problem, &cfg, args.reps);
            table.row(vec![
                name.to_string(),
                algo.label(),
                rs.cell(0),
                rs.diverged[0].to_string(),
                rs.crashed[0].to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "  expectation: density well below 1 keeps convergence (top-k carries\n\
         \x20 most of the signal) while extreme sparsity slows it; the adaptive\n\
         \x20 policy rescues hot step sizes that destabilise constant-step runs."
    );
}
