//! Fig. 3 — ε=50% convergence rate (left) and computational efficiency
//! (right) for MLP training under varying parallelism.
//!
//! For each thread count `m` and algorithm, runs `reps` independent
//! executions and reports the box statistics of the wall-clock time to
//! 50%-convergence, the Diverge/Crash counts, and the mean time per SGD
//! iteration.

use lsgd_bench::expect::print_expectation;
use lsgd_bench::workloads::{banner, base_config, lineup_for, mlp_problem, run_reps};
use lsgd_bench::Args;
use lsgd_metrics::table::Table;

fn main() {
    let args = Args::parse(Args::default());
    banner("Fig. 3", "MLP scalability: time to eps=50% + time/iteration", &args);
    let problem = mlp_problem(&args);

    let mut left = Table::new(vec![
        "m", "algo", "time to eps=50%", "diverge", "crash", "updates/s",
    ]);
    let mut right = Table::new(vec!["m", "algo", "time/iter (mean)", "Tc mean", "Tu mean"]);
    let mut csv = String::from("m,algo,median_s,diverged,crashed,iter_ms\n");

    for &m in &args.threads {
        for algo in lineup_for(m) {
            let cfg = base_config(&args, algo, m);
            let rs = run_reps(&problem, &cfg, args.reps);
            let ups: f64 = rs.runs.iter().map(|r| r.updates_per_sec()).sum::<f64>()
                / rs.runs.len() as f64;
            left.row(vec![
                m.to_string(),
                algo.label(),
                rs.cell(0),
                rs.diverged[0].to_string(),
                rs.crashed[0].to_string(),
                format!("{ups:.0}"),
            ]);
            let iter_ms: f64 = rs.runs.iter().map(|r| r.iter_time.mean()).sum::<f64>()
                / rs.runs.len() as f64
                * 1e3;
            let tc: f64 =
                rs.runs.iter().map(|r| r.tc.mean()).sum::<f64>() / rs.runs.len() as f64 * 1e3;
            let tu: f64 =
                rs.runs.iter().map(|r| r.tu.mean()).sum::<f64>() / rs.runs.len() as f64 * 1e3;
            right.row(vec![
                m.to_string(),
                algo.label(),
                format!("{iter_ms:.2}ms"),
                format!("{tc:.2}ms"),
                format!("{tu:.3}ms"),
            ]);
            let med = rs
                .boxstats(0)
                .map(|b| format!("{:.3}", b.median))
                .unwrap_or_else(|| "-".into());
            csv.push_str(&format!(
                "{m},{},{med},{},{},{iter_ms:.3}\n",
                algo.label(),
                rs.diverged[0],
                rs.crashed[0]
            ));
        }
    }

    println!("--- Fig. 3 left: convergence rate ---");
    println!("{}", left.render());
    println!("--- Fig. 3 right: computational efficiency ---");
    println!("{}", right.render());
    args.maybe_write_csv("fig3.csv", &csv);
    print_expectation("Fig. 3 (left)");
    print_expectation("Fig. 3 (right)");
}
