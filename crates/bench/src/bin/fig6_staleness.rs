//! Fig. 6 — staleness distributions for MLP training at several
//! parallelism levels.
//!
//! For each thread count and algorithm: the distribution of the per-update
//! staleness τ (concurrent updates between a worker's read of θ and its
//! update landing), plus Leashed-SGD's scheduling component τs, which the
//! persistence bound regulates (§IV.2).

use lsgd_bench::expect::print_expectation;
use lsgd_bench::workloads::{banner, base_config, lineup_for, mlp_problem};
use lsgd_bench::Args;
use lsgd_core::prelude::*;
use lsgd_metrics::table::Table;

fn main() {
    let args = Args::parse(Args::default());
    banner("Fig. 6", "MLP staleness distributions", &args);
    let problem = mlp_problem(&args);

    for &m in &args.threads {
        println!("\n--- m = {m} threads ---");
        let mut table = Table::new(vec![
            "algo", "updates", "tau mean", "tau p50", "tau p95", "tau max", "tau_s mean",
            "aborted",
        ]);
        let mut csv = String::from("algo,tau,count\n");
        for algo in lineup_for(m) {
            let mut cfg = base_config(&args, algo, m);
            cfg.epsilons = vec![0.02]; // run the full budget
            let r = train(&problem, &cfg);
            table.row(vec![
                algo.label(),
                r.published.to_string(),
                format!("{:.2}", r.staleness.mean()),
                r.staleness.quantile(0.5).to_string(),
                r.staleness.quantile(0.95).to_string(),
                r.staleness.max().to_string(),
                if algo.is_leashed() {
                    format!("{:.2}", r.tau_s.mean())
                } else {
                    "-".into()
                },
                r.aborted.to_string(),
            ]);
            for (v, c) in r.staleness.nonzero_bins() {
                csv.push_str(&format!("{},{v},{c}\n", algo.label()));
            }
        }
        println!("{}", table.render());
        args.maybe_write_csv(&format!("fig6_m{m}.csv"), &csv);
    }
    print_expectation("Fig. 6");
}
