//! Table I — the experiment matrix — plus Tables II/III (architectures)
//! with their parameter-count fingerprints verified at runtime.

use lsgd_metrics::table::Table;

fn main() {
    println!("=== Table I — summary of experiments (harness binaries) ===\n");
    let mut t1 = Table::new(vec![
        "Step", "Architecture", "Description", "Threads m", "Precision eps", "Step size eta",
        "Harness target",
    ]);
    t1.row(vec![
        "S1", "MLP", "Hyper-parameter selection", "1-68", "50%", "0.01-0.09",
        "fig3_scalability + fig8_stepsize",
    ]);
    t1.row(vec![
        "S2", "MLP", "High-precision convergence", "16", "50,10,5,2.5%", "0.005",
        "fig4_precision (+fig5,fig6)",
    ]);
    t1.row(vec![
        "S3", "CNN", "Convergence rate", "16", "75,50,25,10%", "0.005", "fig7_cnn",
    ]);
    t1.row(vec![
        "S4", "MLP", "High parallelism", "24,34,68", "75,50,25,10%", "0.005",
        "fig4_precision --threads=24,34,68",
    ]);
    t1.row(vec![
        "S5", "MLP+CNN", "Memory consumption", "16,24,34", "any", "0.005", "fig10_memory",
    ]);
    println!("{}", t1.render());

    println!("\n=== Table II — MLP architecture ===\n");
    let mlp = lsgd_nn::mlp_mnist();
    print!("{}", mlp.describe());
    assert_eq!(mlp.param_len(), lsgd_nn::architectures::MLP_D);
    println!(
        "  ✓ parameter count matches the paper's d = {}\n",
        lsgd_nn::architectures::MLP_D
    );

    println!("=== Table III — CNN architecture ===\n");
    let cnn = lsgd_nn::cnn_mnist();
    print!("{}", cnn.describe());
    assert_eq!(cnn.param_len(), lsgd_nn::architectures::CNN_D);
    println!(
        "  ✓ parameter count matches the paper's d = {}",
        lsgd_nn::architectures::CNN_D
    );
}
