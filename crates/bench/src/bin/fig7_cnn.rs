//! Fig. 7 — CNN training: time-to-ε boxes, loss trajectories and
//! staleness distribution at the baselines' optimal thread count.
//!
//! The CNN regime is the paper's showcase for Leashed-SGD's largest wins
//! (up to 4× to ε=10%): its high `Tc/Tu` ratio keeps the LAU-SPC loop
//! uncontended, so consistency comes at almost no throughput cost while
//! the baselines still pay for locks / suffer inconsistency.

use lsgd_bench::expect::print_expectation;
use lsgd_bench::workloads::{banner, base_config, cnn_problem, lineup_for, run_reps};
use lsgd_bench::Args;
use lsgd_metrics::table::Table;

fn main() {
    let defaults = Args {
        wall: std::time::Duration::from_secs(30),
        ..Args::default()
    };
    let args = Args::parse(defaults);
    banner("Fig. 7", "CNN convergence, trajectories, staleness (m fixed)", &args);
    let problem = cnn_problem(&args);
    let m = if args.full {
        16
    } else {
        *args.threads.last().unwrap_or(&2)
    };
    let epsilons = [0.75, 0.5, 0.25, 0.1];

    println!("\n--- time to eps (m = {m}) ---");
    let mut table = Table::new(vec![
        "algo", "eps=75%", "eps=50%", "eps=25%", "eps=10%", "best 10% run", "stale mean",
    ]);
    let mut csv = String::from("algo,eps,median_s,diverged,crashed\n");
    for algo in lineup_for(m) {
        let mut cfg = base_config(&args, algo, m);
        cfg.epsilons = epsilons.to_vec();
        let rs = run_reps(&problem, &cfg, args.reps);
        let best10 = rs.times[3]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let stale: f64 = rs.runs.iter().map(|r| r.staleness.mean()).sum::<f64>()
            / rs.runs.len() as f64;
        table.row(vec![
            algo.label(),
            rs.cell(0),
            rs.cell(1),
            rs.cell(2),
            rs.cell(3),
            if best10.is_finite() {
                format!("{best10:.2}s")
            } else {
                "-".into()
            },
            format!("{stale:.2}"),
        ]);
        for (i, eps) in epsilons.iter().enumerate() {
            let med = rs
                .boxstats(i)
                .map(|b| format!("{:.3}", b.median))
                .unwrap_or_else(|| "-".into());
            csv.push_str(&format!(
                "{},{eps},{med},{},{}\n",
                algo.label(),
                rs.diverged[i],
                rs.crashed[i]
            ));
        }
    }
    println!("{}", table.render());
    args.maybe_write_csv("fig7.csv", &csv);
    print_expectation("Fig. 7");
}
