//! Fig. 5 — MLP training loss over wall-clock time per algorithm, at
//! several parallelism levels.
//!
//! Prints each algorithm's loss trace resampled onto a common time grid
//! (the paper plots the raw curves; the resampled table is the same data
//! in terminal-friendly form) and optionally writes full-resolution CSVs.

use lsgd_bench::expect::print_expectation;
use lsgd_bench::workloads::{banner, base_config, lineup_for, mlp_problem};
use lsgd_bench::Args;
use lsgd_core::prelude::*;
use lsgd_metrics::table::Table;

fn main() {
    let args = Args::parse(Args::default());
    banner("Fig. 5", "MLP training loss over time", &args);
    let problem = mlp_problem(&args);
    let grid_points = 9;

    for &m in &args.threads {
        println!("\n--- m = {m} threads ---");
        let mut series = Vec::new();
        for algo in lineup_for(m) {
            let mut cfg = base_config(&args, algo, m);
            // Run for the full wall budget: the figure shows trajectories,
            // not stopping times.
            cfg.epsilons = vec![0.02];
            let r = train(&problem, &cfg);
            series.push((algo.label(), r.loss_trace.clone(), r.crashed));
        }
        let t_max = args.wall.as_secs_f64();
        let mut header = vec!["algo".to_string()];
        for i in 0..grid_points {
            header.push(format!("{:.1}s", t_max * i as f64 / (grid_points - 1) as f64));
        }
        let mut table = Table::new(header);
        let mut csv = String::from("algo,t_secs,loss\n");
        for (label, trace, crashed) in &series {
            let grid = trace.resample_uniform(t_max, grid_points);
            let mut row = vec![if *crashed {
                format!("{label} (CRASH)")
            } else {
                label.clone()
            }];
            for &(_, v) in &grid {
                row.push(if v.is_finite() {
                    format!("{v:.3}")
                } else {
                    "nan".into()
                });
            }
            table.row(row);
            for &(t, v) in trace.points() {
                csv.push_str(&format!("{label},{t:.4},{v:.6}\n"));
            }
        }
        println!("{}", table.render());
        args.maybe_write_csv(&format!("fig5_m{m}.csv"), &csv);
    }
    print_expectation("Fig. 5");
}
