//! Section IV validation — the fluid model (Theorem 3, Corollaries
//! 3.1/3.2) against the discrete-event simulator, parameterised by the
//! Tc/Tu ratios measured in Fig. 9.
//!
//! Three checks:
//! 1. the closed form (5) equals the recurrence (4) and settles at the
//!    fixed point `n* = m/(Tc/Tu + 1)`;
//! 2. the DES in idealised mode reproduces `n*`, and in realistic CAS
//!    mode shows the extra occupancy that persistence then removes;
//! 3. `E[τs]` falls as the persistence bound tightens, reaching exactly 0
//!    at `Tp = 0` (the paper's §IV.2 claim).

use lsgd_bench::expect::print_expectation;
use lsgd_dynamics::des::{simulate, CasMode, DesConfig};
use lsgd_dynamics::staleness::{estimate, gamma_for_persistence};
use lsgd_dynamics::FluidModel;
use lsgd_metrics::table::Table;

fn main() {
    // (label, Tc, Tu) — the MLP and CNN regimes of Fig. 9 (ms).
    let regimes = [("MLP-like", 40.0, 0.8), ("CNN-like", 100.0, 0.25)];
    let ms = [16usize, 34, 68];

    println!("=== fixed points and closed form (Theorem 3 / Cor. 3.1) ===\n");
    println!(
        "  note: recurrence (4) advances one unit per step and requires\n\
         \x20 1/Tc + 1/Tu < 2 for stability; times are rescaled to a stable\n\
         \x20 unit (fixed points are invariant under rescaling).\n"
    );
    let mut t = Table::new(vec![
        "regime", "m", "n* (fluid)", "n*/m = Tu/(Tu+Tc)", "closed form (settled)",
        "recurrence (settled)",
    ]);
    for (name, tc, tu) in regimes {
        for &m in &ms {
            let f = FluidModel::new(m as f64, tc, tu).rescaled_stable();
            let steps = 40_000;
            let traj = f.trajectory(0.0, steps);
            t.row(vec![
                name.to_string(),
                m.to_string(),
                format!("{:.4}", f.fixed_point()),
                format!("{:.5}", f.balance()),
                format!("{:.4}", f.closed_form(0.0, steps as u32)),
                format!("{:.4}", traj[steps]),
            ]);
        }
    }
    println!("{}", t.render());

    println!("\n=== DES vs fluid occupancy ===\n");
    let mut t = Table::new(vec![
        "regime", "m", "fluid n*", "DES idealized", "DES realistic CAS",
    ]);
    for (name, tc, tu) in regimes {
        for &m in &ms {
            let f = FluidModel::new(m as f64, tc, tu);
            let mk = |mode| {
                simulate(&DesConfig {
                    m,
                    tc,
                    tu,
                    jitter: 0.2,
                    persistence: None,
                    mode,
                    horizon: 60_000.0,
                    seed: 42,
                })
            };
            let ideal = mk(CasMode::Idealized);
            let real = mk(CasMode::Realistic);
            t.row(vec![
                name.to_string(),
                m.to_string(),
                format!("{:.3}", f.fixed_point()),
                format!("{:.3}", ideal.mean_occupancy),
                format!("{:.3}", real.mean_occupancy),
            ]);
        }
    }
    println!("{}", t.render());

    println!("\n=== persistence regulation of tau_s (Cor. 3.2 / §IV.2) ===\n");
    let mut t = Table::new(vec![
        "regime", "Tp", "gamma", "E[tau_s] model (= n*_gamma)", "E[tau_s] DES", "aborted frac",
    ]);
    for (name, tc, tu) in [("contended", 4.0, 2.0), ("MLP-like", 40.0, 0.8)] {
        for tp in [None, Some(4), Some(1), Some(0)] {
            let gamma = gamma_for_persistence(tp);
            let est = estimate(16.0, tc, tu, gamma);
            let des = simulate(&DesConfig {
                m: 16,
                tc,
                tu,
                jitter: 0.2,
                persistence: tp,
                mode: CasMode::Realistic,
                horizon: 60_000.0,
                seed: 7,
            });
            let abort_frac =
                des.aborted as f64 / (des.publishes + des.aborted).max(1) as f64;
            t.row(vec![
                name.to_string(),
                tp.map(|v| v.to_string()).unwrap_or_else(|| "inf".into()),
                format!("{gamma:.2}"),
                format!("{:.3}", est.tau_s),
                format!("{:.3}", des.tau_s.mean()),
                format!("{abort_frac:.3}"),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "  notes: tau_s falls monotonically as Tp tightens and is exactly 0 at\n\
         \x20 Tp=0 (paper §IV.2). In the heavily contended regime the fluid\n\
         \x20 model (which assumes every attempt departs) underestimates the\n\
         \x20 realistic-CAS tau_s for Tp=inf — the gap the persistence bound\n\
         \x20 exists to close."
    );
    print_expectation("Sec. IV");
}
