//! Fig. 4 — MLP convergence rate to increasing precision, per thread
//! count: ε ∈ {50%, 10%, 5%, 2.5%} at the baselines' optimum `m`, and
//! ε ∈ {75%, 50%, 25%, 10%} under higher parallelism.
//!
//! Box statistics over `reps` executions; runs that never reach an ε are
//! tallied as Diverge, numerically unstable ones as Crash — the paper
//! highlights these because wasted training time is the practical cost.

use lsgd_bench::expect::print_expectation;
use lsgd_bench::workloads::{banner, base_config, lineup_for, mlp_problem, run_reps};
use lsgd_bench::Args;
use lsgd_metrics::table::Table;

fn main() {
    let defaults = Args {
        wall: std::time::Duration::from_secs(30),
        ..Args::default()
    };
    let args = Args::parse(defaults);
    banner("Fig. 4", "MLP time-to-eps at increasing precision", &args);
    let problem = mlp_problem(&args);

    // Quick scale uses the small thread set; --full uses the paper's trio.
    let thread_sets: Vec<(usize, Vec<f64>)> = if args.full {
        vec![
            (16, vec![0.5, 0.1, 0.05, 0.025]),
            (34, vec![0.75, 0.5, 0.25, 0.1]),
            (68, vec![0.75, 0.5, 0.25, 0.1]),
        ]
    } else {
        args.threads
            .iter()
            .map(|&m| (m, vec![0.75, 0.5, 0.25, 0.1]))
            .collect()
    };

    let mut csv = String::from("m,algo,eps,median_s,diverged,crashed\n");
    for (m, epsilons) in thread_sets {
        println!("\n--- m = {m} threads ---");
        let mut table = Table::new(vec![
            "algo",
            &format!("eps={}%", epsilons[0] * 100.0),
            &format!("eps={}%", epsilons[1] * 100.0),
            &format!("eps={}%", epsilons[2] * 100.0),
            &format!("eps={}%", epsilons[3] * 100.0),
        ]);
        for algo in lineup_for(m) {
            let mut cfg = base_config(&args, algo, m);
            cfg.epsilons = epsilons.clone();
            let rs = run_reps(&problem, &cfg, args.reps);
            let mut row = vec![algo.label()];
            for (i, eps) in epsilons.iter().enumerate() {
                row.push(rs.cell(i));
                let med = rs
                    .boxstats(i)
                    .map(|b| format!("{:.3}", b.median))
                    .unwrap_or_else(|| "-".into());
                csv.push_str(&format!(
                    "{m},{},{eps},{med},{},{}\n",
                    algo.label(),
                    rs.diverged[i],
                    rs.crashed[i]
                ));
            }
            table.row(row);
        }
        println!("{}", table.render());
    }
    args.maybe_write_csv("fig4.csv", &csv);
    print_expectation("Fig. 4");
}
