//! Fig. 10 — memory consumption of each algorithm for MLP and CNN
//! training at several thread counts.
//!
//! The paper samples RSS with `ps`; we report the exact live
//! parameter-buffer bytes from the run's memory gauge (mean and peak of
//! the continuously sampled trace), plus the Leashed pool's peak
//! outstanding ParameterVector count against the Lemma-2 bound `3m`.

use lsgd_bench::expect::print_expectation;
use lsgd_bench::workloads::{banner, base_config, cnn_problem, lineup_for, mlp_problem};
use lsgd_bench::Args;
use lsgd_core::prelude::*;
use lsgd_metrics::table::Table;

fn main() {
    let args = Args::parse(Args::default());
    banner("Fig. 10", "memory consumption (MLP and CNN)", &args);

    for (name, problem) in [
        ("MLP", mlp_problem(&args)),
        ("CNN", cnn_problem(&args)),
    ] {
        println!("\n--- {name} (d = {}) ---", problem.dim());
        let mut table = Table::new(vec![
            "m", "algo", "mean live", "peak live", "pool peak (<=2m+1)", "reuse/alloc",
        ]);
        let mut csv = String::from("m,algo,mean_bytes,peak_bytes\n");
        for &m in &args.threads {
            for algo in lineup_for(m) {
                let mut cfg = base_config(&args, algo, m);
                cfg.epsilons = vec![0.02];
                let r = train(&problem, &cfg);
                let pts = r.mem_trace.points();
                let mean =
                    pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len().max(1) as f64;
                table.row(vec![
                    m.to_string(),
                    algo.label(),
                    format!("{:.0}KB", mean / 1024.0),
                    format!("{}KB", r.mem_peak_bytes / 1024),
                    if algo.is_leashed() {
                        format!("{}", r.pool_outstanding_peak)
                    } else {
                        "-".into()
                    },
                    format!("{}/{}", r.mem_reuses, r.mem_allocs),
                ]);
                csv.push_str(&format!(
                    "{m},{},{mean:.0},{}\n",
                    algo.label(),
                    r.mem_peak_bytes
                ));
            }
        }
        println!("{}", table.render());
        args.maybe_write_csv(&format!("fig10_{}.csv", name.to_lowercase()), &csv);
    }
    print_expectation("Fig. 10");
}
