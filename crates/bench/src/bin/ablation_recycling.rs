//! Ablation — ParameterVector memory recycling (paper §III P2).
//!
//! Leashed-SGD allocates a fresh ParameterVector per update; the paper's
//! design recycles replaced vectors through `safe_delete` so steady-state
//! execution stops allocating. This ablation runs the same training with
//! recycling disabled (every release frees, every acquire mallocs + zeroes
//! `d` floats) and quantifies what the recycling mechanism buys in
//! allocation traffic and throughput.

use lsgd_bench::workloads::{banner, base_config, mlp_problem, run_reps};
use lsgd_bench::Args;
use lsgd_core::prelude::*;
use lsgd_metrics::table::Table;

fn main() {
    let args = Args::parse(Args::default());
    banner("Ablation", "ParameterVector recycling on/off (MLP)", &args);
    let problem = mlp_problem(&args);
    let m = *args.threads.last().unwrap_or(&2);

    let mut table = Table::new(vec![
        "recycling", "algo", "updates/s", "time to 50%", "peak live KB", "mean Tu",
        "reuse/alloc",
    ]);
    for recycling in [true, false] {
        for tp in [None, Some(0)] {
            let algo = Algorithm::Leashed { persistence: tp };
            let mut cfg = base_config(&args, algo, m);
            cfg.pool_recycling = recycling;
            let rs = run_reps(&problem, &cfg, args.reps);
            let n = rs.runs.len() as f64;
            let ups: f64 = rs.runs.iter().map(|r| r.updates_per_sec()).sum::<f64>() / n;
            let peak = rs.runs.iter().map(|r| r.mem_peak_bytes).max().unwrap_or(0);
            let tu: f64 = rs.runs.iter().map(|r| r.tu.mean()).sum::<f64>() / n * 1e3;
            table.row(vec![
                recycling.to_string(),
                algo.label(),
                format!("{ups:.0}"),
                rs.cell(0),
                format!("{}", peak / 1024),
                format!("{tu:.3}ms"),
                {
                    let reuses: u64 = rs.runs.iter().map(|r| r.mem_reuses).sum();
                    let allocs: u64 = rs.runs.iter().map(|r| r.mem_allocs).sum();
                    format!("{reuses}/{allocs}")
                },
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "  expectation: recycling removes steady-state allocation (reuse >>\n\
         \x20 allocs) at equal or better update throughput; without it every\n\
         \x20 LAU-SPC attempt pays an allocation + page-zeroing of d floats."
    );
}
