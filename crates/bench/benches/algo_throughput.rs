//! Criterion bench: aggregate update throughput of each algorithm with
//! two concurrent workers (iter_custom over a fixed update quota).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsgd_core::prelude::*;
use lsgd_data::blobs::gaussian_blobs;
use std::time::Duration;

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("algo_throughput_m2");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);

    let data = gaussian_blobs(400, 6, 3, 0.3, 1);
    let problem = NnProblem::new(lsgd_nn::tiny_mlp(6, 16, 3), data, 32, 128);

    for algo in Algorithm::parallel_lineup() {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.label()),
            &(),
            |b, _| {
                b.iter_custom(|iters| {
                    // One "iteration" = a budget of `iters` published
                    // updates across 2 workers; measure the wall time the
                    // trainer needs to produce them.
                    let cfg = TrainConfig {
                        algorithm: algo,
                        threads: 2,
                        eta: 0.01,
                        epsilons: vec![1e-12], // never converges; budget rules
                        max_updates: iters.max(10),
                        max_wall: Duration::from_secs(30),
                        eval_every: Duration::from_millis(5),
                        seed: 9,
                        staleness_cap: 64,
                        ..TrainConfig::default()
                    };
                    let r = train(&problem, &cfg);
                    // Scale measured wall to the requested iteration count
                    // (train may slightly overshoot the budget).
                    let per_update = r.wall.as_secs_f64() / r.published.max(1) as f64;
                    Duration::from_secs_f64(per_update * iters as f64)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
