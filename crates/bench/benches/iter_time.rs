//! Criterion bench: full SGD iteration latency (Fig. 3 right, micro
//! version) — read + gradient + update for each algorithm, one worker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsgd_core::baseline::{HogwildParams, LockedParams};
use lsgd_core::mem::MemoryGauge;
use lsgd_core::paramvec::LeashedShared;
use lsgd_core::pool::BufferPool;
use lsgd_core::problem::{NnProblem, Problem};
use lsgd_data::SynthDigits;
use lsgd_tensor::SmallRng64;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_iter(c: &mut Criterion) {
    let mut group = c.benchmark_group("iter_time");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);

    let data = SynthDigits::default().generate(512, 3);
    let problem = NnProblem::new(lsgd_nn::mlp_mnist(), data, 64, 256);
    let d = problem.dim();
    let theta0 = problem.init_theta(0);
    let mut grad = vec![0.0f32; d];
    let mut scratch = problem.scratch();
    let mut rng = SmallRng64::new(11);
    let eta = 0.005f32;

    // SEQ/ASYNC iteration: lock-copy, grad, lock-update.
    let locked = LockedParams::new(theta0.clone(), Arc::new(MemoryGauge::new()));
    let mut local = vec![0.0f32; d];
    group.bench_with_input(BenchmarkId::new("iteration", "locked"), &(), |b, _| {
        b.iter(|| {
            locked.read_into(&mut local);
            let loss = problem.grad(&local, &mut grad, &mut scratch, &mut rng);
            black_box(locked.update(&grad, eta));
            black_box(loss)
        });
    });

    // HOGWILD! iteration: racy copy, grad, racy update.
    let hog = HogwildParams::new(&theta0, Arc::new(MemoryGauge::new()));
    group.bench_with_input(BenchmarkId::new("iteration", "hogwild"), &(), |b, _| {
        b.iter(|| {
            hog.read_into(&mut local);
            let loss = problem.grad(&local, &mut grad, &mut scratch, &mut rng);
            black_box(hog.update(&grad, eta));
            black_box(loss)
        });
    });

    // Leashed iteration: guarded zero-copy read, grad, LAU-SPC publish.
    let pool = BufferPool::new(d, Arc::new(MemoryGauge::new()));
    let leashed = LeashedShared::new(&theta0, pool);
    group.bench_with_input(BenchmarkId::new("iteration", "leashed"), &(), |b, _| {
        b.iter(|| {
            let loss = {
                let guard = leashed.latest();
                problem.grad(guard.theta(), &mut grad, &mut scratch, &mut rng)
            };
            black_box(leashed.publish_update(&grad, eta, None, |_| {}));
            black_box(loss)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_iter);
criterion_main!(benches);
