//! Criterion bench: ParameterVector protocol operation latencies —
//! counted reads (`latest_pointer`), monitor snapshots, and publishes
//! with a concurrent contender.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsgd_core::mem::MemoryGauge;
use lsgd_core::paramvec::LeashedShared;
use lsgd_core::pool::BufferPool;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn shared(d: usize) -> LeashedShared {
    let pool = BufferPool::new(d, Arc::new(MemoryGauge::new()));
    LeashedShared::new(&vec![0.0f32; d], pool)
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("paramvec_ops");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    for d in [27_354usize, 134_794] {
        let s = shared(d);
        group.bench_with_input(BenchmarkId::new("latest_read", d), &(), |b, _| {
            b.iter(|| {
                let g = s.latest();
                black_box(g.seq());
            });
        });

        group.bench_with_input(BenchmarkId::new("snapshot_copy", d), &(), |b, _| {
            let mut buf = vec![0.0f32; d];
            b.iter(|| {
                black_box(s.snapshot_into(&mut buf));
            });
        });
    }

    // Publish latency with a background contender hammering publishes.
    let d = 27_354usize;
    let s = Arc::new(shared(d));
    let stop = Arc::new(AtomicBool::new(false));
    let contender = {
        let s = Arc::clone(&s);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let grad = vec![0.001f32; d];
            while !stop.load(Ordering::Relaxed) {
                s.publish_update(&grad, 0.005, None, |_| {});
            }
        })
    };
    let grad = vec![0.001f32; d];
    group.bench_function("publish_contended_cnn_d", |b| {
        b.iter(|| black_box(s.publish_update(black_box(&grad), 0.005, None, |_| {})));
    });
    stop.store(true, Ordering::Relaxed);
    contender.join().unwrap();
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
