//! Criterion bench: ParameterVector protocol operation latencies —
//! counted reads (`latest_pointer`), monitor snapshots, publishes with a
//! concurrent contender, and the sharded publication path (dense full
//! vector vs. k-sparse pairs at S ∈ {1, 8, 64}).
//!
//! The sharded rows quantify the tentpole claim: at the CNN dimension a
//! k-sparse publication through S = 64 shards copies + CASes only the
//! dirty shards (≈ k/width of them), while the unsharded/dense row pays
//! the full O(d) copy per update.
//!
//! Set `LSGD_BENCH_SMOKE=1` to shrink warm-up/measurement windows — used
//! by the CI smoke step so publication-cost regressions show up in logs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lsgd_core::mem::MemoryGauge;
use lsgd_core::paramvec::LeashedShared;
use lsgd_core::pool::BufferPool;
use lsgd_core::shard::ShardedShared;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn shared(d: usize) -> LeashedShared {
    let pool = BufferPool::new(d, Arc::new(MemoryGauge::new()));
    LeashedShared::new(&vec![0.0f32; d], pool)
}

fn bench_ops(c: &mut Criterion) {
    let smoke = lsgd_core::env::flag("LSGD_BENCH_SMOKE");
    let mut group = c.benchmark_group("paramvec_ops");
    if smoke {
        group
            .warm_up_time(Duration::from_millis(100))
            .measurement_time(Duration::from_millis(400))
            .sample_size(10);
    } else {
        group
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2))
            .sample_size(10);
    }

    for d in [27_354usize, 134_794] {
        let s = shared(d);
        group.bench_with_input(BenchmarkId::new("latest_read", d), &(), |b, _| {
            b.iter(|| {
                let g = s.latest();
                black_box(g.seq());
            });
        });

        group.bench_with_input(BenchmarkId::new("snapshot_copy", d), &(), |b, _| {
            let mut buf = vec![0.0f32; d];
            b.iter(|| {
                black_box(s.snapshot_into(&mut buf));
            });
        });
    }

    // Publish latency with a background contender hammering publishes.
    let d = 27_354usize;
    let s = Arc::new(shared(d));
    let stop = Arc::new(AtomicBool::new(false));
    let contender = {
        let s = Arc::clone(&s);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let grad = vec![0.001f32; d];
            // ORDERING: Relaxed — bench stop flag; carries no data.
            while !stop.load(Ordering::Relaxed) {
                s.publish_update(&grad, 0.005, None, |_| {});
            }
        })
    };
    let grad = vec![0.001f32; d];
    group.bench_function("publish_contended_cnn_d", |b| {
        b.iter(|| black_box(s.publish_update(black_box(&grad), 0.005, None, |_| {})));
    });
    // ORDERING: Relaxed — see the paired load in the contender.
    stop.store(true, Ordering::Relaxed);
    contender.join().unwrap();

    // ---- Sharded publication: dense full-vector vs k-sparse pairs at
    // S ∈ {1, 8, 64} (uncontended, so the numbers isolate per-update
    // copy + CAS cost rather than retry behaviour). S = 1 dense is the
    // full-vector-copy baseline the k-sparse rows are judged against. ----
    let d = 134_794usize; // the CNN parameter dimension used above
    let dense_grad = vec![0.001f32; d];
    // Three k-sparse index shapes spanning the locality spectrum:
    //
    // * `powerlaw` — 64 distinct draws from a Zipf(1.1) over d, the
    //   footprint of a small sparse-logreg minibatch (head tokens
    //   dominate; a modest tail sprinkle dirties a few extra shards);
    // * `block` — 1024 contiguous coordinates, the embedding-row /
    //   feature-group update pattern (dirty shards ≈ k / width);
    // * `spread` — 1024 evenly spaced coordinates, the adversarial case
    //   (every shard dirty, no locality to exploit).
    let powerlaw_pairs: Vec<(u32, f32)> = {
        // Same Zipf distribution the sparse-logreg generator draws from.
        let cdf = lsgd_data::sparse_logreg::zipf_cdf(d, lsgd_data::sparse_logreg::ZIPF_EXPONENT);
        let mut rng = lsgd_tensor::SmallRng64::new(42);
        let mut picked = std::collections::BTreeSet::new();
        while picked.len() < 64 {
            picked.insert(lsgd_data::sparse_logreg::zipf_draw(&cdf, &mut rng) as u32);
        }
        picked.into_iter().map(|i| (i, 0.001f32)).collect()
    };
    let block_pairs: Vec<(u32, f32)> = (0..1024).map(|i| (i as u32, 0.001f32)).collect();
    let spread_pairs: Vec<(u32, f32)> = (0..1024)
        .map(|i| ((i * d / 1024) as u32, 0.001f32))
        .collect();
    let sparse_rows = [
        ("sharded_publish_sparse_powerlaw", &powerlaw_pairs),
        ("sharded_publish_sparse_block", &block_pairs),
        ("sharded_publish_sparse_spread", &spread_pairs),
    ];
    for s_count in [1usize, 8, 64] {
        let sh = ShardedShared::new(
            &vec![0.0f32; d],
            s_count,
            Arc::new(MemoryGauge::new()),
            true,
        );
        group.throughput(Throughput::Elements(d as u64));
        group.bench_with_input(
            BenchmarkId::new("sharded_publish_dense", format!("S{s_count}_d{d}")),
            &(),
            |b, _| {
                b.iter(|| {
                    black_box(sh.publish_dense(black_box(&dense_grad), 0.005, None, None, |_| {}))
                });
            },
        );
        for (label, pairs) in sparse_rows {
            group.throughput(Throughput::Elements(pairs.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(label, format!("S{s_count}_k{}_d{d}", pairs.len())),
                &(),
                |b, _| {
                    b.iter(|| {
                        black_box(sh.publish_sparse(black_box(pairs), 0.005, None, None, |_| {}))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
