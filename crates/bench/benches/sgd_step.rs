//! End-to-end SGD **step latency**: parameter read + minibatch gradient +
//! publication, per workload × algorithm — the quantity the paper's
//! convergence-per-second results are made of (`T_it ≈ Tc + Tu`).
//!
//! Workloads: the Table II MLP (`d = 134,794`), the Table III CNN
//! (`d = 27,354`, im2col-dominated `Tc`), and the PR 4 sparse
//! logistic-regression instance (native sparse gradients). Algorithms:
//! SEQ-style locked, HOGWILD!, Leashed-SGD, and sharded Leashed-SGD at
//! the heuristic shard count.
//!
//! The `*_prepr/` rows re-run the NN workloads on the **ablation
//! baseline** ([`ComputeOpts::baseline`]: fresh packing per GEMM, serial
//! materialised im2col) — isolating the cost of the panel cache, fused
//! lowering, and intra-step threading. Gradients on the two paths are
//! bitwise identical (see `crates/nn/tests/fastpath_differential.rs`),
//! so the rows differ in time only. On a single core the two sit near
//! parity (the shared-kernel optimisations lift both); the gap opens
//! with pool threads. The PR's ≥ 1.5× CNN step claim is measured against
//! the *actual pre-PR tree* from a clean `git worktree` (see the README
//! performance section), which this in-tree ablation cannot reproduce.
//!
//! Set `LSGD_BENCH_SMOKE=1` for short windows (CI) and
//! `LSGD_BENCH_JSON=BENCH_sgd_step.json` to emit the machine-readable
//! trajectory file. Throughput is reported as parameters/s
//! (`d / step-latency`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lsgd_core::baseline::{HogwildParams, LockedParams};
use lsgd_core::mem::MemoryGauge;
use lsgd_core::pool::BufferPool;
use lsgd_core::prelude::*;
use lsgd_core::shard::default_shards;
use lsgd_core::{LeashedShared, ShardedShared};
use lsgd_data::sparse_logreg::sparse_logreg;
use lsgd_data::SynthDigits;
use lsgd_nn::ComputeOpts;
use lsgd_tensor::SmallRng64;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Step size: small enough that thousands of benchmark steps cannot
/// destabilise the iterates (a diverged `theta` would change gradient
/// timing mid-measurement).
const ETA: f32 = 1e-4;

/// One shared-parameter backend per benchmarked algorithm.
#[allow(clippy::large_enum_variant)] // one long-lived instance per bench run; size is irrelevant
enum Shared {
    Locked(LockedParams),
    Hog(HogwildParams),
    Leashed(LeashedShared),
    Sharded(ShardedShared),
}

impl Shared {
    fn build(kind: &str, theta0: &[f32], workers_hint: usize) -> Shared {
        let gauge = Arc::new(MemoryGauge::new());
        match kind {
            "SEQ" => Shared::Locked(LockedParams::new(theta0.to_vec(), gauge)),
            "HOG" => Shared::Hog(HogwildParams::new(theta0, gauge)),
            "LSH" => {
                let pool = BufferPool::new_with_recycling(theta0.len(), gauge, true);
                Shared::Leashed(LeashedShared::new(theta0, pool))
            }
            "LSH_sharded" => Shared::Sharded(ShardedShared::new(
                theta0,
                default_shards(theta0.len(), workers_hint),
                gauge,
                true,
            )),
            other => unreachable!("unknown algorithm {other}"),
        }
    }

    /// One full SGD step: read the shared parameters, compute a minibatch
    /// gradient, publish the scaled update.
    fn step<P: Problem>(
        &self,
        problem: &P,
        local: &mut [f32],
        grad: &mut [f32],
        pairs: &mut Vec<(u32, f32)>,
        scratch: &mut P::Scratch,
        rng: &mut SmallRng64,
    ) {
        match self {
            Shared::Locked(p) => {
                p.read_into(local);
                problem.grad(local, grad, scratch, rng);
                p.update(grad, ETA);
            }
            Shared::Hog(p) => {
                p.read_into(local);
                problem.grad(local, grad, scratch, rng);
                p.update(grad, ETA);
            }
            Shared::Leashed(s) => {
                let loss;
                {
                    let guard = s.latest();
                    // Zero-copy read (paper P3): gradient straight from
                    // the published buffer.
                    loss = problem.grad(guard.theta(), grad, scratch, rng);
                }
                let _ = loss;
                s.publish_update(grad, ETA, None, |_| {});
            }
            Shared::Sharded(s) => {
                {
                    let snap = s.snapshot(SnapshotMode::Fast, 8);
                    snap.gather_into(local);
                }
                if let Some(_loss) = problem.grad_sparse(local, pairs, scratch, rng) {
                    s.publish_sparse(pairs, ETA, None, None, |_| {});
                } else {
                    problem.grad(local, grad, scratch, rng);
                    s.publish_dense(grad, ETA, None, None, |_| {});
                }
            }
        }
    }
}

/// Benchmarks `algos` step latency on one workload under `name`.
fn bench_workload<P: Problem>(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    problem: &P,
    algos: &[&str],
) {
    let theta0 = problem.init_theta(1);
    let dim = problem.dim();
    group.throughput(Throughput::Elements(dim as u64));
    for &kind in algos {
        let shared = Shared::build(kind, &theta0, 4);
        let mut local = vec![0.0f32; dim];
        let mut grad = vec![0.0f32; dim];
        let mut pairs: Vec<(u32, f32)> = Vec::new();
        let mut scratch = problem.scratch();
        let mut rng = SmallRng64::new(99);
        group.bench_with_input(BenchmarkId::new(name, kind), &(), |bench, _| {
            bench.iter(|| {
                shared.step(
                    problem,
                    &mut local,
                    &mut grad,
                    &mut pairs,
                    &mut scratch,
                    &mut rng,
                );
            });
        });
    }
}

/// Fig. 3-style worker-scaling rows: `workers` concurrent trainer-style
/// tasks step against one shared backend, scheduled as scoped tasks on
/// the unified work-stealing runtime (exactly how [`lsgd_core::train`]
/// runs its workers, including any intra-step GEMM splits sharing the
/// same worker threads). One timed iteration = every worker completes
/// one step, so the `elements` throughput is `d × workers`: under
/// perfect scaling the per-iteration latency stays flat as `workers`
/// grows and `Melem/s` grows linearly; lock contention (SEQ) shows up
/// as latency growth instead.
fn bench_scaling<P: Problem>(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    problem: &P,
    workers: usize,
    algos: &[&str],
) {
    let theta0 = problem.init_theta(1);
    let dim = problem.dim();
    group.throughput(Throughput::Elements((dim * workers) as u64));
    let rt = lsgd_runtime::global();
    for &kind in algos {
        let shared = Shared::build(kind, &theta0, workers);
        // Per-worker step state, handed to the scoped tasks through
        // `iter_mut` the same way the trainer distributes stats slots.
        let mut states: Vec<_> = (0..workers)
            .map(|w| {
                (
                    vec![0.0f32; dim],
                    vec![0.0f32; dim],
                    Vec::<(u32, f32)>::new(),
                    problem.scratch(),
                    SmallRng64::new(99 ^ (w as u64).wrapping_mul(0x9e3779b97f4a7c15)),
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new(format!("scaling_{name}_w{workers}"), kind),
            &(),
            |bench, _| {
                bench.iter_custom(|iters| {
                    let shared = &shared;
                    let start = Instant::now();
                    rt.scope(|scope| {
                        for st in states.iter_mut() {
                            scope.spawn(move || {
                                let (local, grad, pairs, scratch, rng) = st;
                                for _ in 0..iters {
                                    shared.step(problem, local, grad, pairs, scratch, rng);
                                }
                            });
                        }
                    });
                    start.elapsed()
                });
            },
        );
    }
}

fn bench_sgd_step(c: &mut Criterion) {
    let smoke = lsgd_core::env::flag("LSGD_BENCH_SMOKE");
    // Optional trace window over the whole suite: needs both the probes
    // compiled in (`--features trace` — NOT the default, so the reference
    // bench stays untraced) and the runtime gate (`LSGD_TRACE=1`). The
    // dump then explains bench medians with protocol counters (publish
    // retries, snapshot retries, queue contention).
    let collector = lsgd_trace::enabled().then(lsgd_trace::Collector::new);
    let mut group = c.benchmark_group("sgd_step");
    if smoke {
        group
            .warm_up_time(Duration::from_millis(150))
            .measurement_time(Duration::from_millis(500))
            .sample_size(10);
    } else {
        group
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(2))
            .sample_size(10);
    }
    let all: [&str; 4] = ["SEQ", "HOG", "LSH", "LSH_sharded"];
    let samples = if smoke { 512 } else { 2048 };

    // Table II MLP, minibatch 128.
    let mlp_data = SynthDigits::default().generate(samples, 1);
    let mlp = NnProblem::new(lsgd_nn::mlp_mnist(), mlp_data.clone(), 128, 1);
    bench_workload(&mut group, "mlp", &mlp, &all);
    let mlp_pre =
        NnProblem::new(lsgd_nn::mlp_mnist(), mlp_data, 128, 1).with_compute_opts(ComputeOpts::baseline());
    bench_workload(&mut group, "mlp_prepr", &mlp_pre, &["LSH"]);

    // Table III CNN, minibatch 64 — the im2col-dominated workload this
    // PR's >= 1.5x step-latency target is measured on (fast vs _prepr).
    let cnn_data = SynthDigits::default().generate(samples, 8);
    let cnn = NnProblem::new(lsgd_nn::cnn_mnist(), cnn_data.clone(), 64, 1);
    bench_workload(&mut group, "cnn", &cnn, &all);
    let cnn_pre =
        NnProblem::new(lsgd_nn::cnn_mnist(), cnn_data, 64, 1).with_compute_opts(ComputeOpts::baseline());
    bench_workload(&mut group, "cnn_prepr", &cnn_pre, &["LSH"]);

    // Sparse logistic regression (PR 4 workload), minibatch 16: the
    // sharded row exercises the native sparse dirty-shard publication.
    let logreg = SparseLogRegProblem::new(sparse_logreg(2 * samples, 16_384, 12, 9), 16);
    bench_workload(&mut group, "sparse_logreg", &logreg, &all);

    // Fig. 3-style scaling: m ∈ {1, 2, 4} concurrent workers on the
    // unified runtime, NN workloads × {SEQ, HOG, LSH}. The w1 medians
    // double as a regression check against the single-worker rows above.
    let scaling: [&str; 3] = ["SEQ", "HOG", "LSH"];
    for &workers in &[1usize, 2, 4] {
        bench_scaling(&mut group, "mlp", &mlp, workers, &scaling);
        bench_scaling(&mut group, "cnn", &cnn, workers, &scaling);
    }

    group.finish();

    if let Some(collector) = collector {
        let dump = collector.finish();
        print!("{}", dump.report());
        if let Some(path) = lsgd_trace::chrome_path() {
            match lsgd_trace::chrome::append_run(&path, "sgd_step bench", &dump) {
                Ok(_) => println!("chrome trace appended to {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }
}

criterion_group!(benches, bench_sgd_step);
criterion_main!(benches);
