//! Criterion bench: parameter update time `Tu` (Fig. 9 right) for each
//! synchronisation mechanism at the paper's two dimensions
//! (MLP d = 134,794; CNN d = 27,354).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsgd_core::baseline::{HogwildParams, LockedParams};
use lsgd_core::mem::MemoryGauge;
use lsgd_core::paramvec::LeashedShared;
use lsgd_core::pool::BufferPool;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("param_update_Tu");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    for (arch, d) in [("mlp", 134_794usize), ("cnn", 27_354usize)] {
        let grad = vec![0.001f32; d];
        let init = vec![0.0f32; d];

        let locked = LockedParams::new(init.clone(), Arc::new(MemoryGauge::new()));
        group.bench_with_input(BenchmarkId::new("locked", arch), &(), |b, _| {
            b.iter(|| black_box(locked.update(black_box(&grad), 0.005)));
        });

        let hog = HogwildParams::new(&init, Arc::new(MemoryGauge::new()));
        group.bench_with_input(BenchmarkId::new("hogwild", arch), &(), |b, _| {
            b.iter(|| black_box(hog.update(black_box(&grad), 0.005)));
        });

        let pool = BufferPool::new(d, Arc::new(MemoryGauge::new()));
        let leashed = LeashedShared::new(&init, pool);
        group.bench_with_input(BenchmarkId::new("leashed_publish", arch), &(), |b, _| {
            // Copy + update + CAS; uncontended, so one attempt each.
            b.iter(|| {
                black_box(leashed.publish_update(black_box(&grad), 0.005, None, |_| {}))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
