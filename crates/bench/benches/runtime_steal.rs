//! Scheduling-overhead microbench: the work-stealing runtime's
//! `parallel_for` vs the retired condvar work-sharing pool it replaced.
//!
//! The baseline is an in-bench copy of the old `lsgd_tensor` pool (one
//! shared atomic ticket counter, workers woken through a mutex +
//! condvar per call) — kept here because the real one was deleted when
//! the tensor crate moved onto `lsgd_runtime`. Both schedulers run the
//! same synthetic panel kernel at the same total parallelism, so the
//! rows isolate pure dispatch + join cost:
//!
//! * `fanout_<n>x<w>` — `n` tasks of `w` inner saxpy passes each. The
//!   small-`w` rows are dominated by scheduling (the regime where the
//!   deque's lock-free claim path matters); the large-`w` rows confirm
//!   both schedulers converge once tasks carry real GEMM-panel-sized
//!   work.
//!
//! `LSGD_BENCH_SMOKE=1` shortens the windows for CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lsgd_runtime::Runtime;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

// ---------------------------------------------------------------------
// Baseline: the old condvar work-sharing pool, verbatim in structure
// (ticket counter + per-call condvar wake), trimmed of panic plumbing
// docs. See git history of crates/tensor/src/threadpool.rs.
// ---------------------------------------------------------------------

struct ForJob {
    f: &'static (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    total: usize,
    pending: AtomicUsize,
    poisoned: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl ForJob {
    fn run(&self) {
        loop {
            // ORDERING: Relaxed — a pure work-claim ticket counter; task
            // data is published by the job installation, not here.
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (self.f)(i))).is_err() {
                // ORDERING: Release — pairs with the caller's Acquire load
                // after the join.
                self.poisoned.store(true, Ordering::Release);
            }
            // ORDERING: AcqRel — completion latch; the last decrement
            // synchronizes every task's writes with the caller's wake-up.
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                *self.done.lock().unwrap() = true;
                self.done_cv.notify_all();
            }
        }
    }
}

struct PoolShared {
    jobs: Mutex<Vec<Arc<ForJob>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

struct CondvarPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl CondvarPool {
    fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            jobs: Mutex::new(Vec::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads.saturating_sub(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bench-condvar-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn baseline worker")
            })
            .collect();
        CondvarPool { shared, handles }
    }

    fn parallel_for(&self, ntasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if ntasks == 0 {
            return;
        }
        if self.handles.is_empty() || ntasks == 1 {
            for i in 0..ntasks {
                f(i);
            }
            return;
        }
        // SAFETY: lifetime erasure only; we block until `pending == 0`
        // below, after which no worker dereferences `f` again.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let job = Arc::new(ForJob {
            f: f_static,
            next: AtomicUsize::new(0),
            total: ntasks,
            pending: AtomicUsize::new(ntasks),
            poisoned: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut jobs = self.shared.jobs.lock().unwrap();
            for _ in 0..self.handles.len().min(ntasks - 1) {
                jobs.push(Arc::clone(&job));
            }
        }
        self.shared.available.notify_all();
        job.run();
        let mut done = job.done.lock().unwrap();
        while !*done {
            done = job.done_cv.wait(done).unwrap();
        }
        drop(done);
        // ORDERING: Acquire — see the Release store in ForJob::run.
        if job.poisoned.load(Ordering::Acquire) {
            panic!("baseline pool: a task panicked");
        }
    }
}

impl Drop for CondvarPool {
    fn drop(&mut self) {
        // ORDERING: Release/Acquire pair with worker_loop's shutdown load.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut jobs = shared.jobs.lock().unwrap();
            loop {
                // ORDERING: Acquire — pairs with Drop's Release store.
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = jobs.pop() {
                    break job;
                }
                jobs = shared.available.wait(jobs).unwrap();
            }
        };
        job.run();
    }
}

// ---------------------------------------------------------------------
// Workload + harness
// ---------------------------------------------------------------------

/// One task: `passes` saxpy sweeps over a private 1 KiB panel — the
/// shape of a packed GEMM micro-tile, scaled by `passes` to move the
/// scheduling/compute ratio.
fn panel_kernel(buf: &mut [f32], passes: usize) {
    for p in 0..passes {
        let a = 1.0 + (p as f32) * 1e-3;
        for x in buf.iter_mut() {
            *x = a * *x + 0.5;
        }
    }
}

fn bench_runtime_steal(c: &mut Criterion) {
    let smoke = lsgd_core::env::flag("LSGD_BENCH_SMOKE");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rt = Runtime::new(threads);
    let pool = CondvarPool::new(threads);

    let mut group = c.benchmark_group("runtime_steal");
    if smoke {
        group
            .warm_up_time(Duration::from_millis(100))
            .measurement_time(Duration::from_millis(400))
            .sample_size(10);
    } else {
        group
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1))
            .sample_size(10);
    }

    // (ntasks, passes): scheduling-bound → compute-bound.
    for &(ntasks, passes) in &[(64usize, 1usize), (64, 16), (256, 4), (1024, 1)] {
        let mut bufs: Vec<Vec<f32>> = (0..ntasks).map(|_| vec![1.0f32; 256]).collect();
        let slots: Vec<Mutex<&mut [f32]>> =
            bufs.iter_mut().map(|b| Mutex::new(b.as_mut_slice())).collect();
        group.throughput(Throughput::Elements(ntasks as u64));
        let name = format!("fanout_{ntasks}x{passes}");
        group.bench_with_input(BenchmarkId::new(&name, "steal"), &(), |bench, _| {
            bench.iter(|| {
                rt.parallel_for(ntasks, &|i| {
                    panel_kernel(&mut slots[i].lock().unwrap(), passes);
                });
            });
        });
        group.bench_with_input(BenchmarkId::new(&name, "condvar"), &(), |bench, _| {
            bench.iter(|| {
                pool.parallel_for(ntasks, &|i| {
                    panel_kernel(&mut slots[i].lock().unwrap(), passes);
                });
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime_steal);
criterion_main!(benches);
