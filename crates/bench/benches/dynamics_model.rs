//! Criterion bench: cost of the Section-IV analytics — closed form,
//! trajectory iteration and the discrete-event simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsgd_dynamics::des::{simulate, CasMode, DesConfig};
use lsgd_dynamics::FluidModel;
use std::hint::black_box;
use std::time::Duration;

fn bench_dynamics(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics_model");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    let model = FluidModel::new(16.0, 40.0, 0.8);
    group.bench_function("closed_form_t1000", |b| {
        b.iter(|| black_box(model.closed_form(black_box(0.0), 1000)));
    });
    group.bench_function("trajectory_1000_steps", |b| {
        b.iter(|| black_box(model.trajectory(0.0, 1000)));
    });

    for (name, mode) in [
        ("idealized", CasMode::Idealized),
        ("realistic", CasMode::Realistic),
    ] {
        let cfg = DesConfig {
            m: 16,
            tc: 40.0,
            tu: 0.8,
            jitter: 0.2,
            persistence: Some(1),
            mode,
            horizon: 5_000.0,
            seed: 3,
        };
        group.bench_with_input(BenchmarkId::new("des_5k_units", name), &(), |b, _| {
            b.iter(|| black_box(simulate(&cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dynamics);
criterion_main!(benches);
