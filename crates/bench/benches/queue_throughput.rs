//! Criterion bench: contended MPMC queue throughput — the in-tree
//! lock-free `lsgd_sync::SegQueue` vs. the mutex-backed queue it
//! replaced as the buffer-pool free list.
//!
//! Workload: `t` threads each perform `iters` push+pop pairs on one
//! shared queue (the free-list access pattern: release pushes an
//! address, the next acquire pops one). Timing starts at a barrier after
//! all threads are spawned, so thread-start cost is excluded. The
//! printed rate is element operations per second across all threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lsgd_sync::{MutexSegQueue, SegQueue};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Runs `iters` push+pop pairs on each of `threads` threads against one
/// shared queue; returns wall time from the start barrier to last join.
fn contended_round<Q: Send + Sync + 'static>(
    queue: Arc<Q>,
    threads: usize,
    iters: u64,
    op: fn(&Q, u64),
) -> Duration {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let queue = Arc::clone(&queue);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..iters {
                    op(&queue, (t as u64) << 32 | i);
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    t0.elapsed()
}

fn push_pop_lock_free(q: &SegQueue<u64>, v: u64) {
    q.push(v);
    std::hint::black_box(q.pop());
}

fn push_pop_mutex(q: &MutexSegQueue<u64>, v: u64) {
    q.push(v);
    std::hint::black_box(q.pop());
}

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_throughput");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .sample_size(5);

    for threads in [1usize, 2, 4, 8] {
        // 2 queue ops (one push, one pop) per pair, per thread.
        group.throughput(Throughput::Elements(2 * threads as u64));
        group.bench_with_input(
            BenchmarkId::new("lock_free", threads),
            &threads,
            |b, &t| {
                b.iter_custom(|iters| {
                    contended_round(Arc::new(SegQueue::new()), t, iters, push_pop_lock_free)
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("mutex", threads), &threads, |b, &t| {
            b.iter_custom(|iters| {
                contended_round(Arc::new(MutexSegQueue::new()), t, iters, push_pop_mutex)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
