//! Criterion bench: GEMM throughput on the shapes the paper's workloads
//! exercise (MLP layer products and CNN im2col products).
//!
//! Three rows per shape:
//!
//! * `packed/*`   — the packed micro-kernel path ([`lsgd_tensor::gemm::gemm`]),
//! * `naive/*`    — the retained pre-packing kernel
//!   ([`lsgd_tensor::gemm::gemm_naive`]), kept as the regression baseline,
//! * `parallel/*` — [`lsgd_tensor::gemm::gemm_parallel`] over the global
//!   work-stealing runtime (equals `packed` when the host or `LSGD_THREADS`
//!   gives the runtime a single thread, or for sub-threshold products).
//!
//! Set `LSGD_BENCH_SMOKE=1` to shrink warm-up/measurement windows — used
//! by the CI smoke step so throughput regressions show up in logs without
//! a full measurement run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lsgd_tensor::gemm::{gemm, gemm_naive, gemm_parallel, Transpose};
use lsgd_tensor::{Matrix, SmallRng64};
use std::hint::black_box;
use std::time::Duration;

fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.next_f32() - 0.5)
}

type Kernel = fn(f32, &Matrix, Transpose, &Matrix, Transpose, f32, &mut Matrix);

fn bench_gemm(c: &mut Criterion) {
    let smoke = lsgd_core::env::flag("LSGD_BENCH_SMOKE");
    let mut group = c.benchmark_group("gemm");
    if smoke {
        group
            .warm_up_time(Duration::from_millis(100))
            .measurement_time(Duration::from_millis(400))
            .sample_size(10);
    } else {
        group
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2))
            .sample_size(10);
    }

    // (name, m, k, n): the forward products of the paper's networks at
    // batch 512 plus the CNN's per-sample im2col products.
    let shapes = [
        ("mlp_l1_512x784x128", 512, 784, 128),
        ("mlp_hidden_512x128x128", 512, 128, 128),
        ("mlp_out_512x128x10", 512, 128, 10),
        ("cnn_im2col_4x9x676", 4, 9, 676),
        ("cnn_im2col_8x36x121", 8, 36, 121),
    ];
    let kernels: [(&str, Kernel); 3] = [
        ("packed", gemm),
        ("naive", gemm_naive),
        ("parallel", gemm_parallel),
    ];
    for (name, m, k, n) in shapes {
        let a = rand_mat(m, k, 1);
        let b = rand_mat(k, n, 2);
        let mut out = Matrix::zeros(m, n);
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        for (kind, kernel) in kernels {
            group.bench_with_input(BenchmarkId::new(kind, name), &(), |bench, _| {
                bench.iter(|| {
                    kernel(
                        1.0,
                        black_box(&a),
                        Transpose::No,
                        black_box(&b),
                        Transpose::No,
                        0.0,
                        &mut out,
                    );
                });
            });
        }
    }

    // The transposed orientations backpropagation actually issues on the
    // big MLP product (dW = dYᵀ·X is `tn`, the forward X·Wᵀ is `nt`);
    // these used to hit scalar fallbacks and now ride the packed path.
    let (m, k, n) = (512, 784, 128);
    let a_t = rand_mat(k, m, 3); // stored k×m, used as Aᵀ
    let b_nt = rand_mat(n, k, 4); // stored n×k, used as Bᵀ
    let a_n = rand_mat(m, k, 5);
    let b_n = rand_mat(k, n, 6);
    let mut out = Matrix::zeros(m, n);
    group.throughput(Throughput::Elements((2 * m * k * n) as u64));
    for (kind, kernel) in [("packed", gemm as Kernel), ("naive", gemm_naive as Kernel)] {
        group.bench_with_input(
            BenchmarkId::new(kind, "mlp_l1_tn_512x784x128"),
            &(),
            |bench, _| {
                bench.iter(|| {
                    kernel(
                        1.0,
                        black_box(&a_t),
                        Transpose::Yes,
                        black_box(&b_n),
                        Transpose::No,
                        0.0,
                        &mut out,
                    );
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new(kind, "mlp_l1_nt_512x784x128"),
            &(),
            |bench, _| {
                bench.iter(|| {
                    kernel(
                        1.0,
                        black_box(&a_n),
                        Transpose::No,
                        black_box(&b_nt),
                        Transpose::Yes,
                        0.0,
                        &mut out,
                    );
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
