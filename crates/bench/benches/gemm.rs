//! Criterion bench: GEMM throughput on the shapes the paper's workloads
//! exercise (MLP layer products and CNN im2col products).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lsgd_tensor::gemm::{gemm, Transpose};
use lsgd_tensor::{Matrix, SmallRng64};
use std::hint::black_box;
use std::time::Duration;

fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.next_f32() - 0.5)
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    // (name, m, k, n): the forward products of the paper's networks at
    // batch 512 plus the CNN's per-sample im2col products.
    let shapes = [
        ("mlp_l1_512x784x128", 512, 784, 128),
        ("mlp_hidden_512x128x128", 512, 128, 128),
        ("mlp_out_512x128x10", 512, 128, 10),
        ("cnn_im2col_4x9x676", 4, 9, 676),
        ("cnn_im2col_8x36x121", 8, 36, 121),
    ];
    for (name, m, k, n) in shapes {
        let a = rand_mat(m, k, 1);
        let b = rand_mat(k, n, 2);
        let mut out = Matrix::zeros(m, n);
        group.throughput(Throughput::Elements((2 * m * k * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |bench, _| {
            bench.iter(|| {
                gemm(
                    1.0,
                    black_box(&a),
                    Transpose::No,
                    black_box(&b),
                    Transpose::No,
                    0.0,
                    &mut out,
                );
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
