//! Criterion bench: gradient computation time `Tc` (Fig. 9 left) for the
//! Table II MLP and Table III CNN at two batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsgd_core::problem::{NnProblem, Problem};
use lsgd_data::SynthDigits;
use lsgd_tensor::SmallRng64;
use std::hint::black_box;
use std::time::Duration;

fn bench_grad(c: &mut Criterion) {
    let mut group = c.benchmark_group("grad_compute_Tc");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);

    let data = SynthDigits::default().generate(1024, 1);
    for arch in ["mlp", "cnn"] {
        for batch in [64usize, 512] {
            let net = if arch == "mlp" {
                lsgd_nn::mlp_mnist()
            } else {
                lsgd_nn::cnn_mnist()
            };
            let problem = NnProblem::new(net, data.clone(), batch, 256);
            let theta = problem.init_theta(0);
            let mut grad = vec![0.0f32; problem.dim()];
            let mut scratch = problem.scratch();
            let mut rng = SmallRng64::new(7);
            group.bench_with_input(BenchmarkId::new(arch, batch), &(), |bench, _| {
                bench.iter(|| {
                    black_box(problem.grad(
                        black_box(&theta),
                        &mut grad,
                        &mut scratch,
                        &mut rng,
                    ))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_grad);
criterion_main!(benches);
