//! Shared parameter state for the baseline algorithms (paper Algorithms 2
//! and 4): the lock-based AsyncSGD and the synchronisation-free HOGWILD!.

use crate::mem::MemoryGauge;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Lock-protected shared parameters — Algorithm 2. Reads (full copy) and
/// updates are serialised through one mutex; a global sequence number
/// provides the total order used for staleness measurement.
pub struct LockedParams {
    theta: Mutex<Vec<f32>>,
    seq: AtomicU64,
    gauge: Arc<MemoryGauge>,
    bytes: usize,
}

impl LockedParams {
    /// Wraps an initial parameter vector.
    pub fn new(init: Vec<f32>, gauge: Arc<MemoryGauge>) -> Self {
        let bytes = std::mem::size_of_val(init.as_slice());
        gauge.add(bytes);
        LockedParams {
            theta: Mutex::new(init),
            seq: AtomicU64::new(0),
            gauge,
            bytes,
        }
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.theta.lock().len()
    }

    /// Copies the shared parameters into `dst` under the lock; returns the
    /// sequence number of the copied state (Algorithm 2 lines 11–13).
    pub fn read_into(&self, dst: &mut [f32]) -> u64 {
        let guard = self.theta.lock();
        dst.copy_from_slice(&guard);
        // Read the seq while holding the lock: it labels this exact state.
        // ORDERING: SeqCst — one total order over seq labels so staleness
        // math (t_new - t_base) never observes reordered labels.
        self.seq.load(Ordering::SeqCst)
    }

    /// Applies `theta -= eta * grad` under the lock (Algorithm 2 lines
    /// 15–17); returns the new sequence number.
    pub fn update(&self, grad: &[f32], eta: f32) -> u64 {
        let mut guard = self.theta.lock();
        lsgd_tensor::ops::sgd_step(&mut guard, grad, eta);
        // ORDERING: SeqCst — seq labels share one total order; the data
        // itself is protected by the mutex.
        self.seq.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Current sequence number.
    pub fn current_seq(&self) -> u64 {
        // ORDERING: SeqCst — same total order as read_into/update.
        self.seq.load(Ordering::SeqCst)
    }

    /// The memory gauge this state reports to.
    pub fn gauge(&self) -> &Arc<MemoryGauge> {
        &self.gauge
    }
}

impl Drop for LockedParams {
    fn drop(&mut self) {
        self.gauge.sub(self.bytes);
    }
}

/// Unsynchronised shared parameters — Algorithm 4 (HOGWILD!).
///
/// C++ HOGWILD! races plain `float` reads/writes; in Rust that is UB, so
/// each component is an `AtomicU32` accessed with `Relaxed` bit-cast
/// loads/stores — on x86 these compile to the same `mov` instructions the
/// C++ emits, preserving the algorithm's behaviour (word-level atomicity,
/// vector-level inconsistency) with defined semantics.
pub struct HogwildParams {
    theta: Box<[AtomicU32]>,
    seq: AtomicU64,
    gauge: Arc<MemoryGauge>,
    bytes: usize,
}

impl HogwildParams {
    /// Wraps an initial parameter vector.
    pub fn new(init: &[f32], gauge: Arc<MemoryGauge>) -> Self {
        let bytes = std::mem::size_of_val(init);
        gauge.add(bytes);
        HogwildParams {
            theta: init.iter().map(|&v| AtomicU32::new(v.to_bits())).collect(),
            seq: AtomicU64::new(0),
            gauge,
            bytes,
        }
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.theta.len()
    }

    /// Component read.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        // ORDERING: Relaxed — HOGWILD! is *defined* by unsynchronised
        // component access; only word-level atomicity is wanted.
        f32::from_bits(self.theta[i].load(Ordering::Relaxed))
    }

    /// Copies the (possibly inconsistent) current state into `dst` with
    /// relaxed per-component loads; returns the sequence number observed
    /// *before* the copy, matching the paper's staleness bookkeeping.
    pub fn read_into(&self, dst: &mut [f32]) -> u64 {
        // ORDERING: SeqCst — seq labels stay totally ordered even though
        // the component reads below are deliberately unordered.
        let t = self.seq.load(Ordering::SeqCst);
        for (d, a) in dst.iter_mut().zip(self.theta.iter()) {
            // ORDERING: Relaxed — the HOGWILD! racy read; see `get`.
            *d = f32::from_bits(a.load(Ordering::Relaxed));
        }
        t
    }

    /// The HOGWILD! update: component-wise racy read-modify-write
    /// `theta[i] -= eta * grad[i]` with no coordination (Algorithm 1 line
    /// 15–18 applied directly to the shared vector). Returns the new
    /// sequence number (`FetchAndAdd`, as in Algorithm 1 line 16).
    pub fn update(&self, grad: &[f32], eta: f32) -> u64 {
        // ORDERING: SeqCst — the paper's FetchAndAdd total order on t.
        let t = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        for (a, &g) in self.theta.iter().zip(grad) {
            // Racy RMW, exactly like the unsynchronised C++: concurrent
            // updates to the same component can be lost.
            // ORDERING: Relaxed — deliberately unsynchronised; see `get`.
            let cur = f32::from_bits(a.load(Ordering::Relaxed));
            // ORDERING: Relaxed — see above.
            a.store((cur - eta * g).to_bits(), Ordering::Relaxed);
        }
        t
    }

    /// Current sequence number.
    pub fn current_seq(&self) -> u64 {
        // ORDERING: SeqCst — same total order as read_into/update.
        self.seq.load(Ordering::SeqCst)
    }

    /// The memory gauge this state reports to.
    pub fn gauge(&self) -> &Arc<MemoryGauge> {
        &self.gauge
    }
}

impl Drop for HogwildParams {
    fn drop(&mut self) {
        self.gauge.sub(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauge() -> Arc<MemoryGauge> {
        Arc::new(MemoryGauge::new())
    }

    #[test]
    fn locked_read_after_update() {
        let p = LockedParams::new(vec![1.0; 4], gauge());
        let t0 = p.update(&[1.0, 1.0, 1.0, 1.0], 0.5);
        assert_eq!(t0, 1);
        let mut buf = vec![0.0; 4];
        let t = p.read_into(&mut buf);
        assert_eq!(t, 1);
        assert_eq!(buf, vec![0.5; 4]);
    }

    #[test]
    fn locked_updates_are_serialised() {
        let p = Arc::new(LockedParams::new(vec![0.0; 8], gauge()));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for _ in 0..1000 {
                        p.update(&[-1.0; 8], 1.0); // += 1 per component
                    }
                });
            }
        });
        let mut buf = vec![0.0; 8];
        p.read_into(&mut buf);
        assert_eq!(p.current_seq(), 4000);
        // Mutex-serialised updates lose nothing.
        assert!(buf.iter().all(|&v| v == 4000.0), "{buf:?}");
    }

    #[test]
    fn hogwild_single_thread_matches_sgd() {
        let p = HogwildParams::new(&[1.0, 2.0], gauge());
        p.update(&[0.5, -0.5], 0.2);
        assert!((p.get(0) - 0.9).abs() < 1e-7);
        assert!((p.get(1) - 2.1).abs() < 1e-7);
        assert_eq!(p.current_seq(), 1);
    }

    #[test]
    fn hogwild_concurrent_updates_may_lose_but_stay_finite() {
        let p = Arc::new(HogwildParams::new(&vec![0.0; 64], gauge()));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for _ in 0..2000 {
                        p.update(&[-1.0; 64], 1.0);
                    }
                });
            }
        });
        assert_eq!(p.current_seq(), 8000);
        let mut buf = vec![0.0; 64];
        p.read_into(&mut buf);
        for &v in &buf {
            // Lost updates are allowed (that is HOGWILD!'s deal) but the
            // value must be finite, word-atomic, and at most the total.
            assert!(v.is_finite());
            assert!(v <= 8000.0 + 0.5);
            assert!(v > 0.0);
        }
    }

    #[test]
    fn gauges_track_shared_buffer_lifetime() {
        let g = gauge();
        {
            let _p = LockedParams::new(vec![0.0; 100], Arc::clone(&g));
            assert_eq!(g.live(), 400);
        }
        assert_eq!(g.live(), 0);
        {
            let _p = HogwildParams::new(&[0.0; 25], Arc::clone(&g));
            assert_eq!(g.live(), 100);
        }
        assert_eq!(g.live(), 0);
    }
}
