//! The algorithm spectrum evaluated by the paper.

use std::fmt;

/// One of the parallel SGD algorithms from the paper's evaluation (§V):
/// sequential SGD, lock-based AsyncSGD, HOGWILD!, and Leashed-SGD with a
/// configurable persistence bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Single-threaded SGD (`SEQ`).
    Sequential,
    /// Lock-based AsyncSGD (`ASYNC`, Algorithm 2).
    AsyncLock,
    /// Synchronisation-free HOGWILD! (`HOG`, Algorithm 4).
    Hogwild,
    /// Leashed-SGD (Algorithm 3) with persistence bound `Tp`
    /// (`None` = unbounded, the paper's `LSH_ps∞`).
    Leashed {
        /// Max failed CASes before an update is abandoned.
        persistence: Option<u32>,
    },
}

impl Algorithm {
    /// The paper's label for this algorithm (as used in the figures).
    pub fn label(&self) -> String {
        match self {
            Algorithm::Sequential => "SEQ".into(),
            Algorithm::AsyncLock => "ASYNC".into(),
            Algorithm::Hogwild => "HOG".into(),
            Algorithm::Leashed { persistence: None } => "LSH_ps_inf".into(),
            Algorithm::Leashed {
                persistence: Some(tp),
            } => format!("LSH_ps{tp}"),
        }
    }

    /// True for Leashed-SGD variants.
    pub fn is_leashed(&self) -> bool {
        matches!(self, Algorithm::Leashed { .. })
    }

    /// The six algorithm configurations benchmarked in the paper's
    /// evaluation section: SEQ, ASYNC, HOG, LSH_ps∞, LSH_ps1, LSH_ps0.
    pub fn paper_lineup() -> Vec<Algorithm> {
        vec![
            Algorithm::Sequential,
            Algorithm::AsyncLock,
            Algorithm::Hogwild,
            Algorithm::Leashed { persistence: None },
            Algorithm::Leashed {
                persistence: Some(1),
            },
            Algorithm::Leashed {
                persistence: Some(0),
            },
        ]
    }

    /// The parallel lineup only (everything except SEQ).
    pub fn parallel_lineup() -> Vec<Algorithm> {
        Self::paper_lineup()[1..].to_vec()
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_conventions() {
        assert_eq!(Algorithm::Sequential.label(), "SEQ");
        assert_eq!(Algorithm::AsyncLock.label(), "ASYNC");
        assert_eq!(Algorithm::Hogwild.label(), "HOG");
        assert_eq!(
            Algorithm::Leashed { persistence: None }.label(),
            "LSH_ps_inf"
        );
        assert_eq!(
            Algorithm::Leashed {
                persistence: Some(0)
            }
            .label(),
            "LSH_ps0"
        );
    }

    #[test]
    fn paper_lineup_has_six_entries() {
        let lineup = Algorithm::paper_lineup();
        assert_eq!(lineup.len(), 6);
        assert_eq!(lineup[0], Algorithm::Sequential);
        assert_eq!(Algorithm::parallel_lineup().len(), 5);
    }

    #[test]
    fn is_leashed_discriminates() {
        assert!(Algorithm::Leashed { persistence: None }.is_leashed());
        assert!(!Algorithm::Hogwild.is_leashed());
    }
}
