//! The algorithm spectrum evaluated by the paper, plus the sharded
//! Leashed-SGD extension.

use crate::shard::SnapshotMode;
use std::fmt;

/// One of the parallel SGD algorithms from the paper's evaluation (§V) —
/// sequential SGD, lock-based AsyncSGD, HOGWILD!, and Leashed-SGD with a
/// configurable persistence bound — or the sharded Leashed-SGD variant
/// built on [`crate::shard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Single-threaded SGD (`SEQ`).
    Sequential,
    /// Lock-based AsyncSGD (`ASYNC`, Algorithm 2).
    AsyncLock,
    /// Synchronisation-free HOGWILD! (`HOG`, Algorithm 4).
    Hogwild,
    /// Leashed-SGD (Algorithm 3) with persistence bound `Tp`
    /// (`None` = unbounded, the paper's `LSH_ps∞`).
    Leashed {
        /// Max failed CASes before an update is abandoned.
        persistence: Option<u32>,
    },
    /// Sharded Leashed-SGD: the parameter vector split into `shards`
    /// independent LAU-SPC publication domains; publications copy + CAS
    /// only the dirty shards, reads use the selected cross-shard
    /// [`SnapshotMode`]. With `shards = 1` this is behaviorally
    /// equivalent to [`Algorithm::Leashed`].
    ShardedLeashed {
        /// Per-shard max failed CASes before that shard's update is
        /// abandoned (`None` = unbounded).
        persistence: Option<u32>,
        /// Requested shard count `S` (clamped to `[1, d]`; overridable at
        /// runtime via `LSGD_SHARDS`, see [`crate::shard::effective_shards`]).
        /// `0` selects the [`crate::shard::default_shards`] heuristic
        /// from the problem dimension and worker count.
        shards: usize,
        /// Cross-shard read consistency for worker gradient reads.
        snapshot: SnapshotMode,
    },
}

impl Algorithm {
    /// The paper's label for this algorithm (as used in the figures).
    ///
    /// Note: the sharded label carries the *configured* shard count —
    /// `Algorithm` is pure configuration, so a runtime `LSGD_SHARDS`
    /// override is not reflected here (harnesses that honour the
    /// override should report `crate::shard::effective_shards` alongside,
    /// as `examples/sparse_logreg.rs` does).
    pub fn label(&self) -> String {
        match self {
            Algorithm::Sequential => "SEQ".into(),
            Algorithm::AsyncLock => "ASYNC".into(),
            Algorithm::Hogwild => "HOG".into(),
            Algorithm::Leashed { persistence: None } => "LSH_ps_inf".into(),
            Algorithm::Leashed {
                persistence: Some(tp),
            } => format!("LSH_ps{tp}"),
            Algorithm::ShardedLeashed {
                persistence,
                shards,
                snapshot,
            } => {
                let ps = match persistence {
                    None => "ps_inf".into(),
                    Some(tp) => format!("ps{tp}"),
                };
                let s = if *shards == 0 {
                    "auto".into()
                } else {
                    shards.to_string()
                };
                format!("LSH_s{s}_{ps}_{}", snapshot.label())
            }
        }
    }

    /// True for Leashed-SGD variants (sharded or not).
    pub fn is_leashed(&self) -> bool {
        matches!(
            self,
            Algorithm::Leashed { .. } | Algorithm::ShardedLeashed { .. }
        )
    }

    /// True for the sharded Leashed-SGD variant.
    pub fn is_sharded(&self) -> bool {
        matches!(self, Algorithm::ShardedLeashed { .. })
    }

    /// The six algorithm configurations benchmarked in the paper's
    /// evaluation section: SEQ, ASYNC, HOG, LSH_ps∞, LSH_ps1, LSH_ps0.
    pub fn paper_lineup() -> Vec<Algorithm> {
        vec![
            Algorithm::Sequential,
            Algorithm::AsyncLock,
            Algorithm::Hogwild,
            Algorithm::Leashed { persistence: None },
            Algorithm::Leashed {
                persistence: Some(1),
            },
            Algorithm::Leashed {
                persistence: Some(0),
            },
        ]
    }

    /// The parallel lineup only (everything except SEQ).
    pub fn parallel_lineup() -> Vec<Algorithm> {
        Self::paper_lineup()[1..].to_vec()
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_conventions() {
        assert_eq!(Algorithm::Sequential.label(), "SEQ");
        assert_eq!(Algorithm::AsyncLock.label(), "ASYNC");
        assert_eq!(Algorithm::Hogwild.label(), "HOG");
        assert_eq!(
            Algorithm::Leashed { persistence: None }.label(),
            "LSH_ps_inf"
        );
        assert_eq!(
            Algorithm::Leashed {
                persistence: Some(0)
            }
            .label(),
            "LSH_ps0"
        );
    }

    #[test]
    fn paper_lineup_has_six_entries() {
        let lineup = Algorithm::paper_lineup();
        assert_eq!(lineup.len(), 6);
        assert_eq!(lineup[0], Algorithm::Sequential);
        assert_eq!(Algorithm::parallel_lineup().len(), 5);
    }

    #[test]
    fn is_leashed_discriminates() {
        assert!(Algorithm::Leashed { persistence: None }.is_leashed());
        assert!(!Algorithm::Hogwild.is_leashed());
        let sharded = Algorithm::ShardedLeashed {
            persistence: Some(1),
            shards: 8,
            snapshot: SnapshotMode::Consistent,
        };
        assert!(sharded.is_leashed());
        assert!(sharded.is_sharded());
        assert!(!Algorithm::Leashed { persistence: None }.is_sharded());
    }

    #[test]
    fn sharded_labels_encode_configuration() {
        assert_eq!(
            Algorithm::ShardedLeashed {
                persistence: Some(1),
                shards: 8,
                snapshot: SnapshotMode::Consistent,
            }
            .label(),
            "LSH_s8_ps1_cst"
        );
        assert_eq!(
            Algorithm::ShardedLeashed {
                persistence: None,
                shards: 64,
                snapshot: SnapshotMode::Fast,
            }
            .label(),
            "LSH_s64_ps_inf_fast"
        );
        assert_eq!(
            Algorithm::ShardedLeashed {
                persistence: None,
                shards: 0,
                snapshot: SnapshotMode::Fast,
            }
            .label(),
            "LSH_sauto_ps_inf_fast"
        );
    }
}
