//! The optimisation-problem abstraction the SGD algorithms train on.
//!
//! The paper's framework is "application-specific [but applies] as
//! parallelization of SGD for any optimization problem" (§V.1): the
//! algorithms only ever see a flat parameter vector and a stochastic
//! gradient oracle. [`Problem`] captures exactly that interface;
//! [`NnProblem`] instantiates it with the paper's DL workloads (network ×
//! dataset × minibatch), and [`RegressionProblem`] with the convex
//! workload class HOGWILD! was originally built for.

use lsgd_data::regression::RegressionData;
use lsgd_data::sparse_logreg::SparseLogReg;
use lsgd_data::Dataset;
use lsgd_nn::Network;
use lsgd_tensor::{Matrix, SmallRng64};

/// A stochastic optimisation problem over a flat `f32` parameter vector.
pub trait Problem: Send + Sync {
    /// Per-thread scratch state (workspaces, batch buffers).
    type Scratch: Send;

    /// Parameter dimension `d`.
    fn dim(&self) -> usize;

    /// Samples the initial parameter vector (the paper's `rand_init`).
    fn init_theta(&self, seed: u64) -> Vec<f32>;

    /// Creates per-thread scratch. Problems with intra-step parallelism
    /// (e.g. [`NnProblem`]'s GEMM fan-out) run their splits on the shared
    /// work-stealing runtime, so `m` trainer workers can never
    /// oversubscribe the machine — no per-worker sizing is needed here.
    fn scratch(&self) -> Self::Scratch;

    /// Computes a stochastic minibatch gradient of the loss at `theta`
    /// into `grad` (overwriting it); returns the minibatch loss.
    fn grad(
        &self,
        theta: &[f32],
        grad: &mut [f32],
        scratch: &mut Self::Scratch,
        rng: &mut SmallRng64,
    ) -> f32;

    /// Deterministic evaluation loss used for ε-convergence tracking.
    fn eval_loss(&self, theta: &[f32], scratch: &mut Self::Scratch) -> f64;

    /// Sparse-gradient path: computes a stochastic minibatch gradient as
    /// **ascending** `(index, value)` pairs written into `pairs` and
    /// returns the minibatch loss, or `None` when the problem has no
    /// native sparse representation (the default). The sharded trainer
    /// prefers this path — pairs flow straight into the dirty-shard
    /// publication without touching a dense buffer.
    fn grad_sparse(
        &self,
        _theta: &[f32],
        _pairs: &mut Vec<(u32, f32)>,
        _scratch: &mut Self::Scratch,
        _rng: &mut SmallRng64,
    ) -> Option<f32> {
        None
    }
}

/// The paper's DL workloads: a [`Network`] trained on a [`Dataset`] with
/// uniformly sampled minibatches; evaluation loss on a fixed subset.
pub struct NnProblem {
    net: Network,
    data: Dataset,
    eval: Dataset,
    batch: usize,
    compute: lsgd_nn::ComputeOpts,
}

/// Scratch for [`NnProblem`]: forward/backward workspace + batch buffers.
pub struct NnScratch {
    ws: lsgd_nn::Workspace,
    x: Matrix,
    y: Vec<u8>,
}

impl NnProblem {
    /// Bundles a network with training data. `eval_subset` bounds the
    /// evaluation set size (the convergence monitor's cost per check).
    ///
    /// # Panics
    /// Panics if dataset dimension does not match the network input.
    pub fn new(net: Network, data: Dataset, batch: usize, eval_subset: usize) -> Self {
        assert_eq!(data.dim(), net.in_dim(), "data/network dimension mismatch");
        assert!(batch > 0 && !data.is_empty());
        let eval = data.head(eval_subset.max(1));
        NnProblem {
            net,
            data,
            eval,
            batch,
            compute: lsgd_nn::ComputeOpts::default(),
        }
    }

    /// Selects the compute path applied to every worker workspace this
    /// problem creates (panel caching / intra-step threading). The
    /// default is the fast path; benchmarks pass
    /// [`lsgd_nn::ComputeOpts::baseline`] to measure the pre-packing
    /// reference. Gradients are bitwise identical either way.
    pub fn with_compute_opts(mut self, opts: lsgd_nn::ComputeOpts) -> Self {
        self.compute = opts;
        self
    }

    /// Builds an [`NnScratch`] with explicit compute options.
    fn scratch_with(&self, opts: lsgd_nn::ComputeOpts) -> NnScratch {
        let max_batch = self.batch.max(self.eval.len());
        let mut ws = self.net.workspace(max_batch);
        ws.set_compute_opts(opts);
        NnScratch {
            ws,
            x: Matrix::zeros(self.batch, self.data.dim()),
            y: Vec::with_capacity(self.batch),
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The training dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Minibatch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Classification accuracy of `theta` on the evaluation subset.
    pub fn eval_accuracy(&self, theta: &[f32], scratch: &mut NnScratch) -> f32 {
        self.net
            .accuracy(theta, &self.eval.images, &self.eval.labels, &mut scratch.ws)
    }
}

impl Problem for NnProblem {
    type Scratch = NnScratch;

    fn dim(&self) -> usize {
        self.net.param_len()
    }

    fn init_theta(&self, seed: u64) -> Vec<f32> {
        self.net.init_params(seed)
    }

    fn scratch(&self) -> NnScratch {
        self.scratch_with(self.compute.clone())
    }

    fn grad(
        &self,
        theta: &[f32],
        grad: &mut [f32],
        scratch: &mut NnScratch,
        rng: &mut SmallRng64,
    ) -> f32 {
        self.data.sample_batch(rng, &mut scratch.x, &mut scratch.y);
        self.net
            .loss_grad(theta, &scratch.x, &scratch.y, grad, &mut scratch.ws)
    }

    fn eval_loss(&self, theta: &[f32], scratch: &mut NnScratch) -> f64 {
        self.net
            .loss(theta, &self.eval.images, &self.eval.labels, &mut scratch.ws) as f64
    }
}

/// Convex least-squares problem over [`RegressionData`] minibatches.
pub struct RegressionProblem {
    data: RegressionData,
    batch: usize,
    init_scale: f32,
}

impl RegressionProblem {
    /// Wraps a regression instance with the given minibatch size.
    pub fn new(data: RegressionData, batch: usize) -> Self {
        assert!(batch > 0 && !data.is_empty());
        RegressionProblem {
            data,
            batch,
            init_scale: 0.0,
        }
    }

    /// The wrapped data.
    pub fn data(&self) -> &RegressionData {
        &self.data
    }
}

impl Problem for RegressionProblem {
    type Scratch = Vec<f32>; // per-sample gradient accumulator

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn init_theta(&self, seed: u64) -> Vec<f32> {
        let mut rng = SmallRng64::new(seed);
        (0..self.data.dim())
            .map(|_| rng.next_normal() * self.init_scale)
            .collect()
    }

    fn scratch(&self) -> Vec<f32> {
        vec![0.0; self.data.dim()]
    }

    fn grad(
        &self,
        theta: &[f32],
        grad: &mut [f32],
        scratch: &mut Vec<f32>,
        rng: &mut SmallRng64,
    ) -> f32 {
        grad.iter_mut().for_each(|g| *g = 0.0);
        let mut loss = 0.0f32;
        for _ in 0..self.batch {
            let i = rng.next_below(self.data.len());
            self.data.sample_grad(i, theta, scratch);
            let inv = 1.0 / self.batch as f32;
            lsgd_tensor::ops::axpy(inv, scratch, grad);
            let pred = lsgd_tensor::ops::dot(self.data.x.row(i), theta);
            let e = pred - self.data.y[i];
            loss += e * e * inv;
        }
        loss
    }

    fn eval_loss(&self, theta: &[f32], _scratch: &mut Vec<f32>) -> f64 {
        self.data.mse(theta) as f64
    }
}

/// High-dimensional sparse logistic regression over [`SparseLogReg`]
/// minibatches — the workload exercising the sharded dirty-shard
/// publication path. Implements both the dense [`Problem::grad`] (for
/// SEQ/ASYNC/HOG) and the native sparse [`Problem::grad_sparse`] (for
/// sharded Leashed-SGD): one minibatch touches only the union of its
/// documents' token coordinates.
pub struct SparseLogRegProblem {
    data: SparseLogReg,
    batch: usize,
}

/// Scratch for [`SparseLogRegProblem`]: a dense accumulator that is kept
/// all-zero between calls (only the `touched` coordinates are dirtied and
/// re-zeroed), so sparse minibatch gradients cost O(batch · nnz) rather
/// than O(d).
pub struct SparseLogRegScratch {
    acc: Vec<f32>,
    touched: Vec<u32>,
}

impl SparseLogRegProblem {
    /// Wraps a sparse logistic-regression instance with the given
    /// minibatch size.
    pub fn new(data: SparseLogReg, batch: usize) -> Self {
        assert!(batch > 0 && !data.is_empty());
        SparseLogRegProblem { data, batch }
    }

    /// The wrapped data.
    pub fn data(&self) -> &SparseLogReg {
        &self.data
    }

    /// Classification accuracy of `theta` on the full dataset.
    pub fn eval_accuracy(&self, theta: &[f32]) -> f32 {
        self.data.accuracy(theta)
    }

    /// Accumulates one minibatch's logistic gradient into the scratch
    /// accumulator (recording touched coordinates) and returns the mean
    /// minibatch loss. `scratch.acc` must be all-zero on entry.
    fn accumulate_batch(
        &self,
        theta: &[f32],
        scratch: &mut SparseLogRegScratch,
        rng: &mut SmallRng64,
    ) -> f32 {
        debug_assert!(scratch.touched.is_empty());
        let inv = 1.0 / self.batch as f32;
        let mut loss = 0.0f32;
        for _ in 0..self.batch {
            let i = rng.next_below(self.data.len());
            let z = self.data.margin(i, theta);
            let y = self.data.labels[i] as f32;
            // Stable mean logistic loss: max(z,0) - z·y + ln(1+e^{-|z|}).
            loss += (z.max(0.0) - z * y + (-z.abs()).exp().ln_1p()) * inv;
            let e = (1.0 / (1.0 + (-z).exp()) - y) * inv; // (σ(z) - y)/B
            let (idx, val) = self.data.row(i);
            for (&j, &v) in idx.iter().zip(val) {
                if scratch.acc[j as usize] == 0.0 {
                    scratch.touched.push(j);
                }
                scratch.acc[j as usize] += e * v;
            }
        }
        loss
    }

    /// Clears the touched accumulator coordinates (restoring the all-zero
    /// invariant) without an O(d) sweep.
    fn reset_scratch(scratch: &mut SparseLogRegScratch) {
        for &j in &scratch.touched {
            scratch.acc[j as usize] = 0.0;
        }
        scratch.touched.clear();
    }
}

impl Problem for SparseLogRegProblem {
    type Scratch = SparseLogRegScratch;

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn init_theta(&self, _seed: u64) -> Vec<f32> {
        // The zero vector is the canonical logistic-regression start
        // (loss exactly ln 2) and keeps differential runs comparable.
        vec![0.0; self.data.dim()]
    }

    fn scratch(&self) -> SparseLogRegScratch {
        SparseLogRegScratch {
            acc: vec![0.0; self.data.dim()],
            touched: Vec::new(),
        }
    }

    fn grad(
        &self,
        theta: &[f32],
        grad: &mut [f32],
        scratch: &mut SparseLogRegScratch,
        rng: &mut SmallRng64,
    ) -> f32 {
        let loss = self.accumulate_batch(theta, scratch, rng);
        grad.iter_mut().for_each(|g| *g = 0.0);
        for &j in &scratch.touched {
            grad[j as usize] = scratch.acc[j as usize];
        }
        Self::reset_scratch(scratch);
        loss
    }

    fn eval_loss(&self, theta: &[f32], _scratch: &mut SparseLogRegScratch) -> f64 {
        self.data.logloss(theta)
    }

    fn grad_sparse(
        &self,
        theta: &[f32],
        pairs: &mut Vec<(u32, f32)>,
        scratch: &mut SparseLogRegScratch,
        rng: &mut SmallRng64,
    ) -> Option<f32> {
        let loss = self.accumulate_batch(theta, scratch, rng);
        scratch.touched.sort_unstable();
        // A coordinate can enter `touched` twice if an exact cancellation
        // zeroed it mid-batch and a later sample touched it again.
        scratch.touched.dedup();
        pairs.clear();
        pairs.extend(
            scratch
                .touched
                .iter()
                .map(|&j| (j, scratch.acc[j as usize]))
                // Exact cancellations carry no update mass.
                .filter(|&(_, v)| v != 0.0),
        );
        Self::reset_scratch(scratch);
        Some(loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgd_data::blobs::gaussian_blobs;
    use lsgd_data::regression::dense_regression;
    use lsgd_data::sparse_logreg::sparse_logreg;
    use lsgd_nn::tiny_mlp;

    fn blob_problem() -> NnProblem {
        let data = gaussian_blobs(300, 6, 3, 0.3, 1);
        NnProblem::new(tiny_mlp(6, 16, 3), data, 32, 128)
    }

    #[test]
    fn dims_line_up() {
        let p = blob_problem();
        assert_eq!(p.dim(), 6 * 16 + 16 + 16 * 3 + 3);
        assert_eq!(p.init_theta(0).len(), p.dim());
    }

    #[test]
    fn eval_loss_starts_near_log_k() {
        let p = blob_problem();
        let theta = p.init_theta(1);
        let mut s = p.scratch();
        let l = p.eval_loss(&theta, &mut s);
        assert!((l - (3f64).ln()).abs() < 0.1, "initial loss {l}");
    }

    #[test]
    fn sgd_loop_on_problem_converges() {
        let p = blob_problem();
        let mut theta = p.init_theta(2);
        let mut s = p.scratch();
        let mut rng = SmallRng64::new(3);
        let mut grad = vec![0.0; p.dim()];
        let initial = p.eval_loss(&theta, &mut s);
        for _ in 0..400 {
            p.grad(&theta, &mut grad, &mut s, &mut rng);
            lsgd_tensor::ops::sgd_step(&mut theta, &grad, 0.2);
        }
        let fin = p.eval_loss(&theta, &mut s);
        assert!(fin < initial * 0.4, "{initial} -> {fin}");
    }

    #[test]
    fn grad_is_deterministic_given_rng_state() {
        let p = blob_problem();
        let theta = p.init_theta(4);
        let mut s = p.scratch();
        let mut g1 = vec![0.0; p.dim()];
        let mut g2 = vec![0.0; p.dim()];
        p.grad(&theta, &mut g1, &mut s, &mut SmallRng64::new(9));
        p.grad(&theta, &mut g2, &mut s, &mut SmallRng64::new(9));
        assert_eq!(g1, g2);
    }

    #[test]
    fn regression_problem_gradient_descends() {
        let p = RegressionProblem::new(dense_regression(400, 8, 0.05, 5), 16);
        let mut theta = p.init_theta(0);
        let mut s = p.scratch();
        let mut rng = SmallRng64::new(1);
        let mut grad = vec![0.0; p.dim()];
        let initial = p.eval_loss(&theta, &mut s);
        for _ in 0..1500 {
            p.grad(&theta, &mut grad, &mut s, &mut rng);
            lsgd_tensor::ops::sgd_step(&mut theta, &grad, 0.02);
        }
        let fin = p.eval_loss(&theta, &mut s);
        assert!(fin < initial * 0.05, "{initial} -> {fin}");
    }

    fn logreg_problem() -> SparseLogRegProblem {
        SparseLogRegProblem::new(sparse_logreg(600, 512, 12, 9), 16)
    }

    #[test]
    fn sparse_and_dense_gradients_agree() {
        let p = logreg_problem();
        let theta: Vec<f32> = (0..p.dim()).map(|i| ((i % 7) as f32 - 3.0) * 0.1).collect();
        let mut dense = vec![0.0f32; p.dim()];
        let mut pairs = Vec::new();
        let mut s1 = p.scratch();
        let mut s2 = p.scratch();
        let l1 = p.grad(&theta, &mut dense, &mut s1, &mut SmallRng64::new(5));
        let l2 = p
            .grad_sparse(&theta, &mut pairs, &mut s2, &mut SmallRng64::new(5))
            .expect("native sparse path");
        assert_eq!(l1, l2, "same RNG stream, same minibatch, same loss");
        let mut rebuilt = vec![0.0f32; p.dim()];
        assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "ascending");
        for &(j, v) in &pairs {
            rebuilt[j as usize] = v;
        }
        assert_eq!(rebuilt, dense);
        // Sparse: a 16-doc minibatch touches far fewer than d coordinates.
        assert!(pairs.len() < p.dim() / 2, "{} pairs", pairs.len());
        // Scratch invariant: accumulator restored to all-zero.
        assert!(s2.acc.iter().all(|&v| v == 0.0));
        assert!(s2.touched.is_empty());
    }

    #[test]
    fn sparse_logreg_sgd_converges() {
        let p = logreg_problem();
        let mut theta = p.init_theta(0);
        let mut s = p.scratch();
        let mut rng = SmallRng64::new(2);
        let mut pairs = Vec::new();
        let initial = p.eval_loss(&theta, &mut s);
        assert!((initial - std::f64::consts::LN_2).abs() < 1e-9);
        for _ in 0..800 {
            p.grad_sparse(&theta, &mut pairs, &mut s, &mut rng).unwrap();
            for &(j, v) in &pairs {
                theta[j as usize] -= 1.0 * v;
            }
        }
        let fin = p.eval_loss(&theta, &mut s);
        assert!(fin < initial * 0.6, "{initial} -> {fin}");
        assert!(p.eval_accuracy(&theta) > 0.75);
    }

    #[test]
    fn dense_problems_have_no_sparse_path() {
        let p = blob_problem();
        let theta = p.init_theta(1);
        let mut s = p.scratch();
        let mut pairs = Vec::new();
        assert!(p
            .grad_sparse(&theta, &mut pairs, &mut s, &mut SmallRng64::new(1))
            .is_none());
    }

    #[test]
    fn eval_accuracy_improves_with_training() {
        let p = blob_problem();
        let mut theta = p.init_theta(6);
        let mut s = p.scratch();
        let acc0 = p.eval_accuracy(&theta, &mut s);
        let mut rng = SmallRng64::new(7);
        let mut grad = vec![0.0; p.dim()];
        for _ in 0..600 {
            p.grad(&theta, &mut grad, &mut s, &mut rng);
            lsgd_tensor::ops::sgd_step(&mut theta, &grad, 0.2);
        }
        let acc1 = p.eval_accuracy(&theta, &mut s);
        assert!(acc1 > acc0.max(0.8), "accuracy {acc0} -> {acc1}");
    }
}
