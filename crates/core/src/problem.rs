//! The optimisation-problem abstraction the SGD algorithms train on.
//!
//! The paper's framework is "application-specific [but applies] as
//! parallelization of SGD for any optimization problem" (§V.1): the
//! algorithms only ever see a flat parameter vector and a stochastic
//! gradient oracle. [`Problem`] captures exactly that interface;
//! [`NnProblem`] instantiates it with the paper's DL workloads (network ×
//! dataset × minibatch), and [`RegressionProblem`] with the convex
//! workload class HOGWILD! was originally built for.

use lsgd_data::regression::RegressionData;
use lsgd_data::Dataset;
use lsgd_nn::Network;
use lsgd_tensor::{Matrix, SmallRng64};

/// A stochastic optimisation problem over a flat `f32` parameter vector.
pub trait Problem: Send + Sync {
    /// Per-thread scratch state (workspaces, batch buffers).
    type Scratch: Send;

    /// Parameter dimension `d`.
    fn dim(&self) -> usize;

    /// Samples the initial parameter vector (the paper's `rand_init`).
    fn init_theta(&self, seed: u64) -> Vec<f32>;

    /// Creates per-thread scratch.
    fn scratch(&self) -> Self::Scratch;

    /// Computes a stochastic minibatch gradient of the loss at `theta`
    /// into `grad` (overwriting it); returns the minibatch loss.
    fn grad(
        &self,
        theta: &[f32],
        grad: &mut [f32],
        scratch: &mut Self::Scratch,
        rng: &mut SmallRng64,
    ) -> f32;

    /// Deterministic evaluation loss used for ε-convergence tracking.
    fn eval_loss(&self, theta: &[f32], scratch: &mut Self::Scratch) -> f64;
}

/// The paper's DL workloads: a [`Network`] trained on a [`Dataset`] with
/// uniformly sampled minibatches; evaluation loss on a fixed subset.
pub struct NnProblem {
    net: Network,
    data: Dataset,
    eval: Dataset,
    batch: usize,
}

/// Scratch for [`NnProblem`]: forward/backward workspace + batch buffers.
pub struct NnScratch {
    ws: lsgd_nn::Workspace,
    x: Matrix,
    y: Vec<u8>,
}

impl NnProblem {
    /// Bundles a network with training data. `eval_subset` bounds the
    /// evaluation set size (the convergence monitor's cost per check).
    ///
    /// # Panics
    /// Panics if dataset dimension does not match the network input.
    pub fn new(net: Network, data: Dataset, batch: usize, eval_subset: usize) -> Self {
        assert_eq!(data.dim(), net.in_dim(), "data/network dimension mismatch");
        assert!(batch > 0 && !data.is_empty());
        let eval = data.head(eval_subset.max(1));
        NnProblem {
            net,
            data,
            eval,
            batch,
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The training dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Minibatch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Classification accuracy of `theta` on the evaluation subset.
    pub fn eval_accuracy(&self, theta: &[f32], scratch: &mut NnScratch) -> f32 {
        self.net
            .accuracy(theta, &self.eval.images, &self.eval.labels, &mut scratch.ws)
    }
}

impl Problem for NnProblem {
    type Scratch = NnScratch;

    fn dim(&self) -> usize {
        self.net.param_len()
    }

    fn init_theta(&self, seed: u64) -> Vec<f32> {
        self.net.init_params(seed)
    }

    fn scratch(&self) -> NnScratch {
        let max_batch = self.batch.max(self.eval.len());
        NnScratch {
            ws: self.net.workspace(max_batch),
            x: Matrix::zeros(self.batch, self.data.dim()),
            y: Vec::with_capacity(self.batch),
        }
    }

    fn grad(
        &self,
        theta: &[f32],
        grad: &mut [f32],
        scratch: &mut NnScratch,
        rng: &mut SmallRng64,
    ) -> f32 {
        self.data.sample_batch(rng, &mut scratch.x, &mut scratch.y);
        self.net
            .loss_grad(theta, &scratch.x, &scratch.y, grad, &mut scratch.ws)
    }

    fn eval_loss(&self, theta: &[f32], scratch: &mut NnScratch) -> f64 {
        self.net
            .loss(theta, &self.eval.images, &self.eval.labels, &mut scratch.ws) as f64
    }
}

/// Convex least-squares problem over [`RegressionData`] minibatches.
pub struct RegressionProblem {
    data: RegressionData,
    batch: usize,
    init_scale: f32,
}

impl RegressionProblem {
    /// Wraps a regression instance with the given minibatch size.
    pub fn new(data: RegressionData, batch: usize) -> Self {
        assert!(batch > 0 && !data.is_empty());
        RegressionProblem {
            data,
            batch,
            init_scale: 0.0,
        }
    }

    /// The wrapped data.
    pub fn data(&self) -> &RegressionData {
        &self.data
    }
}

impl Problem for RegressionProblem {
    type Scratch = Vec<f32>; // per-sample gradient accumulator

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn init_theta(&self, seed: u64) -> Vec<f32> {
        let mut rng = SmallRng64::new(seed);
        (0..self.data.dim())
            .map(|_| rng.next_normal() * self.init_scale)
            .collect()
    }

    fn scratch(&self) -> Vec<f32> {
        vec![0.0; self.data.dim()]
    }

    fn grad(
        &self,
        theta: &[f32],
        grad: &mut [f32],
        scratch: &mut Vec<f32>,
        rng: &mut SmallRng64,
    ) -> f32 {
        grad.iter_mut().for_each(|g| *g = 0.0);
        let mut loss = 0.0f32;
        for _ in 0..self.batch {
            let i = rng.next_below(self.data.len());
            self.data.sample_grad(i, theta, scratch);
            let inv = 1.0 / self.batch as f32;
            lsgd_tensor::ops::axpy(inv, scratch, grad);
            let pred = lsgd_tensor::ops::dot(self.data.x.row(i), theta);
            let e = pred - self.data.y[i];
            loss += e * e * inv;
        }
        loss
    }

    fn eval_loss(&self, theta: &[f32], _scratch: &mut Vec<f32>) -> f64 {
        self.data.mse(theta) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgd_data::blobs::gaussian_blobs;
    use lsgd_data::regression::dense_regression;
    use lsgd_nn::tiny_mlp;

    fn blob_problem() -> NnProblem {
        let data = gaussian_blobs(300, 6, 3, 0.3, 1);
        NnProblem::new(tiny_mlp(6, 16, 3), data, 32, 128)
    }

    #[test]
    fn dims_line_up() {
        let p = blob_problem();
        assert_eq!(p.dim(), 6 * 16 + 16 + 16 * 3 + 3);
        assert_eq!(p.init_theta(0).len(), p.dim());
    }

    #[test]
    fn eval_loss_starts_near_log_k() {
        let p = blob_problem();
        let theta = p.init_theta(1);
        let mut s = p.scratch();
        let l = p.eval_loss(&theta, &mut s);
        assert!((l - (3f64).ln()).abs() < 0.1, "initial loss {l}");
    }

    #[test]
    fn sgd_loop_on_problem_converges() {
        let p = blob_problem();
        let mut theta = p.init_theta(2);
        let mut s = p.scratch();
        let mut rng = SmallRng64::new(3);
        let mut grad = vec![0.0; p.dim()];
        let initial = p.eval_loss(&theta, &mut s);
        for _ in 0..400 {
            p.grad(&theta, &mut grad, &mut s, &mut rng);
            lsgd_tensor::ops::sgd_step(&mut theta, &grad, 0.2);
        }
        let fin = p.eval_loss(&theta, &mut s);
        assert!(fin < initial * 0.4, "{initial} -> {fin}");
    }

    #[test]
    fn grad_is_deterministic_given_rng_state() {
        let p = blob_problem();
        let theta = p.init_theta(4);
        let mut s = p.scratch();
        let mut g1 = vec![0.0; p.dim()];
        let mut g2 = vec![0.0; p.dim()];
        p.grad(&theta, &mut g1, &mut s, &mut SmallRng64::new(9));
        p.grad(&theta, &mut g2, &mut s, &mut SmallRng64::new(9));
        assert_eq!(g1, g2);
    }

    #[test]
    fn regression_problem_gradient_descends() {
        let p = RegressionProblem::new(dense_regression(400, 8, 0.05, 5), 16);
        let mut theta = p.init_theta(0);
        let mut s = p.scratch();
        let mut rng = SmallRng64::new(1);
        let mut grad = vec![0.0; p.dim()];
        let initial = p.eval_loss(&theta, &mut s);
        for _ in 0..1500 {
            p.grad(&theta, &mut grad, &mut s, &mut rng);
            lsgd_tensor::ops::sgd_step(&mut theta, &grad, 0.02);
        }
        let fin = p.eval_loss(&theta, &mut s);
        assert!(fin < initial * 0.05, "{initial} -> {fin}");
    }

    #[test]
    fn eval_accuracy_improves_with_training() {
        let p = blob_problem();
        let mut theta = p.init_theta(6);
        let mut s = p.scratch();
        let acc0 = p.eval_accuracy(&theta, &mut s);
        let mut rng = SmallRng64::new(7);
        let mut grad = vec![0.0; p.dim()];
        for _ in 0..600 {
            p.grad(&theta, &mut grad, &mut s, &mut rng);
            lsgd_tensor::ops::sgd_step(&mut theta, &grad, 0.2);
        }
        let acc1 = p.eval_accuracy(&theta, &mut s);
        assert!(acc1 > acc0.max(0.8), "accuracy {acc0} -> {acc1}");
    }
}
