//! The ParameterVector data structure and the Leashed-SGD publication
//! protocol (paper Algorithms 1 and 3).
//!
//! # Protocol recap
//!
//! A global pointer `P` refers to the most recently *published*
//! [`ParamVec`]. Workers:
//!
//! 1. acquire `P` through the `latest_pointer()` retry loop
//!    ([`LeashedShared::latest`]), which increments the vector's reader
//!    count and re-checks its stale flag (paper P3);
//! 2. compute a gradient directly from the published buffer (no copy);
//! 3. run the **LAU-SPC** loop ([`LeashedShared::publish_update`]):
//!    re-acquire the latest vector, copy it into a private fresh vector,
//!    apply the gradient, and attempt to swing `P` with a single CAS
//!    (paper P1/P5). Failed CASes retry up to the persistence bound `Tp`,
//!    after which the update is abandoned (contention regulation, §IV.2);
//! 4. a replaced vector is flagged stale and reclaimed by its last reader
//!    (paper P2/P4, `safe_delete`).
//!
//! # Safety model (why the `unsafe` here is sound)
//!
//! * **Headers are never freed during a run.** Algorithm 1's
//!   `safe_delete` frees only the `theta` array; we mirror that by
//!   arena-registering every header and freeing them when the
//!   [`LeashedShared`] is dropped (strictly after all workers have
//!   joined). Consequently the CAS on `P` is ABA-free — a header address
//!   is never recycled into a *different* logical vector — and reading a
//!   header's atomics is always safe.
//! * **A buffer is dereferenced only under the read protocol.** A reader
//!   increments `n_rdrs` *before* checking `stale` (SeqCst); reclamation
//!   requires `stale ∧ n_rdrs = 0 ∧ CAS(deleted)` (SeqCst). In the SeqCst
//!   total order, a reader that observed `¬stale` after its increment is
//!   counted by any later reclamation check, so the buffer cannot be
//!   released while it is readable. Published buffers are never written
//!   (updates go to private fresh buffers), so `&[f32]` views are
//!   race-free.
//! * **Writes to a private buffer happen-before its publication.** The
//!   publishing CAS is `AcqRel`; readers load `P` with `Acquire`.

use crate::pool::BufferPool;
use lsgd_check::annotate;
use lsgd_check::sync::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, Ordering};
use lsgd_sync::SegQueue;

/// One ParameterVector instance: metadata header + owned `theta` buffer
/// (paper Algorithm 1).
pub struct ParamVec {
    /// Sequence number of the most recent update applied to `theta`
    /// (Algorithm 1 line 2). Published vectors are totally ordered by it.
    t: AtomicU64,
    /// Active reader count (`n_rdrs`).
    n_rdrs: AtomicU32,
    /// Set once the vector has been replaced as the global one.
    stale: AtomicBool,
    /// Set by the (single) reclaimer; guards double-free.
    deleted: AtomicBool,
    /// The parameter array; null after reclamation.
    buf: AtomicPtr<f32>,
    /// Buffer length `d`.
    dim: usize,
}

impl ParamVec {
    /// Sequence number of this vector.
    #[inline]
    pub fn seq(&self) -> u64 {
        // ORDERING: SeqCst keeps `t` in the same total order as the
        // publication CAS and stale/n_rdrs protocol it is read alongside.
        self.t.load(Ordering::SeqCst)
    }

    /// Whether this vector has been replaced (stale vectors must not be
    /// read; `latest()` retries past them).
    #[inline]
    pub fn is_stale(&self) -> bool {
        // ORDERING: SeqCst — part of the P3 read protocol's total order
        // (see `latest`); a weaker load could miss a concurrent retire.
        self.stale.load(Ordering::SeqCst)
    }

    /// Current reader count (diagnostic).
    #[inline]
    pub fn readers(&self) -> u32 {
        // ORDERING: SeqCst for consistency with the protocol's other
        // n_rdrs accesses; this getter is diagnostic only.
        self.n_rdrs.load(Ordering::SeqCst)
    }

    /// Algorithm 1 `safe_delete`: reclaim the buffer iff stale, unread and
    /// not already reclaimed.
    fn safe_delete(&self, pool: &BufferPool) {
        // ORDERING: SeqCst on stale, n_rdrs and the deleted CAS — the
        // safety argument (module docs) relies on the SeqCst total order
        // to prove a counted reader that saw ¬stale is visible to every
        // later reclamation check. Release/acquire alone does not give
        // the needed read(n_rdrs) / write(stale) ordering both ways.
        if self.stale.load(Ordering::SeqCst)
            && self.n_rdrs.load(Ordering::SeqCst) == 0
            && self
                .deleted
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            // ORDERING: SeqCst swap publishes the null and joins the
            // winning reclaimer into the total order; the deleted CAS
            // already guarantees exclusivity.
            let ptr = self.buf.swap(std::ptr::null_mut(), Ordering::SeqCst);
            debug_assert!(!ptr.is_null(), "published vector reclaimed twice");
            // SAFETY: `deleted` CAS guarantees exactly one reclaimer; the
            // stale/n_rdrs conditions guarantee no current or future
            // readers (see module-level safety model).
            unsafe { pool.release(ptr) };
        }
    }

    /// Algorithm 1 `stop_reading`: drop one reader and attempt reclaim.
    fn stop_reading(&self, pool: &BufferPool) {
        // ORDERING: SeqCst — the decrement must order after this reader's
        // buffer reads and before the safe_delete checks (its own and any
        // other thread's), which the SeqCst total order provides.
        let prev = self.n_rdrs.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "stop_reading without start_reading");
        self.safe_delete(pool);
    }

    /// Immutable view of theta.
    ///
    /// # Safety
    /// Caller must hold the read protocol (counted reader that observed
    /// `¬stale`) or exclusive pre-publication ownership.
    #[inline]
    unsafe fn theta(&self) -> &[f32] {
        // ORDERING: Acquire pairs with the Release publication of the
        // buffer pointer (pool handoff / header init) so the pointee is
        // fully initialised before we build a slice over it.
        let ptr = self.buf.load(Ordering::Acquire);
        debug_assert!(!ptr.is_null());
        // Model checker: a counted read of the whole buffer. The base
        // address keys the buffer as one object, so any write that is
        // not happens-before ordered with this read is a reported race.
        annotate::data_read(ptr as usize);
        std::slice::from_raw_parts(ptr, self.dim)
    }

    /// Mutable view of theta.
    ///
    /// # Safety
    /// Caller must have exclusive pre-publication ownership.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn theta_mut(&self) -> &mut [f32] {
        // ORDERING: Acquire — same pairing as `theta`; the writer must
        // also see the previous owner's handoff before reusing a
        // recycled buffer.
        let ptr = self.buf.load(Ordering::Acquire);
        debug_assert!(!ptr.is_null());
        // Model checker: an exclusive write to the whole buffer; races
        // with any unordered read or write are reported.
        annotate::data_write(ptr as usize);
        std::slice::from_raw_parts_mut(ptr, self.dim)
    }
}

/// RAII guard for a counted read of the latest published vector.
pub struct ReadGuard<'a> {
    pv: &'a ParamVec,
    shared: &'a LeashedShared,
}

impl<'a> ReadGuard<'a> {
    /// The parameter values (valid for the guard's lifetime).
    #[inline]
    pub fn theta(&self) -> &[f32] {
        // SAFETY: guard holds a counted read that observed ¬stale.
        unsafe { self.pv.theta() }
    }

    /// The vector's sequence number `t`.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.pv.seq()
    }

    fn raw(&self) -> *mut ParamVec {
        self.pv as *const ParamVec as *mut ParamVec
    }
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        self.pv.stop_reading(&self.shared.pool);
    }
}

/// Outcome of one LAU-SPC publication attempt sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishOutcome {
    /// CAS succeeded. `t_new` is the published sequence number; `t_base`
    /// the sequence number of the vector the update was applied to;
    /// `failed_cas` the number of lost races along the way.
    Published {
        /// Sequence number of the newly published vector.
        t_new: u64,
        /// Sequence number of the base vector the gradient was applied to.
        t_base: u64,
        /// Sequence number of the base vector of the *first* attempt — the
        /// reference point for the scheduling staleness `τs` of §IV.2
        /// (`τs = t_new - 1 - t_first_base`): competitors that won the
        /// LAU-SPC race after this update was first ready to publish.
        t_first_base: u64,
        /// CAS failures before success.
        failed_cas: u32,
    },
    /// The persistence bound was exceeded; the update was abandoned and
    /// its memory recycled (paper Algorithm 3 lines 36–39).
    Aborted {
        /// CAS failures (= `Tp + 1`).
        failed_cas: u32,
    },
}

/// The shared state of a Leashed-SGD run: the global pointer `P`, the
/// buffer pool, and the header arena.
///
/// ```
/// use lsgd_core::paramvec::{LeashedShared, PublishOutcome};
/// use lsgd_core::pool::BufferPool;
/// use lsgd_core::mem::MemoryGauge;
/// use std::sync::Arc;
///
/// let pool = BufferPool::new(4, Arc::new(MemoryGauge::new()));
/// let shared = LeashedShared::new(&[1.0; 4], pool);
///
/// // A counted, consistent read (paper Algorithm 3, latest_pointer()):
/// assert_eq!(shared.latest().theta(), &[1.0; 4]);
///
/// // One LAU-SPC publication: theta -= eta * grad, one CAS.
/// let out = shared.publish_update(&[1.0; 4], 0.5, None, |_| {});
/// assert!(matches!(out, PublishOutcome::Published { t_new: 1, .. }));
/// assert_eq!(shared.latest().theta(), &[0.5; 4]);
/// ```
pub struct LeashedShared {
    p: AtomicPtr<ParamVec>,
    pool: BufferPool,
    /// Every header ever allocated, freed on drop (never during the run).
    ///
    /// Ordering audit (PR 2): this queue is an arena *registry*, not a
    /// publication channel — header contents reach other threads through
    /// the `AcqRel` CAS on `p`, never through this queue, so nothing
    /// here relies on the queue's push→pop release/acquire edge. Drop
    /// drains it under `&mut self`, after every worker has joined.
    headers: SegQueue<usize>,
    dim: usize,
}

// SAFETY: all cross-thread access goes through the atomic protocol
// described in the module docs; raw pointers are either owned exclusively
// (pre-publication) or read under the counted-reader protocol.
unsafe impl Send for LeashedShared {}
unsafe impl Sync for LeashedShared {}

impl LeashedShared {
    /// Creates the shared state and publishes the initial vector with the
    /// contents of `init` at sequence number 0.
    pub fn new(init: &[f32], pool: BufferPool) -> Self {
        assert_eq!(init.len(), pool.dim(), "init length must match pool dim");
        let shared = LeashedShared {
            p: AtomicPtr::new(std::ptr::null_mut()),
            pool,
            headers: SegQueue::new(),
            dim: init.len(),
        };
        let pv = shared.alloc_header();
        // SAFETY: exclusive ownership before first publication.
        unsafe { (*pv).theta_mut().copy_from_slice(init) };
        // ORDERING: Release — the initial publication; pairs with the
        // Acquire load in `latest` so workers see the initialised
        // header and buffer contents.
        shared.p.store(pv, Ordering::Release);
        shared
    }

    /// Parameter dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The buffer pool (for memory diagnostics).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Allocates a fresh ParameterVector header + buffer, registered in
    /// the header arena.
    fn alloc_header(&self) -> *mut ParamVec {
        let buf = self.pool.acquire();
        let pv = Box::into_raw(Box::new(ParamVec {
            t: AtomicU64::new(0),
            n_rdrs: AtomicU32::new(0),
            stale: AtomicBool::new(false),
            deleted: AtomicBool::new(false),
            buf: AtomicPtr::new(buf),
            dim: self.dim,
        }));
        // Model checker: register the header region so use-after-free /
        // leak tracking covers headers as well as buffers.
        annotate::fresh(pv as usize, std::mem::size_of::<ParamVec>());
        self.headers.push(pv as usize);
        pv
    }

    /// Paper Algorithm 3 `latest_pointer()`: acquire the most recent
    /// published vector under the counted-reader protocol. Lock-free: a
    /// retry implies another thread published (system-wide progress).
    pub fn latest(&self) -> ReadGuard<'_> {
        loop {
            // ORDERING: Acquire pairs with the publishing AcqRel CAS (or
            // the initial Release store) so the vector's contents
            // happen-before this reader's use of them.
            let ptr = self.p.load(Ordering::Acquire);
            // SAFETY: headers are never freed during the run.
            let pv = unsafe { &*ptr };
            // ORDERING: SeqCst increment-then-check (P3): the increment
            // must precede the stale check in the single total order the
            // reclamation proof quantifies over; see safe_delete.
            pv.n_rdrs.fetch_add(1, Ordering::SeqCst);
            // ORDERING: SeqCst — the other half of the P3 handshake.
            if !pv.stale.load(Ordering::SeqCst) {
                return ReadGuard { pv, shared: self };
            }
            // Raced with a publisher: back off this vector (possibly
            // reclaiming it) and fetch a fresher one.
            lsgd_trace::count(lsgd_trace::Counter::ReadRetry);
            pv.stop_reading(&self.pool);
        }
    }

    /// Sequence number of the currently published vector (no read guard;
    /// used for staleness bookkeeping).
    pub fn current_seq(&self) -> u64 {
        // SAFETY: headers are never freed during the run; reading the
        // sequence number of a just-replaced vector is benign (it only
        // under-estimates, exactly like the C++ original).
        // ORDERING: Acquire — same pairing as `latest`; `seq()` then
        // reads `t` inside the acquired header.
        unsafe { (*self.p.load(Ordering::Acquire)).seq() }
    }

    /// The LAU-SPC loop (paper Algorithm 3 lines 23–40): allocate a fresh
    /// vector, copy the latest published parameters into it, apply
    /// `grad` scaled by `-eta`, and publish with a CAS; retry on failure
    /// up to `persistence` times (`None` = unbounded).
    ///
    /// `on_attempt` is invoked once per attempt with the attempt's
    /// duration in seconds — the quantity the paper reports as `Tu`.
    pub fn publish_update(
        &self,
        grad: &[f32],
        eta: f32,
        persistence: Option<u32>,
        on_attempt: impl FnMut(f64),
    ) -> PublishOutcome {
        assert_eq!(grad.len(), self.dim, "gradient length");
        lsgd_trace::count(lsgd_trace::Counter::PublishDense);
        self.publish_with(
            persistence,
            |dst| lsgd_tensor::ops::sgd_step(dst, grad, eta),
            on_attempt,
        )
    }

    /// Sparse LAU-SPC publication: identical protocol to
    /// [`publish_update`], but the update step applies only the given
    /// `(index, value)` pairs (`theta[i - offset] -= eta * v`) instead of
    /// a dense axpy, so the per-attempt cost is the O(d') base copy plus
    /// O(k) for k pairs rather than O(d') + O(d'). `offset` lets a sharded
    /// caller pass global coordinate indices for a shard that owns the
    /// range `[offset, offset + dim)` without rewriting the pair list.
    ///
    /// # Panics
    /// Panics (debug) if any `index - offset` falls outside `0..dim`.
    pub fn publish_update_sparse(
        &self,
        pairs: &[(u32, f32)],
        offset: u32,
        eta: f32,
        persistence: Option<u32>,
        on_attempt: impl FnMut(f64),
    ) -> PublishOutcome {
        debug_assert!(pairs
            .iter()
            .all(|&(i, _)| (i >= offset) && ((i - offset) as usize) < self.dim));
        lsgd_trace::count(lsgd_trace::Counter::PublishSparse);
        self.publish_with(
            persistence,
            |dst| {
                for &(i, v) in pairs {
                    dst[(i - offset) as usize] -= eta * v;
                }
            },
            on_attempt,
        )
    }

    /// The shared LAU-SPC attempt loop: copy-latest, `apply` the update to
    /// the private fresh buffer, single CAS, retry up to the persistence
    /// bound. `apply` is re-invoked on every attempt (the base copy is
    /// re-taken from the then-latest vector).
    fn publish_with(
        &self,
        persistence: Option<u32>,
        mut apply: impl FnMut(&mut [f32]),
        mut on_attempt: impl FnMut(f64),
    ) -> PublishOutcome {
        let new_ptr = self.alloc_header();
        // SAFETY: exclusive ownership until published.
        let new_pv = unsafe { &*new_ptr };
        let mut failed: u32 = 0;
        let mut t_first_base: Option<u64> = None;
        loop {
            lsgd_trace::count(lsgd_trace::Counter::PublishAttempt);
            // Injection seam: an armed `stall:publish` rule widens the
            // copy→CAS window here, driving contention/retries up.
            lsgd_fault::point(lsgd_fault::Site::Publish);
            let t0 = std::time::Instant::now();
            let latest = self.latest();
            let t_base = latest.seq();
            t_first_base.get_or_insert(t_base);
            {
                // SAFETY: exclusive pre-publication ownership of new_pv;
                // counted read of latest.
                let dst = unsafe { new_pv.theta_mut() };
                dst.copy_from_slice(latest.theta());
            }
            // ORDERING: SeqCst stores to `t` on a still-private vector;
            // visibility is actually guaranteed by the publishing CAS
            // below — SeqCst here keeps every `t` access in one total
            // order so seq() comparisons never run backwards.
            new_pv.t.store(t_base, Ordering::SeqCst);
            let latest_raw = latest.raw();
            drop(latest); // stop_reading before the CAS, as in Algorithm 3
            // update(): t += 1; theta -= eta * grad  (Algorithm 1 line 15).
            // ORDERING: SeqCst — see the store above.
            new_pv.t.fetch_add(1, Ordering::SeqCst);
            {
                let dst = unsafe { new_pv.theta_mut() };
                apply(dst);
            }
            // ORDERING: AcqRel on success — Release publishes the private
            // writes to the new vector (pairs with latest()'s Acquire);
            // Acquire orders the subsequent stale/safe_delete handling of
            // the displaced vector after its publication. Acquire on
            // failure: the retry re-reads the winner's vector next loop.
            let succ = self
                .p
                .compare_exchange(
                    latest_raw,
                    new_ptr,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok();
            on_attempt(t0.elapsed().as_secs_f64());
            if succ {
                // SAFETY: header arena keeps latest_raw alive.
                let old = unsafe { &*latest_raw };
                // ORDERING: SeqCst — flags P2 retirement inside the
                // protocol's total order so no reader past its P3 check
                // can be missed by the safe_delete that follows.
                old.stale.store(true, Ordering::SeqCst);
                old.safe_delete(&self.pool);
                return PublishOutcome::Published {
                    t_new: t_base + 1,
                    t_base,
                    t_first_base: t_first_base.unwrap_or(t_base),
                    failed_cas: failed,
                };
            }
            failed += 1;
            lsgd_trace::count(lsgd_trace::Counter::PublishRetry);
            if let Some(tp) = persistence {
                if failed > tp {
                    // Abandon: recycle the never-published vector.
                    // ORDERING: SeqCst — same protocol as the success
                    // path; the vector was never shared, so this only
                    // feeds safe_delete's own checks.
                    new_pv.stale.store(true, Ordering::SeqCst);
                    new_pv.safe_delete(&self.pool);
                    lsgd_trace::count(lsgd_trace::Counter::PublishAbort);
                    return PublishOutcome::Aborted { failed_cas: failed };
                }
            }
        }
    }

    /// Copies the current published parameters into `dst` (used by the
    /// convergence monitor).
    pub fn snapshot_into(&self, dst: &mut [f32]) -> u64 {
        let guard = self.latest();
        dst.copy_from_slice(guard.theta());
        guard.seq()
    }
}

impl Drop for LeashedShared {
    fn drop(&mut self) {
        // Free all headers; their buffers belong to the pool, which
        // reclaims them in its own drop.
        while let Some(addr) = self.headers.pop() {
            // Model checker: close the header's region before the free.
            annotate::retire(addr, std::mem::size_of::<ParamVec>());
            // SAFETY: allocated via Box::into_raw in alloc_header; freed
            // exactly once, and only after all users are gone (&mut self).
            unsafe { drop(Box::from_raw(addr as *mut ParamVec)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemoryGauge;
    use std::sync::Arc;

    fn shared(dim: usize, init: f32) -> LeashedShared {
        let pool = BufferPool::new(dim, Arc::new(MemoryGauge::new()));
        LeashedShared::new(&vec![init; dim], pool)
    }

    #[test]
    fn initial_vector_is_readable() {
        let s = shared(8, 1.5);
        let g = s.latest();
        assert_eq!(g.seq(), 0);
        assert!(g.theta().iter().all(|&v| v == 1.5));
    }

    #[test]
    fn publish_applies_sgd_step() {
        let s = shared(4, 1.0);
        let grad = vec![1.0, 2.0, 3.0, 4.0];
        let out = s.publish_update(&grad, 0.5, None, |_| {});
        match out {
            PublishOutcome::Published {
                t_new,
                t_base,
                t_first_base,
                failed_cas,
            } => {
                assert_eq!(t_new, 1);
                assert_eq!(t_base, 0);
                assert_eq!(t_first_base, 0);
                assert_eq!(failed_cas, 0);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let g = s.latest();
        assert_eq!(g.seq(), 1);
        assert_eq!(g.theta(), &[0.5, 0.0, -0.5, -1.0]);
    }

    #[test]
    fn sparse_publish_matches_dense_equivalent() {
        let dense = shared(6, 1.0);
        let sparse = shared(6, 1.0);
        let grad = vec![0.0, 2.0, 0.0, 0.0, -4.0, 0.0];
        dense.publish_update(&grad, 0.5, None, |_| {});
        let out = sparse.publish_update_sparse(&[(1, 2.0), (4, -4.0)], 0, 0.5, None, |_| {});
        assert!(matches!(out, PublishOutcome::Published { t_new: 1, .. }));
        assert_eq!(dense.latest().theta(), sparse.latest().theta());
        assert_eq!(sparse.latest().theta(), &[1.0, 0.0, 1.0, 1.0, 3.0, 1.0]);
    }

    #[test]
    fn sparse_publish_offset_rebases_indices() {
        let s = shared(4, 0.0);
        // Global indices 10..14 belong to a shard whose range starts at 10.
        s.publish_update_sparse(&[(10, 1.0), (13, 2.0)], 10, 1.0, None, |_| {});
        assert_eq!(s.latest().theta(), &[-1.0, 0.0, 0.0, -2.0]);
    }

    #[test]
    fn sequence_numbers_are_dense_and_monotone() {
        let s = shared(2, 0.0);
        for i in 1..=10u64 {
            let out = s.publish_update(&[0.1, 0.1], 0.1, None, |_| {});
            assert!(matches!(out, PublishOutcome::Published { t_new, .. } if t_new == i));
        }
        assert_eq!(s.current_seq(), 10);
    }

    #[test]
    fn replaced_vector_is_reclaimed_when_unread() {
        let s = shared(16, 0.0);
        for _ in 0..50 {
            s.publish_update(&[0.0; 16], 0.1, None, |_| {});
        }
        // Single-threaded: only the published vector should remain
        // outstanding (plus nothing else).
        assert_eq!(s.pool().outstanding(), 1);
        // Steady state must recycle rather than allocate.
        assert!(s.pool().gauge().pool_reuses() >= 49);
    }

    #[test]
    fn reader_prevents_reclamation_until_dropped() {
        let s = shared(4, 7.0);
        let g = s.latest();
        s.publish_update(&[1.0; 4], 1.0, None, |_| {});
        // The old vector is stale but still held by `g`.
        assert_eq!(s.pool().outstanding(), 2);
        assert_eq!(g.theta(), &[7.0; 4], "guarded contents stay intact");
        drop(g);
        assert_eq!(s.pool().outstanding(), 1, "last reader reclaims");
    }

    #[test]
    fn monitor_snapshot_matches_latest() {
        let s = shared(3, 2.0);
        s.publish_update(&[1.0, 1.0, 1.0], 1.0, None, |_| {});
        let mut buf = vec![0.0; 3];
        let seq = s.snapshot_into(&mut buf);
        assert_eq!(seq, 1);
        assert_eq!(buf, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn attempt_callback_fires_once_per_attempt() {
        let s = shared(4, 0.0);
        let mut calls = 0;
        s.publish_update(&[0.0; 4], 0.1, Some(3), |_| calls += 1);
        assert_eq!(calls, 1, "uncontended publish takes one attempt");
    }

    #[test]
    fn concurrent_publishes_keep_sequence_dense() {
        // The core consistency property (paper P1): published vectors are
        // totally ordered with dense sequence numbers — no update is ever
        // half-applied or lost once its CAS succeeds.
        let s = Arc::new(shared(64, 0.0));
        let per_thread = 200u64;
        let threads = 4u64;
        std::thread::scope(|sc| {
            for tid in 0..threads {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    let grad = vec![tid as f32 * 0.01; 64];
                    for _ in 0..per_thread {
                        let out = s.publish_update(&grad, 0.001, None, |_| {});
                        assert!(matches!(out, PublishOutcome::Published { .. }));
                    }
                });
            }
        });
        assert_eq!(s.current_seq(), per_thread * threads);
        assert_eq!(s.pool().outstanding(), 1);
    }

    #[test]
    fn persistence_zero_aborts_under_contention() {
        // With Tp = 0 and heavy contention, some updates must abort; all
        // published ones had zero failed CASes.
        let s = Arc::new(shared(256, 0.0));
        let mut any_aborts = false;
        std::thread::scope(|sc| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let s = Arc::clone(&s);
                handles.push(sc.spawn(move || {
                    let grad = vec![0.01; 256];
                    let mut aborted = 0u64;
                    let mut published = 0u64;
                    for _ in 0..300 {
                        match s.publish_update(&grad, 0.001, Some(0), |_| {}) {
                            PublishOutcome::Published { failed_cas, .. } => {
                                assert_eq!(failed_cas, 0);
                                published += 1;
                            }
                            PublishOutcome::Aborted { failed_cas } => {
                                assert_eq!(failed_cas, 1);
                                aborted += 1;
                            }
                        }
                    }
                    (published, aborted)
                }));
            }
            let mut total_published = 0;
            for h in handles {
                let (p, a) = h.join().unwrap();
                total_published += p;
                any_aborts |= a > 0;
            }
            assert_eq!(s.current_seq(), total_published);
        });
        // On a multicore box contention is virtually guaranteed, but do
        // not hard-fail on a machine that happens to serialise perfectly.
        if !any_aborts {
            eprintln!("warning: no aborts observed; contention too low to exercise Tp=0");
        }
    }

    #[test]
    fn memory_stays_bounded_under_concurrency() {
        // Lemma 2: at most ~2m+1 pool buffers live at once (m new_params +
        // m read-held + 1 published).
        let m = 4usize;
        let s = Arc::new(shared(32, 0.0));
        std::thread::scope(|sc| {
            for _ in 0..m {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    let grad = vec![0.5; 32];
                    for _ in 0..500 {
                        let g = s.latest();
                        let _sum: f32 = g.theta().iter().sum();
                        drop(g);
                        s.publish_update(&grad, 0.001, Some(2), |_| {});
                    }
                });
            }
        });
        let peak = s.pool().outstanding_peak();
        assert!(
            peak <= 2 * m + 1,
            "outstanding peak {peak} exceeds Lemma-2 style bound {}",
            2 * m + 1
        );
    }

    #[test]
    fn readers_see_consistent_snapshots_during_publishes() {
        // Consistency: every read sees a vector where *all* components
        // carry the same number of applied updates (no torn/mixed state),
        // because updates happen on private copies. We encode the update
        // count in every component.
        let s = Arc::new(shared(128, 0.0));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|sc| {
            let writer = {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                sc.spawn(move || {
                    let grad = vec![-1.0; 128]; // eta 1.0 → +1 per component
                    let mut n = 0u64;
                    // ORDERING: Relaxed — a test stop flag; it carries no
                    // data, only "eventually observe true".
                    while !stop.load(Ordering::Relaxed) {
                        s.publish_update(&grad, 1.0, None, |_| {});
                        n += 1;
                    }
                    n
                })
            };
            for _ in 0..2 {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    for _ in 0..2000 {
                        let g = s.latest();
                        let th = g.theta();
                        let first = th[0];
                        assert!(
                            th.iter().all(|&v| v == first),
                            "torn read: mixed update counts in one vector"
                        );
                        assert_eq!(first as u64, g.seq(), "contents match seq");
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
            // ORDERING: Relaxed — see the paired load above.
            stop.store(true, Ordering::Relaxed);
            let _ = writer.join();
        });
    }
}
