//! Results of one training run: everything the paper's figures plot.

use crate::algorithm::Algorithm;
use lsgd_metrics::{Histogram, OnlineStats, Outcome, Series};
use lsgd_trace::PhaseStats;
use std::time::Duration;

/// The per-update unit-bin histogram trio every run records (total
/// staleness τ, scheduling staleness τs, dirty shards per publication) —
/// one constructor so the trainer's worker stats, merged results, and
/// test fixtures can't drift apart on caps.
#[derive(Debug, Clone)]
pub struct UpdateHistograms {
    /// Total staleness distribution τ (Fig. 6).
    pub staleness: Histogram,
    /// Scheduling staleness τs (Leashed-SGD; §IV.2).
    pub tau_s: Histogram,
    /// Dirty shards per update (sharded Leashed-SGD only).
    pub dirty_shards: Histogram,
}

impl UpdateHistograms {
    /// Creates the trio with one shared unit-bin cap.
    pub fn new(cap: usize) -> Self {
        UpdateHistograms {
            staleness: Histogram::new(cap),
            tau_s: Histogram::new(cap),
            dirty_shards: Histogram::new(cap),
        }
    }

    /// Merges another trio (caps must match, as for [`Histogram::merge`]).
    pub fn merge(&mut self, other: &UpdateHistograms) {
        self.staleness.merge(&other.staleness);
        self.tau_s.merge(&other.tau_s);
        self.dirty_shards.merge(&other.dirty_shards);
    }
}

/// One contained trainer-worker panic: the run kept going on the
/// surviving workers; this records who died and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCrash {
    /// The crashed worker's id.
    pub worker: usize,
    /// The panic payload, stringified (`"<non-string panic payload>"`
    /// when the payload was neither `&str` nor `String`).
    pub message: String,
}

/// Aggregated outcome of a [`crate::trainer::train`] run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The algorithm configuration.
    pub algorithm: Algorithm,
    /// Number of worker threads `m`.
    pub threads: usize,
    /// Loss at initialisation `f(θ₀)`.
    pub initial_loss: f64,
    /// Loss at the last monitor observation.
    pub final_loss: f64,
    /// Best (lowest) observed loss.
    pub best_loss: f64,
    /// True if the run hit numerical instability (paper's "Crash").
    pub crashed: bool,
    /// Per-ε outcome: `(fraction, Converged(time)/Diverged/Crashed)`.
    pub outcomes: Vec<(f64, Outcome)>,
    /// Published updates at the moment each ε was reached (statistical
    /// efficiency, Fig. 8 right).
    pub iters_to_eps: Vec<(f64, Option<u64>)>,
    /// Evaluation loss over wall-clock time (Fig. 5).
    pub loss_trace: Series,
    /// Live ParameterVector bytes over time (Fig. 10).
    pub mem_trace: Series,
    /// Total staleness distribution τ (Fig. 6).
    pub staleness: Histogram,
    /// Scheduling staleness τs (Leashed-SGD; §IV.2).
    pub tau_s: Histogram,
    /// Dirty shards per update — how many shard domains each publication
    /// copied + CASed (sharded Leashed-SGD only; empty otherwise).
    pub dirty_shards: Histogram,
    /// Successfully published updates.
    pub published: u64,
    /// Updates abandoned via the persistence bound.
    pub aborted: u64,
    /// Total failed CAS attempts (Leashed-SGD).
    pub failed_cas: u64,
    /// Gradient computation time Tc in seconds (Fig. 9 left).
    pub tc: OnlineStats,
    /// Update application time Tu in seconds (Fig. 9 right).
    pub tu: OnlineStats,
    /// Full iteration latency in seconds (Fig. 3 right).
    pub iter_time: OnlineStats,
    /// Total wall-clock duration of the run.
    pub wall: Duration,
    /// Peak live parameter-buffer bytes.
    pub mem_peak_bytes: usize,
    /// Peak concurrently-outstanding pool buffers (Leashed; Lemma 2).
    pub pool_outstanding_peak: usize,
    /// Fresh parameter-buffer allocations during the run.
    pub mem_allocs: u64,
    /// Buffer reuses served by the recycling pool.
    pub mem_reuses: u64,
    /// Per-phase latency histograms (snapshot-read / grad-compute / pack
    /// / publish / monitor-eval) with p50/p95/p99 — populated only for
    /// traced runs (`--features trace` + `LSGD_TRACE=1`), empty (and
    /// allocation-free) otherwise.
    pub phase_stats: PhaseStats,
    /// Per-run protocol counter deltas from `lsgd_trace` (`(name, count)`
    /// pairs: publish attempts/retries/aborts, snapshot retries, queue
    /// and scheduler events). Empty for untraced runs.
    pub trace_counters: Vec<(&'static str, u64)>,
    /// Workers that panicked and were contained (the run continued on
    /// the survivors). Empty for a clean run.
    pub worker_crashes: Vec<WorkerCrash>,
    /// Consistent-mode snapshots that exhausted their validate budget
    /// and degraded to a fresh per-shard Fast read.
    pub degraded_snapshots: u64,
    /// Worker stalls detected by the monitor's heartbeat watchdog (one
    /// per entered stall span, not per poll).
    pub heartbeat_stalls: u64,
}

impl RunResult {
    /// Wall-clock seconds to reach the ε fraction, if converged.
    pub fn time_to(&self, fraction: f64) -> Option<f64> {
        self.outcomes
            .iter()
            .find(|(f, _)| (*f - fraction).abs() < 1e-12)
            .and_then(|(_, o)| o.secs())
    }

    /// Outcome for the ε fraction.
    pub fn outcome_for(&self, fraction: f64) -> Option<Outcome> {
        self.outcomes
            .iter()
            .find(|(f, _)| (*f - fraction).abs() < 1e-12)
            .map(|(_, o)| *o)
    }

    /// Published updates per second (throughput).
    pub fn updates_per_sec(&self) -> f64 {
        self.published as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// True if every tracked ε was reached.
    pub fn fully_converged(&self) -> bool {
        self.outcomes.iter().all(|(_, o)| o.converged())
    }

    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        let conv: Vec<String> = self
            .outcomes
            .iter()
            .map(|(f, o)| match o {
                Outcome::Converged(d) => format!("{:.0}%:{:.2}s", f * 100.0, d.as_secs_f64()),
                Outcome::Diverged => format!("{:.0}%:div", f * 100.0),
                Outcome::Crashed => format!("{:.0}%:crash", f * 100.0),
            })
            .collect();
        let dirty = if self.dirty_shards.count() > 0 {
            format!(" dirty(mean {:.1})", self.dirty_shards.mean())
        } else {
            String::new()
        };
        let faults = if self.worker_crashes.is_empty() && self.heartbeat_stalls == 0 {
            String::new()
        } else {
            format!(
                " faults(wcrash {} stall {})",
                self.worker_crashes.len(),
                self.heartbeat_stalls
            )
        };
        format!(
            "{} m={} upd={} ({:.0}/s) abort={} loss {:.3}->{:.3} [{}] stale(mean {:.1}){}{} mem {}KB",
            self.algorithm.label(),
            self.threads,
            self.published,
            self.updates_per_sec(),
            self.aborted,
            self.initial_loss,
            self.final_loss,
            conv.join(" "),
            self.staleness.mean(),
            dirty,
            faults,
            self.mem_peak_bytes / 1024,
        )
    }

    /// Multi-line observability report for traced runs: the per-phase
    /// p50/p95/p99 table plus nonzero protocol counters. Empty string
    /// when the run was untraced (so callers can print unconditionally).
    pub fn trace_report(&self) -> String {
        let mut s = self.phase_stats.table();
        let nonzero: Vec<_> = self
            .trace_counters
            .iter()
            .filter(|&&(_, v)| v != 0)
            .collect();
        if !nonzero.is_empty() {
            let mut t = lsgd_metrics::table::Table::new(vec!["counter", "count"]);
            for &&(name, v) in &nonzero {
                t.row(vec![name.to_string(), v.to_string()]);
            }
            s.push_str(&t.render());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> RunResult {
        RunResult {
            algorithm: Algorithm::Hogwild,
            threads: 4,
            initial_loss: 2.3,
            final_loss: 0.5,
            best_loss: 0.4,
            crashed: false,
            outcomes: vec![
                (0.5, Outcome::Converged(Duration::from_secs_f64(1.5))),
                (0.1, Outcome::Diverged),
            ],
            iters_to_eps: vec![(0.5, Some(100)), (0.1, None)],
            loss_trace: Series::new(),
            mem_trace: Series::new(),
            staleness: Histogram::new(8),
            tau_s: Histogram::new(8),
            dirty_shards: Histogram::new(8),
            phase_stats: PhaseStats::empty(),
            trace_counters: Vec::new(),
            published: 500,
            aborted: 0,
            failed_cas: 3,
            tc: OnlineStats::new(),
            tu: OnlineStats::new(),
            iter_time: OnlineStats::new(),
            wall: Duration::from_secs(2),
            mem_peak_bytes: 4096,
            pool_outstanding_peak: 0,
            mem_allocs: 0,
            mem_reuses: 0,
            worker_crashes: Vec::new(),
            degraded_snapshots: 0,
            heartbeat_stalls: 0,
        }
    }

    #[test]
    fn time_to_finds_matching_fraction() {
        let r = dummy();
        assert_eq!(r.time_to(0.5), Some(1.5));
        assert_eq!(r.time_to(0.1), None);
        assert_eq!(r.time_to(0.9), None);
    }

    #[test]
    fn throughput_is_published_over_wall() {
        let r = dummy();
        assert!((r.updates_per_sec() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn fully_converged_requires_all() {
        let mut r = dummy();
        assert!(!r.fully_converged());
        r.outcomes = vec![(0.5, Outcome::Converged(Duration::from_secs(1)))];
        assert!(r.fully_converged());
    }

    #[test]
    fn summary_mentions_algorithm_and_outcomes() {
        let s = dummy().summary();
        assert!(s.contains("HOG"));
        assert!(s.contains("50%:1.50s"));
        assert!(s.contains("10%:div"));
    }

    #[test]
    fn summary_reports_contained_faults_only_when_present() {
        let mut r = dummy();
        assert!(!r.summary().contains("faults"));
        r.worker_crashes.push(WorkerCrash { worker: 2, message: "boom".into() });
        r.heartbeat_stalls = 3;
        let s = r.summary();
        assert!(s.contains("faults(wcrash 1 stall 3)"), "{s}");
    }

    #[test]
    fn update_histograms_share_one_cap_and_merge() {
        let mut a = UpdateHistograms::new(16);
        let mut b = UpdateHistograms::new(16);
        a.staleness.record(3);
        b.staleness.record(5);
        b.dirty_shards.record(2);
        a.merge(&b);
        assert_eq!(a.staleness.count(), 2);
        assert_eq!(a.dirty_shards.count(), 1);
        assert_eq!(a.tau_s.count(), 0);
    }

    #[test]
    fn untraced_run_has_empty_trace_report() {
        let r = dummy();
        assert!(r.phase_stats.is_empty());
        assert!(r.trace_report().is_empty());
    }
}
