//! Per-worker heartbeat cells: the monitor's (and the test watchdog's)
//! view of worker liveness.
//!
//! Each trainer worker owns one cache-line-aligned cell and beats it
//! once per iteration. Two consumers read the board:
//!
//! * The **monitor task** detects stalled workers by watching `ticks`
//!   (a plain single-writer counter — approximate reads are fine for
//!   liveness) and drains the **detail mailbox** for the exact
//!   `(step, ns)` of the last beat when it wants to report one.
//! * The **test watchdog** ([`report_current`]) prints every worker's
//!   last tick count and phase when a stress test times out, so a hung
//!   run leaves a diagnosis instead of a bare abort. The report reads
//!   only the relaxed cells — it must never consume the monitor's
//!   mailbox.
//!
//! The mailbox is a single-slot SPSC channel with ownership
//! alternation: `state == 0` means the slot belongs to the worker,
//! `state == seq != 0` means a beat is published and the slot belongs
//! to the monitor. The worker's `Release` store of `seq` publishes the
//! non-atomic `detail` payload; the monitor's `Release` store of `0`
//! returns the slot. The `model_heartbeat` suite checks this protocol
//! exhaustively, and the `lsgd_mutate_relaxed_beat` mutation build
//! demotes the worker's publish to `Relaxed` to prove the checker would
//! catch the resulting race on `detail`.

use lsgd_check::sync::{AtomicU32, AtomicU64, UnsafeCell};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// What a worker was last doing, for stall reports. Coarser than the
/// trace phases on purpose: one store per beat, no ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum BeatPhase {
    /// Not yet started (the cell's initial state).
    Idle = 0,
    /// Reading/validating a parameter snapshot.
    Snapshot = 1,
    /// Computing the gradient.
    Grad = 2,
    /// Publishing an update.
    Publish = 3,
    /// Exited its loop normally.
    Done = 4,
    /// Terminated by a panic (contained by the trainer).
    Crashed = 5,
}

impl BeatPhase {
    /// Human name for stall reports.
    pub fn name(self) -> &'static str {
        match self {
            BeatPhase::Idle => "idle",
            BeatPhase::Snapshot => "snapshot",
            BeatPhase::Grad => "grad",
            BeatPhase::Publish => "publish",
            BeatPhase::Done => "done",
            BeatPhase::Crashed => "crashed",
        }
    }

    fn from_u32(v: u32) -> BeatPhase {
        match v {
            1 => BeatPhase::Snapshot,
            2 => BeatPhase::Grad,
            3 => BeatPhase::Publish,
            4 => BeatPhase::Done,
            5 => BeatPhase::Crashed,
            _ => BeatPhase::Idle,
        }
    }
}

/// One worker's heartbeat cell. Aligned to its own cache-line pair so
/// per-iteration beats never false-share with a neighbor.
#[repr(align(128))]
struct Cell {
    /// Beat counter. Single writer (the owning worker); readers accept
    /// approximate values.
    ticks: AtomicU64,
    /// Last [`BeatPhase`], as `u32`. Single writer, approximate reads.
    phase: AtomicU32,
    /// Mailbox ownership/sequence word: `0` = worker owns the slot,
    /// `seq != 0` = beat `seq` is published and the monitor owns it.
    state: AtomicU64,
    /// Mailbox payload: `[step, ns]` of the published beat. Guarded by
    /// `state` — accessed only by the current slot owner.
    detail: UnsafeCell<[u64; 2]>,
}

impl Cell {
    fn new() -> Cell {
        Cell {
            ticks: AtomicU64::new(0),
            phase: AtomicU32::new(BeatPhase::Idle as u32),
            state: AtomicU64::new(0),
            detail: UnsafeCell::new([0; 2]),
        }
    }
}

// SAFETY: `detail` is only touched by the slot's current owner as
// established by the `state` Acquire/Release protocol; everything else
// is atomic.
unsafe impl Sync for Cell {}

/// A published beat drained from a worker's mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Beat {
    /// The beat's sequence number (the worker's tick count at publish).
    pub seq: u64,
    /// The worker-local step the beat was taken at.
    pub step: u64,
    /// Caller-defined timestamp (the trainer uses nanoseconds since
    /// run start).
    pub ns: u64,
}

/// The per-run heartbeat board: one [`Cell`] per trainer worker.
pub struct HeartbeatBoard {
    cells: Box<[Cell]>,
}

impl HeartbeatBoard {
    /// A board for `workers` workers, all idle at tick 0.
    pub fn new(workers: usize) -> HeartbeatBoard {
        HeartbeatBoard {
            cells: (0..workers).map(|_| Cell::new()).collect(),
        }
    }

    /// Number of worker cells.
    pub fn workers(&self) -> usize {
        self.cells.len()
    }

    /// Worker-side: records one beat for `worker` — bumps `ticks`, sets
    /// `phase`, and (when the monitor has drained the previous one)
    /// publishes `(step, ns)` through the mailbox.
    pub fn beat(&self, worker: usize, phase: BeatPhase, step: u64, ns: u64) {
        let cell = &self.cells[worker];
        // ORDERING: Relaxed — `ticks` is single-writer (this worker);
        // a plain load+store increment is exact for the writer, and
        // liveness readers tolerate arbitrarily stale values.
        let seq = cell.ticks.load(Ordering::Relaxed) + 1;
        // ORDERING: Relaxed — see above (the store half of the increment).
        cell.ticks.store(seq, Ordering::Relaxed);
        // ORDERING: Relaxed — single-writer phase label, approximate
        // reads only (stall reports), synchronizes nothing.
        cell.phase.store(phase as u32, Ordering::Relaxed);
        // Acquire: seeing 0 means we happen-after the monitor's read of
        // the previous payload, so overwriting `detail` cannot race it.
        if cell.state.load(Ordering::Acquire) == 0 {
            cell.detail.with_mut(|p| unsafe { *p = [step, ns] });
            // The Release publishes `detail` to the monitor's Acquire
            // load of `state`. `seq >= 1`, so nonzero is guaranteed.
            #[cfg(not(lsgd_mutate_relaxed_beat))]
            cell.state.store(seq, Ordering::Release);
            // ORDERING: Relaxed — deliberate mutation: without the
            // Release edge the monitor's `detail` read races this beat's
            // write; the model checker's mutation test must catch it.
            #[cfg(lsgd_mutate_relaxed_beat)]
            cell.state.store(seq, Ordering::Relaxed);
        }
    }

    /// Updates `worker`'s phase label without consuming a tick — used
    /// for mid-iteration transitions (grad → publish) and the terminal
    /// `Done`/`Crashed` marks.
    pub fn set_phase(&self, worker: usize, phase: BeatPhase) {
        // ORDERING: Relaxed — single-writer phase label (the worker or
        // the trainer's containment path after the worker died).
        self.cells[worker].phase.store(phase as u32, Ordering::Relaxed);
    }

    /// Monitor-side: drains `worker`'s mailbox, returning the published
    /// beat (if any) and handing the slot back to the worker. Must only
    /// be called from the single monitor/consumer thread.
    pub fn collect(&self, worker: usize) -> Option<Beat> {
        let cell = &self.cells[worker];
        // Acquire: pairs with the worker's Release publish, making the
        // `detail` payload visible before we read it.
        let seq = cell.state.load(Ordering::Acquire);
        if seq == 0 {
            return None;
        }
        let [step, ns] = cell.detail.with(|p| unsafe { *p });
        // Release: orders our `detail` read before the slot handback, so
        // the worker's next overwrite (after its Acquire sees 0) cannot
        // race what we just read.
        cell.state.store(0, Ordering::Release);
        Some(Beat { seq, step, ns })
    }

    /// Approximate tick count for `worker` (liveness probe; safe from
    /// any thread, never touches the mailbox).
    pub fn ticks(&self, worker: usize) -> u64 {
        // ORDERING: Relaxed — single-writer counter, approximate read;
        // a stale value only delays stall detection by one poll.
        self.cells[worker].ticks.load(Ordering::Relaxed)
    }

    /// Approximate last phase for `worker` (same contract as [`ticks`](Self::ticks)).
    pub fn phase(&self, worker: usize) -> BeatPhase {
        // ORDERING: Relaxed — single-writer label, approximate read.
        BeatPhase::from_u32(self.cells[worker].phase.load(Ordering::Relaxed))
    }

    /// One line per worker: `w3: ticks=1204 phase=publish`. Reads only
    /// the relaxed cells, so it is safe from a watchdog thread while
    /// the run (and its monitor) is still live.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for w in 0..self.cells.len() {
            out.push_str(&format!(
                "  w{w}: ticks={} phase={}\n",
                self.ticks(w),
                self.phase(w).name()
            ));
        }
        out
    }
}

/// The most recent live board, for out-of-band diagnostics (the stress
/// watchdog). Weak so a finished run's board is dropped normally.
fn current() -> &'static Mutex<Weak<HeartbeatBoard>> {
    static CURRENT: OnceLock<Mutex<Weak<HeartbeatBoard>>> = OnceLock::new();
    CURRENT.get_or_init(|| Mutex::new(Weak::new()))
}

/// Registers `board` as the process's current run (the trainer calls
/// this at the start of every `train`). Diagnostics-only — concurrent
/// runs race for the slot and the last writer wins.
pub fn set_current(board: &Arc<HeartbeatBoard>) {
    *current().lock().unwrap_or_else(|e| e.into_inner()) = Arc::downgrade(board);
}

/// Formats [`HeartbeatBoard::report`] for the current run, if one is
/// live. The stress watchdog prints this before aborting a hung test.
pub fn report_current() -> Option<String> {
    current()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .upgrade()
        .map(|board| board.report())
}

#[cfg(all(test, not(lsgd_model)))]
mod tests {
    use super::*;

    #[test]
    fn beat_publishes_and_collect_drains() {
        let board = HeartbeatBoard::new(2);
        assert_eq!(board.collect(0), None);
        board.beat(0, BeatPhase::Grad, 7, 1234);
        assert_eq!(board.ticks(0), 1);
        assert_eq!(board.phase(0), BeatPhase::Grad);
        assert_eq!(board.collect(0), Some(Beat { seq: 1, step: 7, ns: 1234 }));
        assert_eq!(board.collect(0), None, "mailbox drained");
        assert_eq!(board.collect(1), None, "other workers untouched");
    }

    #[test]
    fn undrained_mailbox_keeps_the_oldest_beat_but_ticks_advance() {
        let board = HeartbeatBoard::new(1);
        board.beat(0, BeatPhase::Snapshot, 1, 10);
        board.beat(0, BeatPhase::Publish, 2, 20);
        assert_eq!(board.ticks(0), 2, "ticks always advance");
        // The slot still belongs to the monitor: beat 2 was dropped.
        assert_eq!(board.collect(0), Some(Beat { seq: 1, step: 1, ns: 10 }));
        board.beat(0, BeatPhase::Publish, 3, 30);
        assert_eq!(board.collect(0), Some(Beat { seq: 3, step: 3, ns: 30 }));
    }

    #[test]
    fn set_phase_marks_without_a_tick() {
        let board = HeartbeatBoard::new(1);
        board.beat(0, BeatPhase::Grad, 0, 0);
        board.set_phase(0, BeatPhase::Crashed);
        assert_eq!(board.ticks(0), 1);
        assert_eq!(board.phase(0), BeatPhase::Crashed);
        let report = board.report();
        assert!(report.contains("w0: ticks=1 phase=crashed"), "{report}");
    }

    #[test]
    fn current_registry_upgrades_while_live_only() {
        let board = Arc::new(HeartbeatBoard::new(3));
        set_current(&board);
        board.beat(2, BeatPhase::Publish, 9, 0);
        let report = report_current().expect("board is live");
        assert!(report.contains("w2: ticks=1 phase=publish"), "{report}");
        drop(board);
        assert_eq!(report_current(), None, "weak ref must not leak the board");
    }
}
