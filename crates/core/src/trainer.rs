//! The parallel training executor.
//!
//! [`train`] runs `m` asynchronous worker threads executing one of the
//! paper's algorithms against a [`Problem`], while the calling thread acts
//! as the convergence monitor: it periodically snapshots the shared
//! parameters, evaluates the loss, drives the ε-convergence tracker
//! (including the Crash/Diverge classification of §V.2) and samples the
//! memory gauge. Workers record per-update staleness, `Tc`/`Tu` timings
//! and iteration latency — the raw series behind every figure in the
//! paper's evaluation.

use crate::algorithm::Algorithm;
use crate::baseline::{HogwildParams, LockedParams};
use crate::heartbeat::{BeatPhase, HeartbeatBoard};
use crate::mem::MemoryGauge;
use crate::paramvec::{LeashedShared, PublishOutcome};
use crate::pool::BufferPool;
use crate::problem::Problem;
use crate::result::{RunResult, UpdateHistograms, WorkerCrash};
use crate::shard::{effective_shards, ShardedShared};
use lsgd_metrics::{ConvergenceTracker, OnlineStats, Series};
use lsgd_trace::Phase;
use lsgd_tensor::SmallRng64;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Step-size policy — `Constant` reproduces the paper; `TauAdaptive`
/// implements the staleness-adaptive direction the paper cites as
/// orthogonal, complementary work (its refs [4], [33], [38], [43]):
/// the effective step of an update with estimated staleness `τ` is
/// `η / (1 + β·τ)`, damping stale updates instead of discarding them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EtaPolicy {
    /// Fixed step size (the paper's setting).
    Constant,
    /// `η_eff = η / (1 + beta · τ_est)` with `τ_est` the number of
    /// updates published since this worker read its parameters.
    TauAdaptive {
        /// Damping strength β (0 recovers `Constant`).
        beta: f64,
    },
}

impl EtaPolicy {
    /// Effective step size for an update with estimated staleness `tau`.
    #[inline]
    pub fn effective(&self, eta: f32, tau: u64) -> f32 {
        match self {
            EtaPolicy::Constant => eta,
            EtaPolicy::TauAdaptive { beta } => {
                (eta as f64 / (1.0 + beta * tau as f64)) as f32
            }
        }
    }
}

/// Training-run configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// Number of worker threads `m` (forced to 1 for `SEQ`).
    pub threads: usize,
    /// Step size η.
    pub eta: f32,
    /// ε thresholds as fractions of the initial loss (e.g. `[0.5, 0.1]`).
    pub epsilons: Vec<f64>,
    /// Stop after this many published updates (budget).
    pub max_updates: u64,
    /// Stop after this much wall-clock time (budget).
    pub max_wall: Duration,
    /// Monitor cadence (loss evaluation + memory sampling).
    pub eval_every: Duration,
    /// Seed for parameter init and worker RNG streams.
    pub seed: u64,
    /// Unit-bin cap for the staleness histograms.
    pub staleness_cap: usize,
    /// Top-|g| gradient sparsification: keep this fraction of components
    /// (`None` = dense updates, the paper's setting).
    pub sparsify: Option<f32>,
    /// Step-size policy (constant in the paper).
    pub eta_policy: EtaPolicy,
    /// ParameterVector buffer recycling (Leashed-SGD only; `false` runs
    /// the naive allocate/free variant for the recycling ablation).
    pub pool_recycling: bool,
    /// Momentum coefficient `μ` (0 = the paper's plain SGD). Each worker
    /// keeps a private velocity `v ← μ·v + g` and applies `v` instead of
    /// `g` — the standard local-momentum formulation for asynchronous
    /// SGD (the paper lists momentum among the hyper-parameters that
    /// "play a significant role", §I).
    pub momentum: f32,
    /// Soft cap on live parameter-buffer bytes (`None` = uncapped, the
    /// paper's setting). Under the cap, pressured pool allocations
    /// briefly wait for a recyclable buffer before being forced through
    /// — see [`MemoryGauge::set_cap`] and `BufferPool::acquire`.
    pub mem_cap_bytes: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            algorithm: Algorithm::Leashed { persistence: None },
            threads: 2,
            eta: 0.005,
            epsilons: vec![0.5],
            max_updates: 100_000,
            max_wall: Duration::from_secs(60),
            eval_every: Duration::from_millis(50),
            seed: 1,
            staleness_cap: 512,
            sparsify: None,
            eta_policy: EtaPolicy::Constant,
            pool_recycling: true,
            momentum: 0.0,
            mem_cap_bytes: None,
        }
    }
}

/// Per-worker statistics merged into the [`RunResult`].
#[derive(Debug)]
struct WorkerStats {
    hists: UpdateHistograms,
    published: u64,
    aborted: u64,
    failed_cas: u64,
    /// Consistent snapshots this worker saw degrade to a Fast re-read.
    degraded: u64,
    tc: OnlineStats,
    tu: OnlineStats,
    iter_time: OnlineStats,
}

impl WorkerStats {
    fn new(cap: usize) -> Self {
        WorkerStats {
            hists: UpdateHistograms::new(cap),
            published: 0,
            aborted: 0,
            failed_cas: 0,
            degraded: 0,
            tc: OnlineStats::new(),
            tu: OnlineStats::new(),
            iter_time: OnlineStats::new(),
        }
    }

    fn merge(&mut self, other: &WorkerStats) {
        self.hists.merge(&other.hists);
        self.published += other.published;
        self.aborted += other.aborted;
        self.failed_cas += other.failed_cas;
        self.degraded += other.degraded;
        self.tc.merge(&other.tc);
        self.tu.merge(&other.tu);
        self.iter_time.merge(&other.iter_time);
    }
}

/// Shared algorithm state, dispatched per config.
#[allow(clippy::large_enum_variant)] // one instance per run; size is irrelevant
enum SharedState {
    Locked(LockedParams),
    Hogwild(HogwildParams),
    Leashed(LeashedShared),
    Sharded(ShardedShared),
}

impl SharedState {
    fn snapshot_into(&self, dst: &mut [f32]) {
        match self {
            SharedState::Locked(p) => {
                p.read_into(dst);
            }
            SharedState::Hogwild(p) => {
                p.read_into(dst);
            }
            SharedState::Leashed(s) => {
                s.snapshot_into(dst);
            }
            SharedState::Sharded(s) => {
                s.snapshot_into(dst);
            }
        }
    }
}

/// Control block shared by workers and the monitor.
struct Control {
    stop: AtomicBool,
    crashed: AtomicBool,
    total_published: AtomicU64,
    /// Workers still running their loop. Decremented once per worker on
    /// exit (normal or contained panic); the monitor stops the run when
    /// it hits 0 before `stop` was set (= every worker crashed).
    alive: AtomicUsize,
}

/// RAII gauge accounting for worker-local buffers: the matching `sub`
/// must run even when the worker's loop unwinds from a contained panic,
/// or the run's live-byte accounting (and any cap) leaks permanently.
struct GaugeHold {
    gauge: Arc<MemoryGauge>,
    bytes: usize,
}

impl GaugeHold {
    fn new(gauge: Arc<MemoryGauge>, bytes: usize) -> GaugeHold {
        gauge.add(bytes);
        GaugeHold { gauge, bytes }
    }
}

impl Drop for GaugeHold {
    fn drop(&mut self) {
        self.gauge.sub(self.bytes);
    }
}

/// Stringifies a panic payload for [`WorkerCrash`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic payload>".to_string(),
        },
    }
}

/// Per-worker context for heartbeats and fault probes, threaded through
/// every algorithm loop.
struct WorkerCtx<'a> {
    board: &'a HeartbeatBoard,
    worker_id: usize,
    start: Instant,
}

impl WorkerCtx<'_> {
    /// One beat per iteration: ticks the liveness counter and (when the
    /// monitor has drained the mailbox) publishes `(step, ns)`.
    fn beat(&self, phase: BeatPhase, step: u64) {
        self.board.beat(
            self.worker_id,
            phase,
            step,
            self.start.elapsed().as_nanos() as u64,
        );
    }

    /// Mid-iteration phase label (no tick).
    fn phase(&self, phase: BeatPhase) {
        self.board.set_phase(self.worker_id, phase);
    }
}

/// Runs one training execution and returns its full measurement record.
///
/// # Panics
/// Panics if the initial evaluation loss is not finite and positive
/// (untrainable setup), or if `threads == 0`.
pub fn train<P: Problem>(problem: &P, cfg: &TrainConfig) -> RunResult {
    assert!(cfg.threads > 0, "need at least one worker thread");
    let threads = if cfg.algorithm == Algorithm::Sequential {
        1
    } else {
        cfg.threads
    };
    let dim = problem.dim();
    let gauge = Arc::new(MemoryGauge::new());

    let theta0 = problem.init_theta(cfg.seed);
    // The monitor evaluates concurrently with the workers; its splits
    // run on the same work-stealing runtime, so no fan-out budget is
    // needed.
    let mut monitor_scratch = problem.scratch();
    let initial_loss = problem.eval_loss(&theta0, &mut monitor_scratch);

    let shared = match cfg.algorithm {
        Algorithm::Sequential | Algorithm::AsyncLock => {
            SharedState::Locked(LockedParams::new(theta0, Arc::clone(&gauge)))
        }
        Algorithm::Hogwild => {
            SharedState::Hogwild(HogwildParams::new(&theta0, Arc::clone(&gauge)))
        }
        Algorithm::Leashed { .. } => {
            let pool =
                BufferPool::new_with_recycling(dim, Arc::clone(&gauge), cfg.pool_recycling);
            SharedState::Leashed(LeashedShared::new(&theta0, pool))
        }
        Algorithm::ShardedLeashed { shards, .. } => SharedState::Sharded(ShardedShared::new(
            &theta0,
            // `shards == 0` selects the dim/worker heuristic; LSGD_SHARDS
            // still overrides either way.
            effective_shards(shards, dim, threads),
            Arc::clone(&gauge),
            cfg.pool_recycling,
        )),
    };

    // Advisory memory cap: the pool's pressure path reads it through
    // the shared gauge.
    gauge.set_cap(cfg.mem_cap_bytes);

    let control = Control {
        stop: AtomicBool::new(false),
        crashed: AtomicBool::new(false),
        total_published: AtomicU64::new(0),
        alive: AtomicUsize::new(threads),
    };

    // Heartbeats: one cell per worker, plus the global registry so the
    // stress watchdog can print liveness for a hung run.
    let board = Arc::new(HeartbeatBoard::new(threads));
    crate::heartbeat::set_current(&board);
    // Contained worker panics land here (monitor threads never write).
    let crashes: Mutex<Vec<WorkerCrash>> = Mutex::new(Vec::new());

    let mut tracker = ConvergenceTracker::new(initial_loss, &cfg.epsilons);
    let mut iters_to_eps: Vec<(f64, Option<u64>)> =
        cfg.epsilons.iter().map(|&f| (f, None)).collect();
    let mut loss_trace = Series::new();
    let mut mem_trace = Series::new();
    loss_trace.push(0.0, initial_loss);

    let start = Instant::now();
    let mut merged = WorkerStats::new(cfg.staleness_cap);
    let mut heartbeat_stalls: u64 = 0;
    // Per-run trace window: baselines the process-wide counters now so the
    // final dump reports deltas for this run only. A ZST no-op unless the
    // `trace` feature is compiled in and LSGD_TRACE is set.
    let mut collector = lsgd_trace::Collector::new();

    // Workers and the monitor all run as tasks of the unified runtime: the
    // same workers also execute the intra-step GEMM splits the tasks fan
    // out, so m trainer workers × GEMM parallelism can never oversubscribe
    // the machine (scoped tasks beyond the runtime width degrade to
    // dedicated threads, preserving the old `thread::scope` semantics).
    // Each task writes its results through a disjoint `&mut` slot.
    let mut stats_slots: Vec<Option<WorkerStats>> = (0..threads).map(|_| None).collect();
    {
        // Monitor-owned state, moved into its task as one bundle.
        let monitor_scratch = &mut monitor_scratch;
        let tracker = &mut tracker;
        let iters_to_eps = &mut iters_to_eps;
        let loss_trace = &mut loss_trace;
        let mem_trace = &mut mem_trace;
        let shared = &shared;
        let control = &control;
        let gauge = &gauge;
        let collector = &mut collector;
        let board = &board;
        let crashes = &crashes;
        let heartbeat_stalls = &mut heartbeat_stalls;
        lsgd_runtime::global().scope(|scope| {
            for (worker_id, slot) in stats_slots.iter_mut().enumerate() {
                scope.spawn(move || {
                    // Tag this thread for the fault plane so crash rules
                    // target trainer workers (restored on drop — the
                    // runtime thread may run other tasks afterwards).
                    let _tag = lsgd_fault::worker_tag(worker_id as u32);
                    let ctx = WorkerCtx { board, worker_id, start };
                    // Contain worker panics: one dead worker must not
                    // take down the run. `AssertUnwindSafe` is justified
                    // because every shared structure the loop touches is
                    // panic-safe by construction — snapshot guards
                    // release their counted read on drop, `GaugeHold`
                    // returns gauge bytes, and the LAU-SPC CAS is a
                    // single atomic (no partially-published state).
                    match catch_unwind(AssertUnwindSafe(|| {
                        run_worker(problem, shared, control, cfg, worker_id, &ctx)
                    })) {
                        Ok(stats) => {
                            ctx.phase(BeatPhase::Done);
                            *slot = Some(stats);
                        }
                        Err(payload) => {
                            ctx.phase(BeatPhase::Crashed);
                            lsgd_trace::count(lsgd_trace::Counter::WorkerPanic);
                            crashes
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(WorkerCrash {
                                    worker: worker_id,
                                    message: panic_message(payload),
                                });
                        }
                    }
                    // ORDERING: Relaxed — monotone countdown; the monitor
                    // only needs to eventually observe 0 (it polls every
                    // sleep slice), no data is carried through it.
                    control.alive.fetch_sub(1, Ordering::Relaxed);
                });
            }

            // ---- Monitor task (paper §V.2: halts executions at ε, flags
            // Crash on numerical instability, samples memory). ----
            scope.spawn(move || {
                let mut snapshot = vec![0.0f32; dim];
                // Heartbeat watchdog state: last observed tick per worker,
                // when it last changed, and whether the worker is currently
                // flagged as stalled (so one stall counts once, not once
                // per poll).
                let mut last_ticks = vec![0u64; threads];
                let mut last_change = vec![start; threads];
                let mut in_stall = vec![false; threads];
                loop {
                    // Sleep in small slices so worker-side crash/budget
                    // stops are reacted to promptly.
                    let slice = cfg.eval_every.min(Duration::from_millis(20));
                    let mut slept = Duration::ZERO;
                    // ORDERING: Relaxed — `stop` is an eventually-observed
                    // flag; it carries no data (workers re-check it every
                    // iteration). `alive` likewise: when every worker has
                    // exited (e.g. all crashed) there is no progress left
                    // to wait for, so stop sleeping and wrap up.
                    while slept < cfg.eval_every
                        && !control.stop.load(Ordering::Relaxed)
                        && control.alive.load(Ordering::Relaxed) > 0
                    {
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    let elapsed = start.elapsed();
                    // ORDERING: Relaxed — monotone progress tally; the
                    // monitor tolerates slightly stale counts (it re-reads
                    // next round).
                    let published = control.total_published.load(Ordering::Relaxed);

                    // Heartbeat watchdog: a worker whose tick count has
                    // not advanced for a full second (and which has not
                    // terminated) is stalled — likely blocked in grad or
                    // wedged on a protocol seam. Reads only the relaxed
                    // cells; the mailbox stays available for detail
                    // drains.
                    let now = Instant::now();
                    for w in 0..threads {
                        let ticks = board.ticks(w);
                        let phase = board.phase(w);
                        let terminal =
                            matches!(phase, BeatPhase::Done | BeatPhase::Crashed);
                        if ticks != last_ticks[w] || terminal {
                            last_ticks[w] = ticks;
                            last_change[w] = now;
                            in_stall[w] = false;
                        } else if !in_stall[w]
                            && ticks > 0
                            && now.duration_since(last_change[w]) >= STALL_WINDOW
                        {
                            in_stall[w] = true;
                            *heartbeat_stalls += 1;
                            lsgd_trace::count(lsgd_trace::Counter::HeartbeatStall);
                        }
                    }

                    let loss = {
                        let _span = lsgd_trace::span(Phase::MonitorEval);
                        shared.snapshot_into(&mut snapshot);
                        // ORDERING: Relaxed — crash flag, eventually
                        // observed.
                        if control.crashed.load(Ordering::Relaxed) {
                            f64::NAN
                        } else {
                            // A panicking eval (same user code as worker
                            // grad) must not kill the monitor — treat it
                            // like numerical instability.
                            catch_unwind(AssertUnwindSafe(|| {
                                problem.eval_loss(&snapshot, monitor_scratch)
                            }))
                            .unwrap_or(f64::NAN)
                        }
                    };
                    // Drain worker rings at monitor cadence so span volume
                    // never outgrows the fixed-capacity rings.
                    collector.sample();
                    loss_trace.push(elapsed.as_secs_f64(), loss);
                    mem_trace.push(elapsed.as_secs_f64(), gauge.live() as f64);
                    let done = tracker.observe(elapsed, loss);
                    for (i, (frac, it)) in iters_to_eps.iter_mut().enumerate() {
                        let _ = frac;
                        if it.is_none() && tracker.outcome(i).converged() {
                            *it = Some(published);
                        }
                    }
                    let budget_out = elapsed >= cfg.max_wall || published >= cfg.max_updates;
                    // ORDERING: Relaxed loads — flag checks as above
                    // (`alive == 0` means every worker already exited, so
                    // there is nothing left to monitor). SeqCst store: the
                    // final verdict; keeps the terminal stop in one total
                    // order with workers' crash/stop stores so no worker
                    // can observe a "later" state that un-stops the run.
                    if done
                        || budget_out
                        || control.stop.load(Ordering::Relaxed)
                        || control.alive.load(Ordering::Relaxed) == 0
                    {
                        control.stop.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            });
        });
    }
    for stats in stats_slots.iter().flatten() {
        merged.merge(stats);
    }

    let dump = collector.finish();
    if let Some(path) = lsgd_trace::chrome_path() {
        if !dump.is_empty() {
            let label = format!("{} m={}", cfg.algorithm.label(), threads);
            if let Err(e) = lsgd_trace::chrome::append_run(&path, &label, &dump) {
                eprintln!("lsgd_trace: failed to write {path}: {e}");
            }
        }
    }

    let wall = start.elapsed();
    let pool_peak = match &shared {
        SharedState::Leashed(s) => s.pool().outstanding_peak(),
        SharedState::Sharded(s) => s.pool_outstanding_peak(),
        _ => 0,
    };

    RunResult {
        algorithm: cfg.algorithm,
        threads,
        initial_loss,
        final_loss: loss_trace.last_value().unwrap_or(initial_loss),
        best_loss: tracker.best_loss(),
        crashed: tracker.crashed(),
        outcomes: tracker.outcomes(),
        iters_to_eps,
        loss_trace,
        mem_trace,
        staleness: merged.hists.staleness,
        tau_s: merged.hists.tau_s,
        dirty_shards: merged.hists.dirty_shards,
        phase_stats: dump.phases,
        trace_counters: dump.counters,
        published: merged.published,
        aborted: merged.aborted,
        failed_cas: merged.failed_cas,
        tc: merged.tc,
        tu: merged.tu,
        iter_time: merged.iter_time,
        wall,
        mem_peak_bytes: gauge.peak(),
        pool_outstanding_peak: pool_peak,
        mem_allocs: gauge.total_allocs(),
        mem_reuses: gauge.pool_reuses(),
        worker_crashes: crashes.into_inner().unwrap_or_else(|e| e.into_inner()),
        degraded_snapshots: merged.degraded,
        heartbeat_stalls,
    }
}

/// A worker whose heartbeat tick count stays flat this long (while not
/// terminated) is reported as stalled by the monitor's watchdog.
const STALL_WINDOW: Duration = Duration::from_secs(1);


/// Folds the freshly computed gradient into the worker's velocity buffer
/// (`v ← μ·v + g`) and returns the slice to apply. With `μ = 0` the
/// gradient passes through untouched (no velocity buffer is kept).
fn fold_momentum<'g>(grad: &'g mut [f32], velocity: &'g mut Vec<f32>, mu: f32) -> &'g [f32] {
    if mu == 0.0 {
        return grad;
    }
    if velocity.is_empty() {
        velocity.resize(grad.len(), 0.0);
    }
    for (v, &g) in velocity.iter_mut().zip(grad.iter()) {
        *v = mu * *v + g;
    }
    velocity
}

/// One worker's training loop (dispatches on the algorithm).
fn run_worker<P: Problem>(
    problem: &P,
    shared: &SharedState,
    control: &Control,
    cfg: &TrainConfig,
    worker_id: usize,
    ctx: &WorkerCtx<'_>,
) -> WorkerStats {
    let dim = problem.dim();
    let mut stats = WorkerStats::new(cfg.staleness_cap);
    // Intra-step splits (NnProblem's GEMM fan-out) execute on the same
    // work-stealing runtime that runs the m trainer workers, so scratch
    // needs no worker-count-aware sizing: total parallelism is bounded
    // by LSGD_THREADS regardless of m.
    let mut scratch = problem.scratch();
    let mut rng = SmallRng64::new(cfg.seed ^ (0x5bd1e995u64.wrapping_mul(worker_id as u64 + 1)));
    let mut grad = vec![0.0f32; dim];
    let vec_bytes = dim * std::mem::size_of::<f32>();
    // Worker-local buffers count towards the paper's memory model
    // (ASYNC/HOG hold 2m + 1 vectors: local copy + local gradient per
    // thread, plus the shared one; Leashed holds the gradient only, its
    // working vectors come from the recycling pool). `GaugeHold` returns
    // the bytes even when the loop unwinds from a contained panic.
    let _hold = match shared {
        SharedState::Leashed(s) => {
            GaugeHold::new(Arc::clone(s.pool().gauge()), vec_bytes) // local gradient
        }
        SharedState::Locked(p) => {
            // local copy + local gradient
            let _hold = GaugeHold::new(Arc::clone(p.gauge()), 2 * vec_bytes);
            let mut local = vec![0.0f32; dim];
            return run_locked_worker(
                problem, p, control, cfg, &mut scratch, &mut rng, &mut grad, &mut local,
                stats, ctx,
            );
        }
        SharedState::Hogwild(p) => {
            let _hold = GaugeHold::new(Arc::clone(p.gauge()), 2 * vec_bytes);
            let mut local = vec![0.0f32; dim];
            return run_hogwild_worker(
                problem, p, control, cfg, &mut scratch, &mut rng, &mut grad, &mut local,
                stats, ctx,
            );
        }
        SharedState::Sharded(s) => {
            // Sharded workers gather into a local theta copy (the shards
            // are not contiguous in memory), so like ASYNC/HOG they hold
            // local copy + local gradient.
            let _hold = GaugeHold::new(Arc::clone(s.gauge()), 2 * vec_bytes);
            let mut local = vec![0.0f32; dim];
            return run_sharded_worker(
                problem, s, control, cfg, &mut scratch, &mut rng, &mut grad, &mut local,
                stats, ctx,
            );
        }
    };
    // ---- Leashed-SGD worker (Algorithm 3 thread body). ----
    let Algorithm::Leashed { persistence } = cfg.algorithm else {
        unreachable!("leashed shared state implies leashed algorithm");
    };
    let SharedState::Leashed(s) = shared else {
        unreachable!();
    };
    let mut sparsify_scratch = Vec::new();
    let mut velocity = Vec::new();
    let mut step: u64 = 0;
    // ORDERING: Relaxed — stop is an eventually-observed flag; the
    // worker re-polls it every iteration and carries no data through it.
    while !control.stop.load(Ordering::Relaxed) {
        ctx.beat(BeatPhase::Snapshot, step);
        lsgd_fault::worker_step(step);
        step += 1;
        let iter_start = Instant::now();
        let t0;
        let loss;
        {
            let guard = {
                let _span = lsgd_trace::span(Phase::SnapshotRead);
                s.latest()
            };
            t0 = guard.seq();
            ctx.phase(BeatPhase::Grad);
            let tc_start = Instant::now();
            let _span = lsgd_trace::span(Phase::GradCompute);
            // Gradient computed directly from the published memory — the
            // zero-copy read of paper P3.
            loss = problem.grad(guard.theta(), &mut grad, &mut scratch, &mut rng);
            stats.tc.record(tc_start.elapsed().as_secs_f64());
        }
        if !loss.is_finite() {
            // ORDERING: SeqCst pair — crash must be visible no later
            // than stop in the single total order, so the monitor that
            // sees stop cannot miss the crash verdict behind it.
            control.crashed.store(true, Ordering::SeqCst);
            // ORDERING: SeqCst — see above.
            control.stop.store(true, Ordering::SeqCst);
            break;
        }
        if let Some(frac) = cfg.sparsify {
            crate::sparsify::sparsify_top_frac(&mut grad, frac, &mut sparsify_scratch);
        }
        let eta = cfg
            .eta_policy
            .effective(cfg.eta, s.current_seq().saturating_sub(t0));
        let direction = fold_momentum(&mut grad, &mut velocity, cfg.momentum);
        ctx.phase(BeatPhase::Publish);
        let tu_stats = &mut stats.tu;
        let outcome = {
            let _span = lsgd_trace::span(Phase::Publish);
            s.publish_update(direction, eta, persistence, |secs| {
                tu_stats.record(secs);
            })
        };
        match outcome {
            PublishOutcome::Published {
                t_new,
                t_first_base,
                failed_cas,
                ..
            } => {
                stats.published += 1;
                stats.failed_cas += failed_cas as u64;
                // τ: concurrent updates between the read (t0) and this
                // update taking effect (t_new labels position t_new-1+1).
                stats.hists.staleness.record(t_new - 1 - t0);
                // τs: competitors that won the LAU-SPC race after this
                // update was first ready to publish (§IV.2); exactly 0 for
                // every published update when Tp = 0.
                stats.hists.tau_s.record(t_new - 1 - t_first_base);
                // ORDERING: Relaxed — monotone progress tally; exact
                // totals are only read after the scope join.
                control.total_published.fetch_add(1, Ordering::Relaxed);
            }
            PublishOutcome::Aborted { failed_cas } => {
                stats.aborted += 1;
                stats.failed_cas += failed_cas as u64;
            }
        }
        stats.iter_time.record(iter_start.elapsed().as_secs_f64());
    }
    stats
}

/// Per-worker bound on the consistent snapshot's validate-and-retry loop:
/// after this many failed double-collects the worker proceeds with its
/// last (possibly mixed-version) view — SGD tolerates the relaxation, and
/// a bounded loop keeps read latency predictable under heavy publishing.
const WORKER_SNAPSHOT_RETRIES: u32 = 32;

/// Worker loop for sharded Leashed-SGD: multi-shard counted read
/// (gathered into a local copy), gradient, and a dirty-shards-only
/// publication — sparse `(index, value)` pairs when the problem provides
/// them ([`Problem::grad_sparse`]) or top-k sparsification is on, dense
/// per-shard sub-gradients otherwise.
#[allow(clippy::too_many_arguments)]
fn run_sharded_worker<P: Problem>(
    problem: &P,
    shared: &ShardedShared,
    control: &Control,
    cfg: &TrainConfig,
    scratch: &mut P::Scratch,
    rng: &mut SmallRng64,
    grad: &mut [f32],
    local: &mut [f32],
    mut stats: WorkerStats,
    ctx: &WorkerCtx<'_>,
) -> WorkerStats {
    let Algorithm::ShardedLeashed {
        persistence,
        snapshot: snapshot_mode,
        ..
    } = cfg.algorithm
    else {
        unreachable!("sharded shared state implies sharded algorithm");
    };
    let mut base_seqs: Vec<u64> = Vec::with_capacity(shared.num_shards());
    let mut pairs: Vec<(u32, f32)> = Vec::new();
    let mut sparsify_scratch = Vec::new();
    let mut velocity: Vec<f32> = Vec::new();
    // The sparse-native path bypasses the dense gradient buffer entirely;
    // momentum needs a dense velocity fold, so it forces the dense path.
    let sparse_native_ok = cfg.momentum == 0.0 && cfg.sparsify.is_none();
    let mut step: u64 = 0;
    // ORDERING: Relaxed — stop is an eventually-observed flag; the
    // worker re-polls it every iteration and carries no data through it.
    while !control.stop.load(Ordering::Relaxed) {
        ctx.beat(BeatPhase::Snapshot, step);
        lsgd_fault::worker_step(step);
        step += 1;
        let iter_start = Instant::now();
        {
            let _span = lsgd_trace::span(Phase::SnapshotRead);
            let snap = shared.snapshot(snapshot_mode, WORKER_SNAPSHOT_RETRIES);
            if snap.is_degraded() {
                stats.degraded += 1;
            }
            base_seqs.clear();
            base_seqs.extend_from_slice(snap.seqs());
            snap.gather_into(local);
        }
        ctx.phase(BeatPhase::Grad);
        let tc_start = Instant::now();
        let mut sparse_ready = false;
        let mut loss = f32::NAN;
        {
            let _span = lsgd_trace::span(Phase::GradCompute);
            if sparse_native_ok {
                if let Some(l) = problem.grad_sparse(local, &mut pairs, scratch, rng) {
                    loss = l;
                    sparse_ready = true;
                }
            }
            if !sparse_ready {
                loss = problem.grad(local, grad, scratch, rng);
            }
        }
        stats.tc.record(tc_start.elapsed().as_secs_f64());
        if !loss.is_finite() {
            // ORDERING: SeqCst pair — crash must be visible no later
            // than stop in the single total order, so the monitor that
            // sees stop cannot miss the crash verdict behind it.
            control.crashed.store(true, Ordering::SeqCst);
            // ORDERING: SeqCst — see above.
            control.stop.store(true, Ordering::SeqCst);
            break;
        }
        // τ estimate in *update* units (matching the unsharded path): the
        // max per-shard seq advance since our read. Each concurrent update
        // bumps every shard it touches by exactly 1, so the max over
        // shards counts concurrent updates (exactly for dense updates,
        // a lower bound for sparse ones) — summing shard seqs would
        // instead count shard-publications and inflate τ by up to S.
        let tau_est = (0..shared.num_shards())
            .map(|s| shared.shard(s).current_seq().saturating_sub(base_seqs[s]))
            .max()
            .unwrap_or(0);
        let eta = cfg.eta_policy.effective(cfg.eta, tau_est);
        ctx.phase(BeatPhase::Publish);
        let tu_stats = &mut stats.tu;
        let outcome = {
            let _span = lsgd_trace::span(Phase::Publish);
            if sparse_ready {
                shared.publish_sparse(&pairs, eta, persistence, Some(&base_seqs), |secs| {
                    tu_stats.record(secs)
                })
            } else if cfg.momentum == 0.0 {
                if let Some(frac) = cfg.sparsify {
                    // Index extraction feeds the dirty-shard path directly —
                    // no zeroing pass, no dense re-scan at publish time.
                    crate::sparsify::sparsify_top_frac_indices(
                        grad,
                        frac,
                        &mut sparsify_scratch,
                        &mut pairs,
                    );
                    shared.publish_sparse(&pairs, eta, persistence, Some(&base_seqs), |secs| {
                        tu_stats.record(secs)
                    })
                } else {
                    shared.publish_dense(grad, eta, persistence, Some(&base_seqs), |secs| {
                        tu_stats.record(secs)
                    })
                }
            } else {
                if let Some(frac) = cfg.sparsify {
                    crate::sparsify::sparsify_top_frac(grad, frac, &mut sparsify_scratch);
                }
                let direction = fold_momentum(grad, &mut velocity, cfg.momentum);
                shared.publish_dense(direction, eta, persistence, Some(&base_seqs), |secs| {
                    tu_stats.record(secs)
                })
            }
        };
        // An update counts as published when at least one of its dirty
        // shards landed; fully abandoned updates count as aborted. An
        // exactly-zero gradient (dirty = 0) is a successful no-op — the
        // unsharded path publishes it as one; counting it here keeps the
        // max_updates budget advancing (and the run terminating) when
        // gradients vanish at convergence.
        if outcome.published > 0 || outcome.dirty == 0 {
            stats.published += 1;
            stats.hists.staleness.record(outcome.tau_max);
            stats.hists.tau_s.record(outcome.tau_s_max);
            stats.hists.dirty_shards.record(outcome.dirty as u64);
            // ORDERING: Relaxed — monotone progress tally; see above.
            control.total_published.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.aborted += 1;
        }
        stats.failed_cas += outcome.failed_cas as u64;
        stats.iter_time.record(iter_start.elapsed().as_secs_f64());
    }
    stats
}

/// Worker loop for SEQ / lock-based ASYNC (Algorithm 2 thread body).
#[allow(clippy::too_many_arguments)]
fn run_locked_worker<P: Problem>(
    problem: &P,
    shared: &LockedParams,
    control: &Control,
    cfg: &TrainConfig,
    scratch: &mut P::Scratch,
    rng: &mut SmallRng64,
    grad: &mut [f32],
    local: &mut [f32],
    mut stats: WorkerStats,
    ctx: &WorkerCtx<'_>,
) -> WorkerStats {
    let mut velocity: Vec<f32> = Vec::new();
    let mut sparsify_scratch = Vec::new();
    let mut step: u64 = 0;
    // ORDERING: Relaxed — stop is an eventually-observed flag; the
    // worker re-polls it every iteration and carries no data through it.
    while !control.stop.load(Ordering::Relaxed) {
        ctx.beat(BeatPhase::Snapshot, step);
        lsgd_fault::worker_step(step);
        step += 1;
        let iter_start = Instant::now();
        let t0 = {
            let _span = lsgd_trace::span(Phase::SnapshotRead);
            shared.read_into(local) // lock, copy, unlock
        };
        ctx.phase(BeatPhase::Grad);
        let tc_start = Instant::now();
        let loss = {
            let _span = lsgd_trace::span(Phase::GradCompute);
            problem.grad(local, grad, scratch, rng)
        };
        stats.tc.record(tc_start.elapsed().as_secs_f64());
        if !loss.is_finite() {
            // ORDERING: SeqCst pair — crash must be visible no later
            // than stop in the single total order, so the monitor that
            // sees stop cannot miss the crash verdict behind it.
            control.crashed.store(true, Ordering::SeqCst);
            // ORDERING: SeqCst — see above.
            control.stop.store(true, Ordering::SeqCst);
            break;
        }
        if let Some(frac) = cfg.sparsify {
            crate::sparsify::sparsify_top_frac(grad, frac, &mut sparsify_scratch);
        }
        let eta = cfg
            .eta_policy
            .effective(cfg.eta, shared.current_seq().saturating_sub(t0));
        let direction = fold_momentum(grad, &mut velocity, cfg.momentum);
        ctx.phase(BeatPhase::Publish);
        let tu_start = Instant::now();
        let t_pub = {
            let _span = lsgd_trace::span(Phase::Publish);
            shared.update(direction, eta) // lock, axpy, unlock
        };
        stats.tu.record(tu_start.elapsed().as_secs_f64());
        stats.hists.staleness.record(t_pub - 1 - t0);
        stats.published += 1;
        // ORDERING: Relaxed — monotone progress tally; see above.
        control.total_published.fetch_add(1, Ordering::Relaxed);
        stats.iter_time.record(iter_start.elapsed().as_secs_f64());
    }
    stats
}

/// Worker loop for HOGWILD! (Algorithm 4 thread body).
#[allow(clippy::too_many_arguments)]
fn run_hogwild_worker<P: Problem>(
    problem: &P,
    shared: &HogwildParams,
    control: &Control,
    cfg: &TrainConfig,
    scratch: &mut P::Scratch,
    rng: &mut SmallRng64,
    grad: &mut [f32],
    local: &mut [f32],
    mut stats: WorkerStats,
    ctx: &WorkerCtx<'_>,
) -> WorkerStats {
    let mut velocity: Vec<f32> = Vec::new();
    let mut sparsify_scratch = Vec::new();
    let mut step: u64 = 0;
    // ORDERING: Relaxed — stop is an eventually-observed flag; the
    // worker re-polls it every iteration and carries no data through it.
    while !control.stop.load(Ordering::Relaxed) {
        ctx.beat(BeatPhase::Snapshot, step);
        lsgd_fault::worker_step(step);
        step += 1;
        let iter_start = Instant::now();
        let t0 = {
            let _span = lsgd_trace::span(Phase::SnapshotRead);
            shared.read_into(local) // unsynchronised copy
        };
        ctx.phase(BeatPhase::Grad);
        let tc_start = Instant::now();
        let loss = {
            let _span = lsgd_trace::span(Phase::GradCompute);
            problem.grad(local, grad, scratch, rng)
        };
        stats.tc.record(tc_start.elapsed().as_secs_f64());
        if !loss.is_finite() {
            // ORDERING: SeqCst pair — crash must be visible no later
            // than stop in the single total order, so the monitor that
            // sees stop cannot miss the crash verdict behind it.
            control.crashed.store(true, Ordering::SeqCst);
            // ORDERING: SeqCst — see above.
            control.stop.store(true, Ordering::SeqCst);
            break;
        }
        if let Some(frac) = cfg.sparsify {
            crate::sparsify::sparsify_top_frac(grad, frac, &mut sparsify_scratch);
        }
        let eta = cfg
            .eta_policy
            .effective(cfg.eta, shared.current_seq().saturating_sub(t0));
        let direction = fold_momentum(grad, &mut velocity, cfg.momentum);
        ctx.phase(BeatPhase::Publish);
        let tu_start = Instant::now();
        let t_pub = {
            let _span = lsgd_trace::span(Phase::Publish);
            shared.update(direction, eta) // racy component updates
        };
        stats.tu.record(tu_start.elapsed().as_secs_f64());
        stats.hists.staleness.record(t_pub - 1 - t0);
        stats.published += 1;
        // ORDERING: Relaxed — monotone progress tally; see above.
        control.total_published.fetch_add(1, Ordering::Relaxed);
        stats.iter_time.record(iter_start.elapsed().as_secs_f64());
    }
    stats
}
