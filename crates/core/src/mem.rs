//! Memory accounting for the Fig. 10 experiments.
//!
//! The paper samples process RSS via `ps` at second granularity. We track
//! the quantity it actually reasons about — bytes held by ParameterVector
//! buffers and worker-local gradient/copy buffers — exactly, with atomic
//! live/peak counters that every allocation site in this crate reports to.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Live/peak byte accounting shared by one training run.
#[derive(Debug, Default)]
pub struct MemoryGauge {
    live: AtomicUsize,
    peak: AtomicUsize,
    total_allocs: AtomicU64,
    pool_reuses: AtomicU64,
}

impl MemoryGauge {
    /// Fresh gauge with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `bytes` of newly allocated buffer space.
    pub fn add(&self, bytes: usize) {
        // ORDERING: Relaxed throughout this gauge — pure statistics
        // counters that publish no data; exactness is only asserted
        // after joins, which synchronise. Same rationale at every site.
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        // ORDERING: Relaxed — see above.
        self.total_allocs.fetch_add(1, Ordering::Relaxed);
        // Lock-free max update.
        // ORDERING: Relaxed — see above; the CAS loop only ratchets up.
        let mut peak = self.peak.load(Ordering::Relaxed);
        while live > peak {
            // ORDERING: Relaxed — see above.
            match self.peak.compare_exchange_weak(
                peak,
                live,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    /// Registers release of `bytes` previously added.
    pub fn sub(&self, bytes: usize) {
        // ORDERING: Relaxed — statistics only; see `add`.
        let prev = self.live.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "memory gauge underflow");
    }

    /// Notes a buffer handed out from a recycling pool (no new allocation).
    pub fn note_reuse(&self) {
        // ORDERING: Relaxed — statistics only; see `add`.
        self.pool_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Currently live bytes.
    pub fn live(&self) -> usize {
        // ORDERING: Relaxed — statistics only; see `add`.
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of live bytes.
    pub fn peak(&self) -> usize {
        // ORDERING: Relaxed — statistics only; see `add`.
        self.peak.load(Ordering::Relaxed)
    }

    /// Number of fresh allocations.
    pub fn total_allocs(&self) -> u64 {
        // ORDERING: Relaxed — statistics only; see `add`.
        self.total_allocs.load(Ordering::Relaxed)
    }

    /// Number of pool reuses (recycled buffers).
    pub fn pool_reuses(&self) -> u64 {
        // ORDERING: Relaxed — statistics only; see `add`.
        self.pool_reuses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_sub_tracks_live() {
        let g = MemoryGauge::new();
        g.add(100);
        g.add(50);
        assert_eq!(g.live(), 150);
        g.sub(100);
        assert_eq!(g.live(), 50);
        assert_eq!(g.peak(), 150);
    }

    #[test]
    fn peak_is_monotone() {
        let g = MemoryGauge::new();
        g.add(10);
        g.sub(10);
        g.add(5);
        assert_eq!(g.peak(), 10);
        assert_eq!(g.live(), 5);
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        let g = Arc::new(MemoryGauge::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        g.add(8);
                        g.sub(8);
                    }
                });
            }
        });
        assert_eq!(g.live(), 0);
        assert!(g.peak() >= 8);
        assert!(g.peak() <= 32, "peak {} cannot exceed 4 threads × 8B", g.peak());
        assert_eq!(g.total_allocs(), 40_000);
    }

    #[test]
    fn reuse_counter() {
        let g = MemoryGauge::new();
        g.note_reuse();
        g.note_reuse();
        assert_eq!(g.pool_reuses(), 2);
    }
}
