//! Memory accounting for the Fig. 10 experiments.
//!
//! The paper samples process RSS via `ps` at second granularity. We track
//! the quantity it actually reasons about — bytes held by ParameterVector
//! buffers and worker-local gradient/copy buffers — exactly, with atomic
//! live/peak counters that every allocation site in this crate reports to.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Live/peak byte accounting shared by one training run.
///
/// Optionally carries a soft **cap** ([`set_cap`](Self::set_cap)): the
/// gauge itself never rejects anything — it only answers
/// [`would_exceed`](Self::would_exceed), which the [`BufferPool`]
/// (crate::pool) consults to back off (and eventually force through)
/// under memory pressure instead of allocating unboundedly.
#[derive(Debug, Default)]
pub struct MemoryGauge {
    live: AtomicUsize,
    peak: AtomicUsize,
    total_allocs: AtomicU64,
    pool_reuses: AtomicU64,
    /// Soft cap in bytes; 0 = uncapped.
    cap: AtomicUsize,
}

impl MemoryGauge {
    /// Fresh gauge with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `bytes` of newly allocated buffer space.
    pub fn add(&self, bytes: usize) {
        // ORDERING: Relaxed throughout this gauge — pure statistics
        // counters that publish no data; exactness is only asserted
        // after joins, which synchronise. Same rationale at every site.
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        // ORDERING: Relaxed — see above.
        self.total_allocs.fetch_add(1, Ordering::Relaxed);
        // Lock-free max update.
        // ORDERING: Relaxed — see above; the CAS loop only ratchets up.
        let mut peak = self.peak.load(Ordering::Relaxed);
        while live > peak {
            // ORDERING: Relaxed — see above.
            match self.peak.compare_exchange_weak(
                peak,
                live,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    /// Registers release of `bytes` previously added.
    pub fn sub(&self, bytes: usize) {
        // ORDERING: Relaxed — statistics only; see `add`.
        let prev = self.live.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "memory gauge underflow");
    }

    /// Notes a buffer handed out from a recycling pool (no new allocation).
    pub fn note_reuse(&self) {
        // ORDERING: Relaxed — statistics only; see `add`.
        self.pool_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Currently live bytes.
    pub fn live(&self) -> usize {
        // ORDERING: Relaxed — statistics only; see `add`.
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of live bytes.
    pub fn peak(&self) -> usize {
        // ORDERING: Relaxed — statistics only; see `add`.
        self.peak.load(Ordering::Relaxed)
    }

    /// Number of fresh allocations.
    pub fn total_allocs(&self) -> u64 {
        // ORDERING: Relaxed — statistics only; see `add`.
        self.total_allocs.load(Ordering::Relaxed)
    }

    /// Number of pool reuses (recycled buffers).
    pub fn pool_reuses(&self) -> u64 {
        // ORDERING: Relaxed — statistics only; see `add`.
        self.pool_reuses.load(Ordering::Relaxed)
    }

    /// Sets the soft cap in bytes (`None` = uncapped). Advisory: the
    /// gauge keeps counting past it; consumers decide how to react.
    pub fn set_cap(&self, cap: Option<usize>) {
        // 0 is the "uncapped" sentinel; an explicit 0-byte cap (which
        // every buffer exceeds) is kept meaningful as a 1-byte cap.
        let raw = match cap {
            None => 0,
            Some(0) => 1,
            Some(c) => c,
        };
        // ORDERING: Relaxed — the cap is a configuration value read by
        // the same advisory pressure checks as the statistics; a stale
        // read only mistimes backoff by one allocation.
        self.cap.store(raw, Ordering::Relaxed);
    }

    /// The soft cap, if one is set.
    pub fn cap(&self) -> Option<usize> {
        // ORDERING: Relaxed — see `set_cap`.
        match self.cap.load(Ordering::Relaxed) {
            0 => None,
            c => Some(c),
        }
    }

    /// Whether allocating `bytes` more would push `live` past the cap.
    /// Always `false` when uncapped. Advisory — the answer can be stale
    /// by the time the caller acts on it, which the pool's
    /// backoff-then-force policy tolerates by design.
    pub fn would_exceed(&self, bytes: usize) -> bool {
        match self.cap() {
            None => false,
            Some(cap) => self.live().saturating_add(bytes) > cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_sub_tracks_live() {
        let g = MemoryGauge::new();
        g.add(100);
        g.add(50);
        assert_eq!(g.live(), 150);
        g.sub(100);
        assert_eq!(g.live(), 50);
        assert_eq!(g.peak(), 150);
    }

    #[test]
    fn peak_is_monotone() {
        let g = MemoryGauge::new();
        g.add(10);
        g.sub(10);
        g.add(5);
        assert_eq!(g.peak(), 10);
        assert_eq!(g.live(), 5);
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        let g = Arc::new(MemoryGauge::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        g.add(8);
                        g.sub(8);
                    }
                });
            }
        });
        assert_eq!(g.live(), 0);
        assert!(g.peak() >= 8);
        assert!(g.peak() <= 32, "peak {} cannot exceed 4 threads × 8B", g.peak());
        assert_eq!(g.total_allocs(), 40_000);
    }

    #[test]
    fn reuse_counter() {
        let g = MemoryGauge::new();
        g.note_reuse();
        g.note_reuse();
        assert_eq!(g.pool_reuses(), 2);
    }

    #[test]
    fn cap_is_advisory_and_optional() {
        let g = MemoryGauge::new();
        assert_eq!(g.cap(), None);
        assert!(!g.would_exceed(usize::MAX), "uncapped never exceeds");

        g.set_cap(Some(100));
        assert_eq!(g.cap(), Some(100));
        g.add(80);
        assert!(!g.would_exceed(20));
        assert!(g.would_exceed(21));
        // The gauge itself never rejects: counting continues past the cap.
        g.add(50);
        assert_eq!(g.live(), 130);
        assert!(g.would_exceed(1));

        g.set_cap(None);
        assert!(!g.would_exceed(1));
        // An explicit 0-byte cap stays a cap (everything exceeds it).
        g.set_cap(Some(0));
        assert!(g.cap().is_some());
        assert!(g.would_exceed(1));
    }
}
