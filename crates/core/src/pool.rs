//! Lock-free recycling pool for `theta` buffers.
//!
//! Leashed-SGD allocates a fresh ParameterVector for every update and
//! relies on recycling to bound memory (paper §III P2, Lemma 2). This pool
//! provides the recycling: buffers released by `safe_delete` go onto a
//! lock-free free list and are handed back out to subsequent allocations,
//! so steady-state execution performs no heap allocation at all.
//!
//! The free list is `lsgd_sync::SegQueue` — CAS-only push/pop — so the
//! recycle fast path (`acquire` hitting the free list, `release` in
//! recycling mode) takes no lock; with PR 2 the end-to-end hot path is
//! genuinely lock-free, as the paper claims. Cross-thread buffer reuse
//! is data-race-free because the queue guarantees that a `push(addr)`
//! happens-before the `pop()` returning `addr` (release/acquire on the
//! slot state; see `lsgd_sync::queue`'s memory-ordering contract), so
//! the previous owner's last writes to the buffer are visible before
//! the next owner's first writes.
//!
//! Buffers are fixed-dimension `d` `f32` arrays, passed around as raw
//! pointers because ownership moves through the lock-free ParameterVector
//! protocol rather than through Rust scopes. The pool itself retains
//! logical ownership of every buffer it ever created and frees them all on
//! drop, so nothing leaks even if callers lose track of outstanding
//! buffers (as happens to the final published vector of a run).
//!
//! For the `ablation_recycling` experiment the pool can be built with
//! recycling disabled ([`BufferPool::new_with_recycling`]): every release
//! then frees eagerly and every acquire heap-allocates — the behaviour of
//! a naive implementation of Algorithm 3's `new ParamVector()`.

use crate::mem::MemoryGauge;
use lsgd_check::annotate;
use lsgd_sync::SegQueue;
use parking_lot::Mutex;
use std::collections::HashSet;
// Deliberately std (not the lsgd_check shims): `outstanding` and
// `outstanding_peak` are diagnostic tallies outside the verified
// protocol; keeping them off the model scheduler keeps model-state
// space focused on the real handoff atomics. The `registry` Mutex is
// likewise model-safe as plain parking_lot: it is only taken around
// straight-line code with no shimmed operation (= no model schedule
// point) inside the critical section, so a model thread can never be
// descheduled while holding it.
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A recycling allocator of `f32` buffers of one fixed dimension.
pub struct BufferPool {
    dim: usize,
    recycle: bool,
    free: SegQueue<usize>,
    /// Every currently-allocated buffer (addresses), for final
    /// reclamation and for eager-free bookkeeping. Locked only on fresh
    /// allocation / eager free — never on the recycled fast path.
    registry: Mutex<HashSet<usize>>,
    outstanding: AtomicUsize,
    outstanding_peak: AtomicUsize,
    gauge: Arc<MemoryGauge>,
}

impl BufferPool {
    /// Creates a recycling pool of `dim`-length buffers reporting to
    /// `gauge`.
    pub fn new(dim: usize, gauge: Arc<MemoryGauge>) -> Self {
        Self::new_with_recycling(dim, gauge, true)
    }

    /// Creates a pool with recycling switched on or off (off = eager
    /// free + fresh allocation each time; used by the recycling ablation).
    pub fn new_with_recycling(dim: usize, gauge: Arc<MemoryGauge>, recycle: bool) -> Self {
        assert!(dim > 0, "buffer dimension must be positive");
        BufferPool {
            dim,
            recycle,
            free: SegQueue::new(),
            registry: Mutex::new(HashSet::new()),
            outstanding: AtomicUsize::new(0),
            outstanding_peak: AtomicUsize::new(0),
            gauge,
        }
    }

    /// Buffer dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bytes per buffer.
    pub fn buf_bytes(&self) -> usize {
        self.dim * std::mem::size_of::<f32>()
    }

    /// Whether recycling is enabled.
    pub fn recycling(&self) -> bool {
        self.recycle
    }

    /// Acquires a buffer (recycled when possible). Contents are
    /// unspecified; callers always fully overwrite.
    ///
    /// Under memory pressure — the gauge's soft cap would be exceeded,
    /// or an injected `oom:` fault fires — the slow path briefly polls
    /// the free list for a recyclable buffer before allocating anyway.
    /// The wait is strictly bounded: a worker may be holding the very
    /// buffer the cap is waiting for, so blocking here indefinitely
    /// could deadlock the protocol. Waits and forced allocations are
    /// counted (`pool.pressure_wait` / `pool.pressure_forced`).
    pub fn acquire(&self) -> *mut f32 {
        // Injection seam: an armed `stall:acquire` rule fires here.
        lsgd_fault::point(lsgd_fault::Site::PoolAcquire);
        let ptr = if let Some(addr) = self.free.pop() {
            // Ordering: the releasing thread's writes to *addr are
            // visible here via the queue's push→pop release/acquire
            // edge; no extra fence is needed before handing the buffer
            // to a new owner. The model checker verifies exactly this:
            // a recycled buffer keeps its region identity (no re-fresh
            // here), so the next owner's writes race with the previous
            // owner's accesses unless the queue edge really orders them.
            self.gauge.note_reuse();
            addr as *mut f32
        } else {
            self.alloc_fresh()
        };
        // ORDERING: Relaxed — `outstanding`/`outstanding_peak` are
        // diagnostic tallies that publish nothing; cross-thread exactness
        // is only asserted after a `thread::scope` join, which is itself
        // a synchronisation point. Buffer handoff never reads them.
        let out = self.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        // ORDERING: Relaxed — see above; the peak CAS loop tolerates any
        // interleaving and only ever ratchets upward.
        let mut peak = self.outstanding_peak.load(Ordering::Relaxed);
        while out > peak {
            // ORDERING: Relaxed — see above.
            match self.outstanding_peak.compare_exchange_weak(
                peak,
                out,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
        ptr
    }

    /// Empty-free-list slow path: allocate fresh, with the bounded
    /// pressure wait described on [`acquire`](Self::acquire).
    fn alloc_fresh(&self) -> *mut f32 {
        // How many free-list polls a pressured allocation performs
        // before forcing through: a few cache-hot spins, then scheduler
        // yields. Worst case is a handful of microseconds — liveness
        // always beats the (advisory) cap.
        const PRESSURE_POLLS: usize = 64;
        const PRESSURE_SPINS: usize = 8;
        if self.gauge.would_exceed(self.buf_bytes()) || lsgd_fault::oom_on_alloc() {
            lsgd_trace::count(lsgd_trace::Counter::PoolPressureWait);
            for poll in 0..PRESSURE_POLLS {
                if let Some(addr) = self.free.pop() {
                    // Same push→pop edge as the fast path (see `acquire`).
                    self.gauge.note_reuse();
                    return addr as *mut f32;
                }
                if poll < PRESSURE_SPINS {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            lsgd_trace::count(lsgd_trace::Counter::PoolPressureForced);
        }
        let boxed: Box<[f32]> = vec![0.0f32; self.dim].into_boxed_slice();
        let ptr = Box::into_raw(boxed) as *mut f32;
        // Model checker: a genuinely new region; tracked until the
        // pool retires it (eager free or pool drop).
        annotate::fresh(ptr as usize, self.buf_bytes());
        self.gauge.add(self.buf_bytes());
        self.registry.lock().insert(ptr as usize);
        ptr
    }

    /// Returns a buffer: to the free list (recycling mode) or to the heap
    /// (eager mode).
    ///
    /// # Safety
    /// `ptr` must have been produced by [`BufferPool::acquire`] on this
    /// pool and must not be accessed after release.
    pub unsafe fn release(&self, ptr: *mut f32) {
        debug_assert!(!ptr.is_null());
        // ORDERING: Relaxed — diagnostic tally; see `acquire`.
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        if self.recycle {
            // The queue's push is a release operation on the slot that
            // carries `ptr`, so this thread's final writes to the buffer
            // happen-before the next `acquire` that pops it (see the
            // module docs). The Relaxed counter above rides along: it
            // orders nothing and needs to order nothing.
            self.free.push(ptr as usize);
        } else {
            let removed = self.registry.lock().remove(&(ptr as usize));
            debug_assert!(removed, "released pointer not owned by this pool");
            // Model checker: eager mode really frees — close the region
            // so any straggling access is a use-after-free report.
            annotate::retire(ptr as usize, self.buf_bytes());
            let slice: *mut [f32] = std::ptr::slice_from_raw_parts_mut(ptr, self.dim);
            drop(Box::from_raw(slice));
            self.gauge.sub(self.buf_bytes());
        }
    }

    /// Buffers currently held by callers (not on the free list).
    pub fn outstanding(&self) -> usize {
        // ORDERING: Relaxed — diagnostic; exact only after a join.
        self.outstanding.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently outstanding buffers — the quantity
    /// Lemma 2 bounds by `3m`.
    pub fn outstanding_peak(&self) -> usize {
        // ORDERING: Relaxed — diagnostic; exact only after a join.
        self.outstanding_peak.load(Ordering::Relaxed)
    }

    /// The memory gauge this pool reports to.
    pub fn gauge(&self) -> &Arc<MemoryGauge> {
        &self.gauge
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Reclaim every buffer the pool still owns, whether or not it was
        // returned — the pool outlives all users (it is dropped only after
        // the training scope joins all workers). The free list holds a
        // subset of the registry, so draining the registry frees
        // everything exactly once.
        let registry = std::mem::take(&mut *self.registry.lock());
        for addr in registry {
            let ptr = addr as *mut f32;
            // Model checker: close the region (post-join, so no recorded
            // access can be concurrent with this free).
            annotate::retire(addr, self.buf_bytes());
            // SAFETY: allocated by `acquire` via Box<[f32]> of len dim and
            // not yet freed (eager frees remove themselves from the
            // registry).
            unsafe {
                let slice: *mut [f32] = std::ptr::slice_from_raw_parts_mut(ptr, self.dim);
                drop(Box::from_raw(slice));
            }
            self.gauge.sub(self.buf_bytes());
        }
    }
}

// SAFETY: the queues store plain addresses; buffer ownership transfer is
// governed by the ParameterVector protocol (see paramvec.rs safety notes).
unsafe impl Send for BufferPool {}
unsafe impl Sync for BufferPool {}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(dim: usize) -> BufferPool {
        BufferPool::new(dim, Arc::new(MemoryGauge::new()))
    }

    #[test]
    fn acquire_allocates_then_recycles() {
        let p = pool(64);
        let a = p.acquire();
        assert_eq!(p.gauge().total_allocs(), 1);
        unsafe { p.release(a) };
        let b = p.acquire();
        assert_eq!(b, a, "freed buffer should be recycled");
        assert_eq!(p.gauge().total_allocs(), 1);
        assert_eq!(p.gauge().pool_reuses(), 1);
        unsafe { p.release(b) };
    }

    #[test]
    fn outstanding_and_peak_counters() {
        let p = pool(8);
        let a = p.acquire();
        let b = p.acquire();
        assert_eq!(p.outstanding(), 2);
        unsafe { p.release(a) };
        assert_eq!(p.outstanding(), 1);
        assert_eq!(p.outstanding_peak(), 2);
        unsafe { p.release(b) };
        assert_eq!(p.outstanding(), 0);
    }

    #[test]
    fn gauge_counts_bytes() {
        let g = Arc::new(MemoryGauge::new());
        let p = BufferPool::new(100, Arc::clone(&g));
        let a = p.acquire();
        assert_eq!(g.live(), 400);
        let b = p.acquire();
        assert_eq!(g.live(), 800);
        unsafe {
            p.release(a);
            p.release(b);
        }
        // Released buffers stay owned by the pool until drop.
        assert_eq!(g.live(), 800);
        drop(p);
        assert_eq!(g.live(), 0);
    }

    #[test]
    fn drop_reclaims_outstanding_buffers_too() {
        let g = Arc::new(MemoryGauge::new());
        {
            let p = BufferPool::new(10, Arc::clone(&g));
            let _leaked_by_caller = p.acquire();
            assert_eq!(g.live(), 40);
        }
        assert_eq!(g.live(), 0, "pool drop must free unreturned buffers");
    }

    #[test]
    fn no_recycle_mode_frees_eagerly() {
        let g = Arc::new(MemoryGauge::new());
        let p = BufferPool::new_with_recycling(16, Arc::clone(&g), false);
        assert!(!p.recycling());
        let a = p.acquire();
        assert_eq!(g.live(), 64);
        unsafe { p.release(a) };
        assert_eq!(g.live(), 0, "eager mode frees on release");
        let b = p.acquire();
        assert_eq!(g.total_allocs(), 2, "no reuse in eager mode");
        assert_eq!(g.pool_reuses(), 0);
        unsafe { p.release(b) };
        drop(p);
        assert_eq!(g.live(), 0);
    }

    #[test]
    fn no_recycle_drop_frees_outstanding() {
        let g = Arc::new(MemoryGauge::new());
        {
            let p = BufferPool::new_with_recycling(16, Arc::clone(&g), false);
            let _held = p.acquire();
            assert_eq!(g.live(), 64);
        }
        assert_eq!(g.live(), 0);
    }

    #[test]
    fn capped_pool_recycles_under_pressure_but_never_deadlocks() {
        let g = Arc::new(MemoryGauge::new());
        let p = BufferPool::new(32, Arc::clone(&g));
        g.set_cap(Some(2 * p.buf_bytes()));
        let a = p.acquire();
        let b = p.acquire();
        assert_eq!(g.total_allocs(), 2);
        // At the cap with a free buffer: acquire recycles instead of growing.
        unsafe { p.release(a) };
        let c = p.acquire();
        assert_eq!(c, a);
        assert_eq!(g.total_allocs(), 2, "pressure must prefer recycling");
        // At the cap with nothing free: the bounded wait expires and the
        // allocation is forced through — a stuck worker holding a buffer
        // must never be able to wedge its peers.
        let d = p.acquire();
        assert_eq!(g.total_allocs(), 3, "bounded wait, then forced alloc");
        assert!(g.live() > g.cap().unwrap(), "cap is advisory");
        unsafe {
            p.release(b);
            p.release(c);
            p.release(d);
        }
    }

    #[test]
    fn concurrent_pressure_drains_releases() {
        // One thread releases while others sit in the pressure wait: the
        // waiters should pick the freed buffers up instead of forcing.
        let g = Arc::new(MemoryGauge::new());
        let p = Arc::new(BufferPool::new(64, Arc::clone(&g)));
        g.set_cap(Some(4 * p.buf_bytes()));
        let held: Vec<*mut f32> = (0..4).map(|_| p.acquire()).collect();
        let held: Vec<usize> = held.into_iter().map(|p| p as usize).collect();
        std::thread::scope(|s| {
            {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for addr in held {
                        std::thread::yield_now();
                        unsafe { p.release(addr as *mut f32) };
                    }
                });
            }
            for _ in 0..2 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for _ in 0..2 {
                        let ptr = p.acquire();
                        unsafe { p.release(ptr) };
                    }
                });
            }
        });
        assert_eq!(p.outstanding(), 0);
        // 4 initial allocations; the pressured acquires may force a few
        // more, but the wait must have absorbed most of the demand.
        assert!(g.total_allocs() <= 8, "allocs {}", g.total_allocs());
    }

    #[test]
    fn concurrent_acquire_release_is_balanced() {
        for recycle in [true, false] {
            let p = Arc::new(BufferPool::new_with_recycling(
                32,
                Arc::new(MemoryGauge::new()),
                recycle,
            ));
            std::thread::scope(|s| {
                for t in 0..4 {
                    let p = Arc::clone(&p);
                    s.spawn(move || {
                        let mut held = Vec::new();
                        for i in 0..2000 {
                            held.push(p.acquire());
                            if (i + t) % 3 == 0 {
                                if let Some(ptr) = held.pop() {
                                    unsafe { p.release(ptr) };
                                }
                            }
                            while held.len() > 4 {
                                let ptr = held.remove(0);
                                unsafe { p.release(ptr) };
                            }
                        }
                        for ptr in held {
                            unsafe { p.release(ptr) };
                        }
                    });
                }
            });
            assert_eq!(p.outstanding(), 0);
            assert!(p.outstanding_peak() <= 4 * 5);
            if recycle {
                // Steady state should be dominated by reuse.
                assert!(p.gauge().pool_reuses() > p.gauge().total_allocs());
            } else {
                assert_eq!(p.gauge().pool_reuses(), 0);
                assert_eq!(p.gauge().live(), 0);
            }
        }
    }
}
