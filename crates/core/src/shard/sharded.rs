//! [`ShardedShared`]: S independent LAU-SPC publication domains over one
//! logical parameter vector.

use super::snapshot::{ShardedSnapshot, SnapshotMode};
use crate::mem::MemoryGauge;
use crate::paramvec::{LeashedShared, PublishOutcome};
use crate::pool::BufferPool;
use std::sync::Arc;

/// Aggregate outcome of one multi-shard publication: how many shards the
/// update touched, how each fared, and the worst-case staleness observed
/// across the published shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedPublish {
    /// Shards with nonzero gradient mass (the only ones copied + CASed).
    pub dirty: u32,
    /// Dirty shards whose CAS eventually succeeded.
    pub published: u32,
    /// Dirty shards abandoned via the persistence bound.
    pub aborted: u32,
    /// Total failed CAS attempts across all shards.
    pub failed_cas: u32,
    /// Max over published shards of `t_new - 1 - base_seq` — total
    /// staleness τ against the caller's read (0 when no `base_seqs` were
    /// supplied).
    pub tau_max: u64,
    /// Max over published shards of `t_new - 1 - t_first_base` —
    /// scheduling staleness τs (§IV.2), per shard.
    pub tau_s_max: u64,
}

impl ShardedPublish {
    fn absorb(&mut self, outcome: PublishOutcome, base_seq: Option<u64>) {
        self.dirty += 1;
        match outcome {
            PublishOutcome::Published {
                t_new,
                t_first_base,
                failed_cas,
                ..
            } => {
                self.published += 1;
                self.failed_cas += failed_cas;
                if let Some(b) = base_seq {
                    self.tau_max = self.tau_max.max(t_new - 1 - b.min(t_new - 1));
                }
                self.tau_s_max = self.tau_s_max.max(t_new - 1 - t_first_base);
            }
            PublishOutcome::Aborted { failed_cas } => {
                self.aborted += 1;
                self.failed_cas += failed_cas;
            }
        }
    }
}

/// The sharded ParameterVector: the logical dimension `d` is split into
/// fixed-width shards (`width = ceil(d / S)`, the last shard possibly
/// narrower), each an independent [`LeashedShared`] publication domain
/// with its own sequence number, head pointer, and recycling pool. See
/// the [module docs](super) for the protocol and consistency model.
pub struct ShardedShared {
    shards: Vec<LeashedShared>,
    dim: usize,
    width: usize,
}

impl ShardedShared {
    /// Creates `min(num_shards, d)` shard domains (at least 1) publishing
    /// the contents of `init` at per-shard sequence number 0. All shard
    /// pools report to the same `gauge`; `recycle` selects buffer
    /// recycling exactly as in [`BufferPool::new_with_recycling`].
    pub fn new(init: &[f32], num_shards: usize, gauge: Arc<MemoryGauge>, recycle: bool) -> Self {
        let dim = init.len();
        assert!(dim > 0, "parameter dimension must be positive");
        let s = num_shards.clamp(1, dim);
        let width = dim.div_ceil(s);
        let count = dim.div_ceil(width);
        let shards = (0..count)
            .map(|i| {
                let lo = i * width;
                let hi = (lo + width).min(dim);
                let pool = BufferPool::new_with_recycling(hi - lo, Arc::clone(&gauge), recycle);
                LeashedShared::new(&init[lo..hi], pool)
            })
            .collect();
        ShardedShared { shards, dim, width }
    }

    /// Logical parameter dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of shard domains `S`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Width of every shard but (possibly) the last.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The coordinate range `[lo, hi)` owned by shard `s`.
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        let lo = s * self.width;
        (lo, (lo + self.width).min(self.dim))
    }

    /// The shard owning coordinate `idx`.
    #[inline]
    pub fn shard_of(&self, idx: usize) -> usize {
        idx / self.width
    }

    /// Direct access to one shard domain (benches, tests).
    pub fn shard(&self, s: usize) -> &LeashedShared {
        &self.shards[s]
    }

    /// Writes the current per-shard sequence vector into `out`
    /// (unvalidated point reads; diagnostic).
    pub fn seq_vector(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.shards.iter().map(|s| s.current_seq()));
    }

    /// Sum of the per-shard sequence numbers (unvalidated; the sharded
    /// analogue of [`LeashedShared::current_seq`]).
    pub fn total_seq(&self) -> u64 {
        self.shards.iter().map(|s| s.current_seq()).sum()
    }

    /// The memory gauge all shard pools report to.
    pub fn gauge(&self) -> &Arc<MemoryGauge> {
        self.shards[0].pool().gauge()
    }

    /// Sum of the per-shard pool high-water marks — an upper bound on the
    /// concurrently outstanding buffers across the whole vector (the
    /// per-shard peaks need not coincide in time).
    pub fn pool_outstanding_peak(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.pool().outstanding_peak())
            .sum()
    }

    /// Acquires a multi-shard read. `Fast` performs one counted read per
    /// shard; `Consistent` runs the double-collect validation loop,
    /// **degrading** after `max_retries` failed validations: the stale
    /// guards are dropped and one fresh per-shard Fast read is returned,
    /// flagged inconsistent and [degraded](ShardedSnapshot::is_degraded)
    /// — pass `u32::MAX` for an effectively unbounded, lock-free retry
    /// loop.
    pub fn snapshot(&self, mode: SnapshotMode, max_retries: u32) -> ShardedSnapshot<'_> {
        let s = self.shards.len();
        let mut retries = 0u32;
        // Allocated once; retries clear and refill (dropping a guard runs
        // its stop_reading, so clearing also releases the counted reads).
        let mut guards = Vec::with_capacity(s);
        let mut seqs = Vec::with_capacity(s);
        loop {
            // Injection seam: an armed `stall:snapshot` rule widens the
            // collect/validate window here, forcing validation failures.
            lsgd_fault::point(lsgd_fault::Site::SnapshotValidate);
            for shard in &self.shards {
                let g = shard.latest();
                seqs.push(g.seq());
                guards.push(g);
            }
            // A single shard is trivially consistent; Fast mode skips
            // validation entirely.
            if s == 1 || mode == SnapshotMode::Fast {
                return ShardedSnapshot {
                    guards,
                    seqs,
                    consistent: s == 1,
                    degraded: false,
                    retries,
                };
            }
            // Second collect: every shard still at its acquired sequence
            // number ⇒ no shard published between the last acquisition
            // and the first validation read ⇒ linearizable.
            let valid = self
                .shards
                .iter()
                .zip(&seqs)
                .all(|(shard, &q)| shard.current_seq() == q);
            if valid {
                return ShardedSnapshot {
                    guards,
                    seqs,
                    consistent: true,
                    degraded: false,
                    retries,
                };
            }
            if retries >= max_retries {
                // Graceful degradation: under sustained publish pressure
                // the validated point may never arrive. Drop the stale
                // acquisition (releasing its counted reads — holding old
                // guards would pin reclamation) and take one fresh Fast
                // collect, so the caller proceeds on the newest per-shard
                // values instead of spinning or computing on an old view.
                lsgd_trace::count(lsgd_trace::Counter::SnapshotInconsistent);
                lsgd_trace::count(lsgd_trace::Counter::SnapshotDegraded);
                guards.clear();
                seqs.clear();
                for shard in &self.shards {
                    let g = shard.latest();
                    seqs.push(g.seq());
                    guards.push(g);
                }
                return ShardedSnapshot {
                    guards,
                    seqs,
                    consistent: false,
                    degraded: true,
                    retries,
                };
            }
            retries += 1;
            lsgd_trace::count(lsgd_trace::Counter::SnapshotRetry);
            guards.clear();
            seqs.clear();
        }
    }

    /// Copies a consistent (best-effort, bounded-retry) view of the full
    /// parameter vector into `dst`; returns the view's total sequence
    /// number. Used by the convergence monitor.
    pub fn snapshot_into(&self, dst: &mut [f32]) -> u64 {
        let snap = self.snapshot(SnapshotMode::Consistent, 8);
        snap.gather_into(dst);
        snap.total_seq()
    }

    /// Publishes a dense gradient, copying and CASing **only the shards
    /// with nonzero gradient mass** (`grad.len()` must equal `d`).
    /// `base_seqs`, when given, is the per-shard sequence vector of the
    /// read this gradient was computed from (for the τ statistic);
    /// `on_attempt` fires once per per-shard CAS attempt with its
    /// duration in seconds.
    pub fn publish_dense(
        &self,
        grad: &[f32],
        eta: f32,
        persistence: Option<u32>,
        base_seqs: Option<&[u64]>,
        mut on_attempt: impl FnMut(f64),
    ) -> ShardedPublish {
        assert_eq!(grad.len(), self.dim, "gradient length");
        let mut agg = ShardedPublish::default();
        for (s, shard) in self.shards.iter().enumerate() {
            let (lo, hi) = self.shard_range(s);
            let sub = &grad[lo..hi];
            if sub.iter().all(|&v| v == 0.0) {
                continue; // clean shard: no copy, no CAS
            }
            let out = shard.publish_update(sub, eta, persistence, &mut on_attempt);
            agg.absorb(out, base_seqs.map(|b| b[s]));
        }
        agg
    }

    /// Publishes a sparse gradient given as `(index, value)` pairs with
    /// **ascending global indices**: pairs are grouped into per-shard
    /// runs and each dirty shard receives one sparse LAU-SPC publication
    /// ([`LeashedShared::publish_update_sparse`]), so the cost is
    /// O(dirty_shards · width + k) instead of O(d).
    ///
    /// # Panics
    /// Panics (debug) if indices are not strictly ascending or out of
    /// range.
    pub fn publish_sparse(
        &self,
        pairs: &[(u32, f32)],
        eta: f32,
        persistence: Option<u32>,
        base_seqs: Option<&[u64]>,
        mut on_attempt: impl FnMut(f64),
    ) -> ShardedPublish {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "indices ascending");
        debug_assert!(pairs.last().map_or(true, |&(i, _)| (i as usize) < self.dim));
        let mut agg = ShardedPublish::default();
        let mut i = 0usize;
        while i < pairs.len() {
            let s = self.shard_of(pairs[i].0 as usize);
            let (lo, hi) = self.shard_range(s);
            let mut j = i + 1;
            while j < pairs.len() && (pairs[j].0 as usize) < hi {
                j += 1;
            }
            let out = self.shards[s].publish_update_sparse(
                &pairs[i..j],
                lo as u32,
                eta,
                persistence,
                &mut on_attempt,
            );
            agg.absorb(out, base_seqs.map(|b| b[s]));
            i = j;
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded(dim: usize, s: usize, init: f32) -> ShardedShared {
        ShardedShared::new(&vec![init; dim], s, Arc::new(MemoryGauge::new()), true)
    }

    #[test]
    fn geometry_covers_dim_exactly() {
        for (dim, s) in [(10, 4), (10, 64), (7, 1), (64, 8), (65, 8)] {
            let sh = sharded(dim, s, 0.0);
            assert!(sh.num_shards() <= s.clamp(1, dim));
            let mut covered = 0;
            for i in 0..sh.num_shards() {
                let (lo, hi) = sh.shard_range(i);
                assert_eq!(lo, covered);
                assert!(hi > lo);
                covered = hi;
            }
            assert_eq!(covered, dim, "dim {dim} S {s}");
            for idx in 0..dim {
                let s_of = sh.shard_of(idx);
                let (lo, hi) = sh.shard_range(s_of);
                assert!(lo <= idx && idx < hi);
            }
        }
    }

    #[test]
    fn dense_publish_matches_unsharded_for_any_shard_count() {
        let dim = 13;
        let grad: Vec<f32> = (0..dim).map(|i| (i as f32) - 6.0).collect();
        let oracle = {
            let pool = BufferPool::new(dim, Arc::new(MemoryGauge::new()));
            let o = LeashedShared::new(&vec![1.0; dim], pool);
            o.publish_update(&grad, 0.25, None, |_| {});
            let mut buf = vec![0.0; dim];
            o.snapshot_into(&mut buf);
            buf
        };
        for s in [1, 2, 3, 5, 13] {
            let sh = sharded(dim, s, 1.0);
            let out = sh.publish_dense(&grad, 0.25, None, None, |_| {});
            assert_eq!(out.published + (out.dirty - out.published), out.dirty);
            let mut buf = vec![0.0; dim];
            sh.snapshot_into(&mut buf);
            assert_eq!(buf, oracle, "S={s}");
        }
    }

    #[test]
    fn clean_shards_are_skipped() {
        let sh = sharded(16, 4, 0.0); // 4 shards of width 4
        let mut grad = vec![0.0f32; 16];
        grad[5] = 1.0; // only shard 1 dirty
        let out = sh.publish_dense(&grad, 1.0, None, None, |_| {});
        assert_eq!(out.dirty, 1);
        assert_eq!(out.published, 1);
        let mut seqs = Vec::new();
        sh.seq_vector(&mut seqs);
        assert_eq!(seqs, vec![0, 1, 0, 0], "untouched shards keep seq 0");
        let mut buf = vec![0.0f32; 16];
        sh.snapshot_into(&mut buf);
        assert_eq!(buf[5], -1.0);
        assert_eq!(buf.iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    fn sparse_publish_touches_only_owning_shards() {
        let sh = sharded(64, 8, 0.0); // width 8
        let pairs = [(3u32, 1.0f32), (7, 2.0), (40, -1.0)];
        let out = sh.publish_sparse(&pairs, 1.0, None, None, |_| {});
        assert_eq!(out.dirty, 2, "indices 3,7 share shard 0; 40 is shard 5");
        assert_eq!(out.published, 2);
        let mut buf = vec![0.0f32; 64];
        sh.snapshot_into(&mut buf);
        assert_eq!(buf[3], -1.0);
        assert_eq!(buf[7], -2.0);
        assert_eq!(buf[40], 1.0);
        assert_eq!(lsgd_tensor::ops::dot(&buf, &buf), 1.0 + 4.0 + 1.0);
    }

    #[test]
    fn sparse_and_dense_publications_agree() {
        let dim = 37;
        let pairs = [(0u32, 0.5f32), (11, -2.0), (12, 1.5), (36, 4.0)];
        let mut grad = vec![0.0f32; dim];
        for &(i, v) in &pairs {
            grad[i as usize] = v;
        }
        for s in [1, 4, 37] {
            let a = sharded(dim, s, 2.0);
            let b = sharded(dim, s, 2.0);
            a.publish_dense(&grad, 0.1, None, None, |_| {});
            b.publish_sparse(&pairs, 0.1, None, None, |_| {});
            let (mut va, mut vb) = (vec![0.0; dim], vec![0.0; dim]);
            a.snapshot_into(&mut va);
            b.snapshot_into(&mut vb);
            assert_eq!(va, vb, "S={s}");
        }
    }

    #[test]
    fn consistent_snapshot_validates_seq_vector() {
        let sh = sharded(32, 4, 0.0);
        let grad = vec![1.0f32; 32];
        sh.publish_dense(&grad, 1.0, None, None, |_| {});
        let snap = sh.snapshot(SnapshotMode::Consistent, u32::MAX);
        assert!(snap.is_consistent());
        assert_eq!(snap.seqs(), &[1, 1, 1, 1]);
        assert_eq!(snap.total_seq(), 4);
        let mut buf = vec![0.0f32; 32];
        snap.gather_into(&mut buf);
        assert!(buf.iter().all(|&v| v == -1.0));
    }

    #[test]
    fn fast_snapshot_is_flagged_inconsistent_for_multiple_shards() {
        let sh = sharded(8, 2, 0.0);
        let fast = sh.snapshot(SnapshotMode::Fast, 0);
        assert!(!fast.is_consistent());
        assert!(!fast.is_degraded(), "Fast mode never 'degrades'");
        drop(fast);
        let single = sharded(8, 1, 0.0);
        assert!(single.snapshot(SnapshotMode::Fast, 0).is_consistent());
    }

    #[test]
    fn consistent_snapshot_degrades_to_fresh_fast_under_pressure() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let sh = sharded(16, 4, 0.0);
        // Uncontended, a zero retry budget still validates first try.
        let snap = sh.snapshot(SnapshotMode::Consistent, 0);
        assert!(snap.is_consistent() && !snap.is_degraded());
        drop(snap);

        // Under a publish storm, a zero-retry Consistent snapshot must
        // eventually fail validation — and then *degrade* (fresh Fast
        // re-collect with live guards), not spin and not panic. The race
        // window is a publish landing mid-collect; on a single CPU that
        // only happens when the OS preempts this thread mid-snapshot, so
        // the loop is wall-clock-bounded and — deliberately — never
        // yields: a voluntary yield between snapshots would move every
        // context switch outside the vulnerable window.
        let stop = AtomicBool::new(false);
        let grad = vec![1.0f32; 16];
        std::thread::scope(|s| {
            s.spawn(|| {
                // ORDERING: Relaxed — plain test shutdown flag; the scope
                // join is the real synchronisation point.
                while !stop.load(Ordering::Relaxed) {
                    sh.publish_dense(&grad, 1e-6, None, None, |_| {});
                }
            });
            // Wait until the publisher demonstrably runs.
            let t0 = sh.shard(0).current_seq();
            while sh.shard(0).current_seq() == t0 {
                std::thread::yield_now();
            }
            let mut saw_degraded = false;
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            while std::time::Instant::now() < deadline {
                let snap = sh.snapshot(SnapshotMode::Consistent, 0);
                assert_eq!(snap.num_shards(), 4);
                if snap.is_degraded() {
                    assert!(!snap.is_consistent());
                    assert_eq!(snap.retries(), 0, "budget was zero");
                    // The degraded view is a live, gatherable acquisition.
                    let mut buf = vec![0.0f32; 16];
                    snap.gather_into(&mut buf);
                    saw_degraded = true;
                    break;
                }
            }
            // ORDERING: Relaxed — see above.
            stop.store(true, Ordering::Relaxed);
            assert!(saw_degraded, "publish storm never tripped degradation");
        });
    }

    #[test]
    fn staleness_fields_report_against_base_seqs() {
        let sh = sharded(8, 2, 0.0);
        let grad = vec![1.0f32; 8];
        // Two publishes move every shard to seq 2.
        sh.publish_dense(&grad, 1.0, None, None, |_| {});
        sh.publish_dense(&grad, 1.0, None, None, |_| {});
        // A stale base (seq vector all zero) yields tau_max = 2.
        let out = sh.publish_dense(&grad, 1.0, None, Some(&[0, 0]), |_| {});
        assert_eq!(out.tau_max, 2);
        assert_eq!(out.tau_s_max, 0, "uncontended: no lost races");
    }

    #[test]
    fn shards_share_one_gauge_and_recycle() {
        let gauge = Arc::new(MemoryGauge::new());
        let sh = ShardedShared::new(&vec![0.0; 64], 8, Arc::clone(&gauge), true);
        let grad = vec![1.0f32; 64];
        for _ in 0..20 {
            sh.publish_dense(&grad, 0.1, None, None, |_| {});
        }
        // Single-threaded steady state: one outstanding buffer per shard.
        let outstanding: usize = (0..sh.num_shards())
            .map(|s| sh.shard(s).pool().outstanding())
            .sum();
        assert_eq!(outstanding, sh.num_shards());
        assert!(gauge.pool_reuses() > 0, "recycling must engage");
    }
}
