//! The cross-shard read protocol: [`ShardedSnapshot`] and its two
//! consistency modes.

use crate::paramvec::ReadGuard;

/// Cross-shard read consistency (see the module docs for the protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapshotMode {
    /// One counted read per shard, no cross-shard validation: shards may
    /// be observed at mixed versions (HOGWILD!-style, cheapest).
    Fast,
    /// Double-collect validate-and-retry: the returned view corresponds
    /// to one linearizable point across all shards (unless the retry
    /// bound is exhausted — see [`ShardedSnapshot::is_consistent`]).
    Consistent,
}

impl SnapshotMode {
    /// Short label used in algorithm names ("fast" / "cst").
    pub fn label(&self) -> &'static str {
        match self {
            SnapshotMode::Fast => "fast",
            SnapshotMode::Consistent => "cst",
        }
    }
}

/// A counted multi-shard read: one [`ReadGuard`] per shard plus the
/// per-shard sequence vector recorded at acquisition. Buffers stay valid
/// (and unreclaimed) for the snapshot's lifetime.
pub struct ShardedSnapshot<'a> {
    pub(super) guards: Vec<ReadGuard<'a>>,
    pub(super) seqs: Vec<u64>,
    pub(super) consistent: bool,
    pub(super) degraded: bool,
    pub(super) retries: u32,
}

impl<'a> ShardedSnapshot<'a> {
    /// Number of shards in the snapshot.
    pub fn num_shards(&self) -> usize {
        self.guards.len()
    }

    /// The per-shard sequence vector observed at acquisition.
    pub fn seqs(&self) -> &[u64] {
        &self.seqs
    }

    /// Sum of the per-shard sequence numbers — the total number of shard
    /// publications reflected in this view (the sharded analogue of the
    /// unsharded `t`).
    pub fn total_seq(&self) -> u64 {
        self.seqs.iter().sum()
    }

    /// Whether the double-collect validation succeeded: `true` means the
    /// view is linearizable across shards; `false` means either the
    /// snapshot was taken in [`SnapshotMode::Fast`] (with more than one
    /// shard) or the consistent mode exhausted its retry bound and
    /// returned its last (possibly mixed-version) acquisition.
    pub fn is_consistent(&self) -> bool {
        self.consistent
    }

    /// Whether a [`SnapshotMode::Consistent`] acquisition exhausted its
    /// validate-retry budget and **degraded** to a fresh per-shard Fast
    /// read (graceful degradation under publish pressure: the caller
    /// gets the newest per-shard values, flagged not linearizable,
    /// instead of spinning forever). Always `false` in Fast mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Validation retries performed before this snapshot was returned.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Parameter values of shard `s` (valid for the snapshot lifetime).
    pub fn shard_theta(&self, s: usize) -> &[f32] {
        self.guards[s].theta()
    }

    /// Gathers the full parameter vector into `dst` (shard by shard,
    /// contiguous layout). `dst.len()` must equal the sharded dimension.
    pub fn gather_into(&self, dst: &mut [f32]) {
        let mut off = 0usize;
        for g in &self.guards {
            let th = g.theta();
            dst[off..off + th.len()].copy_from_slice(th);
            off += th.len();
        }
        assert_eq!(off, dst.len(), "destination length must equal dim");
    }
}
