//! Sharded ParameterVector — per-shard LAU-SPC publication domains with a
//! cross-shard read protocol.
//!
//! # Why shard
//!
//! The unsharded Leashed-SGD publication step ([`crate::paramvec`]) copies
//! the *entire* parameter vector into a fresh buffer before its CAS, so
//! publication cost is O(d) even when an update touches a handful of
//! coordinates — exactly the sparse regime HOGWILD! (Niu et al., 2011)
//! exploits. Splitting the vector into S fixed-width shards, each an
//! independent publication domain running the same LAU-SPC protocol
//! (per-shard sequence number `t`, `n_rdrs`/`stale`/`deleted`
//! reclamation, per-shard `AtomicPtr` head, per-shard recycling pool over
//! `lsgd_sync::SegQueue`), makes publication cost proportional to the
//! number of *dirty* shards: an update with k nonzero coordinates copies
//! and CASes only the shards those coordinates land in.
//!
//! # Consistency model
//!
//! *Within* a shard the full Leashed-SGD guarantees hold: every published
//! shard update is applied exactly once, atomically, onto the previous
//! published shard state. *Across* shards two read modes are offered
//! ([`SnapshotMode`]):
//!
//! * **Fast** — acquire each shard head once, in index order. Different
//!   shards may be observed at different versions (HOGWILD!-style
//!   cross-shard relaxation; each shard is still internally untorn).
//! * **Consistent** — the classic double-collect atomic snapshot: acquire
//!   all shard heads recording the per-shard sequence vector, then
//!   re-read every head's sequence number; if the vector is unchanged the
//!   snapshot is linearizable (every shard held its sequence number
//!   throughout the interval between the last acquisition and the first
//!   validation read), otherwise drop the guards and retry. A validation
//!   failure implies some shard published — system-wide progress — so the
//!   retry loop is lock-free.
//!
//! Note the cross-shard *write* protocol is intentionally relaxed: a
//! multi-shard update publishes its dirty shards one CAS at a time, so a
//! concurrent Fast reader can observe some shards with the update and
//! others without, and a persistence-bounded update can abort on a subset
//! of its shards. This is the sharding trade-off the ROADMAP asks for —
//! per-shard consistency plus a *choice* of cross-shard strictness on the
//! read side, rather than a global atomic domain.
//!
//! The shard count used by the trainer can be overridden at runtime with
//! the `LSGD_SHARDS` environment variable (see [`effective_shards`]).

mod sharded;
mod snapshot;

pub use sharded::{ShardedPublish, ShardedShared};
pub use snapshot::{ShardedSnapshot, SnapshotMode};

/// Resolves the shard count for a run: the `LSGD_SHARDS` environment
/// variable when set to a positive integer, otherwise `configured`.
/// (The constructor additionally clamps to `[1, dim]`.)
pub fn effective_shards(configured: usize) -> usize {
    std::env::var("LSGD_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(configured)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_shards_defaults_to_configured() {
        // The test environment does not set LSGD_SHARDS; setting it from
        // inside tests would race with other tests in this binary.
        assert_eq!(effective_shards(8), 8);
    }
}
