//! Sharded ParameterVector — per-shard LAU-SPC publication domains with a
//! cross-shard read protocol.
//!
//! # Why shard
//!
//! The unsharded Leashed-SGD publication step ([`crate::paramvec`]) copies
//! the *entire* parameter vector into a fresh buffer before its CAS, so
//! publication cost is O(d) even when an update touches a handful of
//! coordinates — exactly the sparse regime HOGWILD! (Niu et al., 2011)
//! exploits. Splitting the vector into S fixed-width shards, each an
//! independent publication domain running the same LAU-SPC protocol
//! (per-shard sequence number `t`, `n_rdrs`/`stale`/`deleted`
//! reclamation, per-shard `AtomicPtr` head, per-shard recycling pool over
//! `lsgd_sync::SegQueue`), makes publication cost proportional to the
//! number of *dirty* shards: an update with k nonzero coordinates copies
//! and CASes only the shards those coordinates land in.
//!
//! # Consistency model
//!
//! *Within* a shard the full Leashed-SGD guarantees hold: every published
//! shard update is applied exactly once, atomically, onto the previous
//! published shard state. *Across* shards two read modes are offered
//! ([`SnapshotMode`]):
//!
//! * **Fast** — acquire each shard head once, in index order. Different
//!   shards may be observed at different versions (HOGWILD!-style
//!   cross-shard relaxation; each shard is still internally untorn).
//! * **Consistent** — the classic double-collect atomic snapshot: acquire
//!   all shard heads recording the per-shard sequence vector, then
//!   re-read every head's sequence number; if the vector is unchanged the
//!   snapshot is linearizable (every shard held its sequence number
//!   throughout the interval between the last acquisition and the first
//!   validation read), otherwise drop the guards and retry. A validation
//!   failure implies some shard published — system-wide progress — so the
//!   retry loop is lock-free.
//!
//! Note the cross-shard *write* protocol is intentionally relaxed: a
//! multi-shard update publishes its dirty shards one CAS at a time, so a
//! concurrent Fast reader can observe some shards with the update and
//! others without, and a persistence-bounded update can abort on a subset
//! of its shards. This is the sharding trade-off the ROADMAP asks for —
//! per-shard consistency plus a *choice* of cross-shard strictness on the
//! read side, rather than a global atomic domain.
//!
//! The shard count used by the trainer can be overridden at runtime with
//! the `LSGD_SHARDS` environment variable (see [`effective_shards`]).

mod sharded;
mod snapshot;

pub use sharded::{ShardedPublish, ShardedShared};
pub use snapshot::{ShardedSnapshot, SnapshotMode};

/// Minimum shard width (in parameters) the default heuristic aims for:
/// below this, per-shard bookkeeping (seq number, head pointer, pool
/// traffic) stops amortising over the copy it saves.
const MIN_HEURISTIC_SHARD_WIDTH: usize = 1024;

/// Default shard count for a `dim`-parameter vector published by
/// `workers` concurrent writers, used when a run does not configure one
/// explicitly (ROADMAP "adaptive shard-count selection").
///
/// Rationale: a publisher conflicts with another only when their dirty
/// shard sets overlap, so we want several independent publication
/// domains per concurrent publisher — 8·workers, rounded up to a power
/// of two (which also keeps the fixed shard widths uniform). That target
/// is then capped so shards stay at least [`MIN_HEURISTIC_SHARD_WIDTH`]
/// wide: the PR 4 `paramvec_ops` sweep showed the sparse-publish win
/// saturating around that width (S = 64 at the paper's `d = 134,794`),
/// while narrower shards only add header/CAS overhead.
pub fn default_shards(dim: usize, workers: usize) -> usize {
    let target = (8 * workers.max(1)).next_power_of_two();
    let max_by_width = (dim / MIN_HEURISTIC_SHARD_WIDTH).max(1);
    target.clamp(1, max_by_width)
}

/// Resolves the shard count for a run, in priority order: the
/// `LSGD_SHARDS` environment variable when set to a positive integer;
/// the `configured` count when positive; otherwise the
/// [`default_shards`] heuristic from the problem dimension and worker
/// count (`configured == 0` means "auto"). The constructor additionally
/// clamps to `[1, dim]`.
pub fn effective_shards(configured: usize, dim: usize, workers: usize) -> usize {
    lsgd_check::env::positive_usize("LSGD_SHARDS").unwrap_or(if configured > 0 {
        configured
    } else {
        default_shards(dim, workers)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_shards_defaults_to_configured() {
        // The test environment does not set LSGD_SHARDS; setting it from
        // inside tests would race with other tests in this binary.
        assert_eq!(effective_shards(8, 1_000_000, 4), 8);
    }

    #[test]
    fn effective_shards_zero_means_auto() {
        assert_eq!(
            effective_shards(0, 134_794, 8),
            default_shards(134_794, 8)
        );
    }

    #[test]
    fn default_shards_heuristic_shape() {
        // Paper MLP dimension: the width cap (134,794 / 1024 = 131)
        // leaves the 8-per-worker power-of-two target intact.
        assert_eq!(default_shards(134_794, 1), 8);
        assert_eq!(default_shards(134_794, 4), 32);
        assert_eq!(default_shards(134_794, 8), 64);
        // Paper CNN dimension (d = 27,354): capped by width to 26.
        assert_eq!(default_shards(27_354, 8), 26);
        // Tiny problems never shard.
        assert_eq!(default_shards(100, 16), 1);
        // Monotone in workers until the width cap bites.
        let mut last = 0;
        for w in 1..=32 {
            let s = default_shards(1 << 20, w);
            assert!(s >= last, "workers {w}: {s} < {last}");
            last = s;
        }
    }
}
