#![warn(missing_docs)]
//! # lsgd-core — Leashed-SGD: consistent lock-free parallel SGD
//!
//! Rust implementation of the IPDPS 2021 paper *"Consistent Lock-free
//! Parallel Stochastic Gradient Descent for Fast and Stable Convergence"*
//! (Bäckström, Walulya, Papatriantafilou, Tsigas).
//!
//! The crate provides:
//!
//! * [`paramvec`] — the **ParameterVector** shared data structure
//!   (Algorithm 1) with safe lock-free memory recycling, and the
//!   **LAU-SPC** publication loop of **Leashed-SGD** (Algorithm 3) with a
//!   configurable persistence bound `Tp`.
//! * [`baseline`] — the evaluated baselines: lock-based AsyncSGD
//!   (Algorithm 2) and HOGWILD! (Algorithm 4).
//! * [`trainer`] — the `m`-thread asynchronous training executor with the
//!   paper's full measurement instrumentation (staleness distributions,
//!   `Tc`/`Tu` timings, ε-convergence with Crash/Diverge classification,
//!   memory accounting).
//! * [`problem`] — the optimisation-problem abstraction; DL problems
//!   (MLP/CNN on image data) and convex regression problems ship ready.
//!
//! ## Quick start
//!
//! ```
//! use lsgd_core::prelude::*;
//!
//! // A small classification problem (3 Gaussian blobs).
//! let data = lsgd_data::blobs::gaussian_blobs(600, 6, 3, 0.3, 42);
//! let net = lsgd_nn::tiny_mlp(6, 16, 3);
//! let problem = NnProblem::new(net, data, 32, 256);
//!
//! // Train with Leashed-SGD, persistence bound 1, two workers.
//! let cfg = TrainConfig {
//!     algorithm: Algorithm::Leashed { persistence: Some(1) },
//!     threads: 2,
//!     eta: 0.1,
//!     epsilons: vec![0.5],
//!     max_wall: std::time::Duration::from_secs(10),
//!     ..TrainConfig::default()
//! };
//! let result = train(&problem, &cfg);
//! assert!(result.published > 0);
//! println!("{}", result.summary());
//! ```

pub mod algorithm;
pub mod baseline;
pub mod heartbeat;
pub mod mem;
pub mod paramvec;
pub mod pool;
pub mod problem;
pub mod result;
pub mod shard;
pub mod sparsify;
pub mod trainer;

/// Checked `LSGD_*` environment-variable parsing (re-exported from
/// `lsgd_check::env` so every layer shares one implementation): malformed
/// values fall back to the documented default with a one-time warning
/// instead of silently diverging per call site.
pub use lsgd_check::env;

pub use algorithm::Algorithm;
pub use paramvec::{LeashedShared, PublishOutcome, ReadGuard};
pub use problem::{NnProblem, Problem, RegressionProblem, SparseLogRegProblem};
pub use result::{RunResult, UpdateHistograms, WorkerCrash};
pub use shard::{ShardedPublish, ShardedShared, ShardedSnapshot, SnapshotMode};
pub use trainer::{train, EtaPolicy, TrainConfig};

/// Convenient glob import for examples and harnesses.
pub mod prelude {
    pub use crate::algorithm::Algorithm;
    pub use crate::problem::{NnProblem, Problem, RegressionProblem, SparseLogRegProblem};
    pub use crate::result::RunResult;
    pub use crate::shard::SnapshotMode;
    pub use crate::trainer::{train, EtaPolicy, TrainConfig};
}
