//! Tests for the extension features beyond the paper's evaluated setting:
//! top-k gradient sparsification (§VII future work) and staleness-adaptive
//! step sizes (the cited MindTheStep direction).

use lsgd_core::prelude::*;
use lsgd_core::trainer::EtaPolicy;
use lsgd_data::blobs::gaussian_blobs;
use lsgd_nn::tiny_mlp;
use std::time::Duration;

fn blob_problem(seed: u64) -> NnProblem {
    let data = gaussian_blobs(600, 6, 3, 0.3, seed);
    NnProblem::new(tiny_mlp(6, 16, 3), data, 32, 256)
}

fn cfg(algorithm: Algorithm, threads: usize) -> TrainConfig {
    TrainConfig {
        algorithm,
        threads,
        eta: 0.15,
        epsilons: vec![0.5],
        max_wall: Duration::from_secs(20),
        eval_every: Duration::from_millis(15),
        seed: 11,
        ..TrainConfig::default()
    }
}

#[test]
fn sparsified_training_still_converges() {
    let p = blob_problem(1);
    for algo in [
        Algorithm::Hogwild,
        Algorithm::Leashed { persistence: Some(1) },
    ] {
        let mut c = cfg(algo, 2);
        c.sparsify = Some(0.2); // keep only the top 20% of components
        let r = train(&p, &c);
        assert!(!r.crashed, "{algo}: {}", r.summary());
        assert!(
            r.fully_converged(),
            "{algo} with top-20% sparsification: {}",
            r.summary()
        );
    }
}

#[test]
fn extreme_sparsification_slows_but_does_not_crash() {
    let p = blob_problem(2);
    let mut c = cfg(Algorithm::Leashed { persistence: None }, 2);
    c.sparsify = Some(0.01); // top 1% only
    c.epsilons = vec![0.9]; // shallow target
    let r = train(&p, &c);
    assert!(!r.crashed, "{}", r.summary());
    assert!(r.published > 0);
}

#[test]
fn adaptive_eta_converges() {
    let p = blob_problem(3);
    let mut c = cfg(Algorithm::AsyncLock, 4);
    c.eta_policy = EtaPolicy::TauAdaptive { beta: 0.3 };
    let r = train(&p, &c);
    assert!(!r.crashed);
    assert!(r.fully_converged(), "{}", r.summary());
}

#[test]
fn adaptive_eta_with_zero_beta_is_constant() {
    assert_eq!(
        EtaPolicy::TauAdaptive { beta: 0.0 }.effective(0.1, 50),
        0.1
    );
    assert_eq!(EtaPolicy::Constant.effective(0.1, 50), 0.1);
}

#[test]
fn adaptive_eta_damps_with_staleness() {
    let pol = EtaPolicy::TauAdaptive { beta: 1.0 };
    assert_eq!(pol.effective(0.1, 0), 0.1);
    assert!((pol.effective(0.1, 1) - 0.05).abs() < 1e-7);
    assert!((pol.effective(0.1, 9) - 0.01).abs() < 1e-7);
    // Monotone in tau.
    let mut prev = f32::INFINITY;
    for tau in 0..20 {
        let e = pol.effective(0.1, tau);
        assert!(e <= prev);
        prev = e;
    }
}

#[test]
fn adaptive_eta_stabilises_large_base_step() {
    // The adaptive policy's purpose: a base step that is aggressive for
    // the staleness level gets damped. With many oversubscribed threads
    // and a hot step size, the adaptive run must do no worse (crash-wise)
    // than constant — and both must be classified, not hang.
    let p = blob_problem(4);
    let hot = 1.2f32;
    let mut constant = cfg(Algorithm::Hogwild, 8);
    constant.eta = hot;
    constant.max_wall = Duration::from_secs(10);
    let r_const = train(&p, &constant);

    let mut adaptive = constant.clone();
    adaptive.eta_policy = EtaPolicy::TauAdaptive { beta: 1.0 };
    let r_adapt = train(&p, &adaptive);

    // Both runs terminate with a classification; the adaptive one must
    // not be *more* unstable than the constant one.
    let instability = |r: &RunResult| if r.crashed { 1 } else { 0 };
    assert!(
        instability(&r_adapt) <= instability(&r_const),
        "adaptive {} vs constant {}",
        r_adapt.summary(),
        r_const.summary()
    );
}

#[test]
fn sparsify_interacts_with_tau_s_invariant() {
    // Sparsification must not break the Tp=0 ⇒ τs=0 protocol invariant.
    let p = blob_problem(5);
    let mut c = cfg(Algorithm::Leashed { persistence: Some(0) }, 4);
    c.sparsify = Some(0.3);
    let r = train(&p, &c);
    assert!(r.published > 0);
    assert_eq!(r.tau_s.bin(0), r.tau_s.count());
}

#[test]
fn momentum_training_converges_under_all_algorithms() {
    let p = blob_problem(6);
    for algo in [
        Algorithm::Sequential,
        Algorithm::AsyncLock,
        Algorithm::Hogwild,
        Algorithm::Leashed { persistence: Some(1) },
    ] {
        let mut c = cfg(algo, 2);
        c.eta = 0.05; // momentum amplifies the effective step ~1/(1-mu)
        c.momentum = 0.9;
        let r = train(&p, &c);
        assert!(!r.crashed, "{algo}: {}", r.summary());
        assert!(
            r.fully_converged(),
            "{algo} with momentum 0.9: {}",
            r.summary()
        );
    }
}

#[test]
fn momentum_accelerates_small_step_training() {
    // With a deliberately small eta, heavy-ball momentum (~1/(1-mu) gain)
    // must make more progress per update than plain SGD. Compare best
    // losses under an identical *update budget* so CPU load (the rest of
    // the suite sharing the machine) cannot skew the comparison.
    let p = blob_problem(7);
    let mut plain = cfg(Algorithm::Sequential, 1);
    plain.eta = 0.02;
    plain.epsilons = vec![1e-12]; // never met: the update budget rules
    plain.max_updates = 1_500;
    plain.max_wall = Duration::from_secs(60);
    let r_plain = train(&p, &plain);

    let mut mom = plain.clone();
    mom.momentum = 0.9;
    let r_mom = train(&p, &mom);

    assert!(
        r_mom.best_loss < r_plain.best_loss,
        "momentum best loss {} vs plain {}",
        r_mom.best_loss,
        r_plain.best_loss
    );
}

#[test]
fn zero_momentum_is_plain_sgd() {
    // momentum = 0 must leave behaviour bit-identical for a sequential
    // run (same seed, same data): compare final losses.
    let p = blob_problem(8);
    let mut a = cfg(Algorithm::Sequential, 1);
    a.max_updates = 300;
    a.epsilons = vec![1e-12];
    a.max_wall = Duration::from_secs(10);
    let mut b = a.clone();
    b.momentum = 0.0;
    let ra = train(&p, &a);
    let rb = train(&p, &b);
    // Same update count budget and same deterministic worker RNG stream →
    // identical trajectories (loss traces may be sampled at different wall
    // times, so compare the update counts and best losses loosely).
    assert_eq!(ra.published >= 300, rb.published >= 300);
    assert!((ra.best_loss - rb.best_loss).abs() < 0.15);
}
