//! Model checks for the cross-shard read protocol:
//! `SnapshotMode::Consistent`'s double-collect validation must return a
//! linearizable view — never a mixed-version one — and the guards it
//! holds must pin every shard buffer against reclamation for the
//! snapshot's lifetime.
//!
//! Run with `RUSTFLAGS="--cfg lsgd_model" cargo test -p lsgd_core
//! --test model_sharded`. Two shards of width 1 keep the state space
//! small while still exercising the only interesting geometry: a writer
//! that publishes shard 0 *then* shard 1, racing a snapshotter.
#![cfg(lsgd_model)]

use lsgd_check::thread;
use lsgd_core::mem::MemoryGauge;
use lsgd_core::shard::{ShardedShared, SnapshotMode};
use std::sync::Arc;

/// dim 2, 2 shards (width 1), init 0, recycling on.
fn sharded() -> Arc<ShardedShared> {
    Arc::new(ShardedShared::new(
        &[0.0; 2],
        2,
        Arc::new(MemoryGauge::new()),
        true,
    ))
}

/// The writer moves shard 0 to seq 1, then shard 1 to seq 1. The only
/// seq vectors that ever coexist are therefore [0,0], [1,0], [1,1] —
/// a Consistent snapshot must report one of those, never the
/// torn [0,1], and its gathered values must equal its seq vector.
#[test]
fn consistent_snapshot_is_linearizable_across_shards() {
    lsgd_check::model(|| {
        let sh = sharded();
        let writer = {
            let sh = Arc::clone(&sh);
            // eta 1.0, grad -1.0 on both coordinates: shard s holds the
            // value seq(s) after each publication.
            thread::spawn(move || {
                sh.publish_dense(&[-1.0, -1.0], 1.0, None, None, |_| {});
            })
        };
        let snap = sh.snapshot(SnapshotMode::Consistent, u32::MAX);
        assert!(snap.is_consistent(), "unbounded retries must validate");
        let seqs = snap.seqs().to_vec();
        assert_ne!(seqs, vec![0, 1], "mixed-version view: shard 1 ahead of shard 0");
        let mut buf = [9.9f32; 2];
        snap.gather_into(&mut buf);
        assert_eq!(
            [buf[0] as u64, buf[1] as u64],
            [seqs[0], seqs[1]],
            "gathered values must correspond to the validated seq vector"
        );
        drop(snap);
        writer.join().unwrap();
        let final_snap = sh.snapshot(SnapshotMode::Consistent, u32::MAX);
        assert_eq!(final_snap.seqs(), &[1, 1]);
    });
}

/// A held snapshot pins its buffers: a writer that publishes (and
/// thereby retires the snapshot's vectors) must not be able to reclaim
/// them until the snapshot drops. Any violation is a use-after-free or
/// data race on the pinned buffer, which the checker reports.
#[test]
fn snapshot_guards_pin_buffers_against_reclamation() {
    lsgd_check::model(|| {
        let sh = sharded();
        let snap = sh.snapshot(SnapshotMode::Consistent, u32::MAX);
        let writer = {
            let sh = Arc::clone(&sh);
            thread::spawn(move || {
                sh.publish_dense(&[-1.0, -1.0], 1.0, None, None, |_| {});
            })
        };
        // Read through the held guards while the writer races: the
        // pinned view must stay the pre-publication [0, 0] contents.
        assert_eq!(snap.shard_theta(0), &[0.0]);
        assert_eq!(snap.shard_theta(1), &[0.0]);
        assert_eq!(snap.total_seq(), 0);
        drop(snap); // now the writer's displaced vectors may reclaim
        writer.join().unwrap();
        let mut buf = [0.0f32; 2];
        sh.snapshot_into(&mut buf);
        assert_eq!(buf, [1.0, 1.0]);
    });
}
