//! Model checks for the ParameterVector protocol (paper Algorithms 1
//! and 3): LAU-SPC publication is exactly-once, counted reads are never
//! torn and never touch a reclaimed buffer, and `safe_delete` frees
//! each buffer at most once across every explored interleaving.
//!
//! Run with `RUSTFLAGS="--cfg lsgd_model" cargo test -p lsgd_core
//! --test model_paramvec`. Buffer reads/writes are keyed at the buffer
//! base address (`annotate::data_read`/`data_write` in
//! `ParamVec::theta`/`theta_mut`), so a read that is not happens-before
//! ordered with a publication — or any access to a buffer the pool has
//! truly freed — fails the run with a replayable seed.
#![cfg(lsgd_model)]

use lsgd_check::thread;
use lsgd_core::mem::MemoryGauge;
use lsgd_core::paramvec::{LeashedShared, PublishOutcome};
use lsgd_core::pool::BufferPool;
use std::sync::Arc;

const DIM: usize = 2;

fn shared(init: f32) -> Arc<LeashedShared> {
    let pool = BufferPool::new(DIM, Arc::new(MemoryGauge::new()));
    Arc::new(LeashedShared::new(&[init; DIM], pool))
}

/// Two racing publishers: the loser's CAS must fail and retry on the
/// winner's vector, so both updates land (dense sequence numbers, no
/// lost update) and both displaced vectors are reclaimed exactly once.
#[test]
fn racing_publishers_lose_no_update_and_leak_no_buffer() {
    lsgd_check::model(|| {
        let s = shared(0.0);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                // eta 1.0, grad -1.0: each publish adds +1 to every
                // component, so contents must equal the sequence number.
                thread::spawn(move || {
                    let out = s.publish_update(&[-1.0; DIM], 1.0, None, |_| {});
                    assert!(matches!(out, PublishOutcome::Published { .. }));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.current_seq(), 2, "an update was lost or duplicated");
        let g = s.latest();
        assert_eq!(g.theta(), &[2.0; DIM], "both updates must be applied");
        drop(g);
        assert_eq!(
            s.pool().outstanding(),
            1,
            "displaced vectors must be reclaimed (exactly the published one lives)"
        );
    });
}

/// A reader racing one publisher: every acquired view is internally
/// consistent (all components carry the same update count, matching the
/// vector's sequence number) and — via the checker's region tracking —
/// is never a reclaimed buffer. This is the paper's P3 guarantee.
#[test]
fn counted_reads_are_never_torn_and_never_dangle() {
    lsgd_check::model(|| {
        let s = shared(0.0);
        let writer = {
            let s = Arc::clone(&s);
            thread::spawn(move || {
                s.publish_update(&[-1.0; DIM], 1.0, None, |_| {});
            })
        };
        for _ in 0..2 {
            let g = s.latest();
            let th = g.theta();
            assert_eq!(th[0], th[1], "torn read: mixed update counts");
            assert_eq!(th[0] as u64, g.seq(), "contents must match seq");
        }
        writer.join().unwrap();
        assert_eq!(s.latest().theta(), &[1.0; DIM]);
    });
}

/// A persistence-bound abort racing a publisher: the abandoned vector
/// must be recycled (not leaked, not double-freed), and the winner's
/// update must survive intact.
#[test]
fn aborted_update_recycles_its_buffer_exactly_once() {
    lsgd_check::model(|| {
        let s = shared(0.0);
        let contender = {
            let s = Arc::clone(&s);
            thread::spawn(move || {
                // Tp = 0: a single lost CAS abandons the update.
                matches!(
                    s.publish_update(&[-1.0; DIM], 1.0, Some(0), |_| {}),
                    PublishOutcome::Published { .. }
                )
            })
        };
        let published_main = matches!(
            s.publish_update(&[-1.0; DIM], 1.0, Some(0), |_| {}),
            PublishOutcome::Published { .. }
        );
        let published_other = contender.join().unwrap();
        let wins = published_main as u64 + published_other as u64;
        assert!(wins >= 1, "at least one CAS must win (lock-freedom)");
        assert_eq!(s.current_seq(), wins, "sequence counts exactly the winners");
        assert_eq!(s.latest().theta(), &[wins as f32; DIM]);
        assert_eq!(
            s.pool().outstanding(),
            1,
            "abandoned and displaced buffers must all return to the pool"
        );
    });
}
