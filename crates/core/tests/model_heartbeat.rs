//! Model checks for the heartbeat mailbox: the worker→monitor SPSC
//! single-slot channel that carries `(step, ns)` beat details, plus the
//! relaxed tick/phase cells the watchdog report reads.
//!
//! Run with `RUSTFLAGS="--cfg lsgd_model" cargo test -p lsgd_core
//! --test model_heartbeat`. The mutation test additionally needs
//! `--cfg lsgd_mutate_relaxed_beat`, which demotes the worker's
//! `Release` publish of the mailbox sequence word to `Relaxed`; the
//! regular invariants are compiled out under that cfg because they
//! would (correctly) fail.
#![cfg(lsgd_model)]

use lsgd_check::thread;
use lsgd_core::heartbeat::{Beat, BeatPhase, HeartbeatBoard};
use std::sync::Arc;

/// A worker beats while the monitor drains concurrently: every collected
/// beat is whole (its `(seq, step, ns)` triple is one of the published
/// ones, never torn across two beats), and after join the mailbox holds
/// the last undrained beat. The checker's vector clocks validate the
/// `detail` accesses under every explored schedule.
#[cfg(not(lsgd_mutate_relaxed_beat))]
#[test]
fn mailbox_delivers_whole_beats() {
    lsgd_check::model(|| {
        let board = Arc::new(HeartbeatBoard::new(1));
        let b2 = Arc::clone(&board);
        let worker = thread::spawn(move || {
            for step in 0..3u64 {
                b2.beat(0, BeatPhase::Grad, step, step * 100);
            }
        });
        let mut seen: Vec<Beat> = Vec::new();
        for _ in 0..2 {
            if let Some(beat) = board.collect(0) {
                seen.push(beat);
            }
            thread::yield_now();
        }
        worker.join().unwrap();
        if let Some(beat) = board.collect(0) {
            seen.push(beat);
        }
        for beat in &seen {
            // Integrity: `step` and `ns` belong to the same beat (the
            // mailbox publishes them together under one seq word).
            assert_eq!(beat.ns, beat.step * 100, "torn mailbox payload: {beat:?}");
            assert!(beat.seq >= 1 && beat.seq <= 3, "bogus seq: {beat:?}");
        }
        // Drained seqs are strictly increasing (slot handback before the
        // next publish; a beat is never delivered twice).
        assert!(
            seen.windows(2).all(|w| w[0].seq < w[1].seq),
            "duplicated or reordered beats: {seen:?}"
        );
        // Join gives happens-before: ticks are exact afterwards, and the
        // mailbox is empty after the final drain.
        assert_eq!(board.ticks(0), 3, "lost tick");
        assert_eq!(board.collect(0), None, "mailbox not drained");
    });
}

/// The watchdog report path (relaxed `ticks`/`phase` reads) runs from a
/// third thread while the worker beats and the monitor drains — it must
/// be race-free (shim atomics, no `detail` access) and observe only
/// monotone tick values.
#[cfg(not(lsgd_mutate_relaxed_beat))]
#[test]
fn report_reads_race_free_alongside_the_protocol() {
    lsgd_check::model(|| {
        let board = Arc::new(HeartbeatBoard::new(1));
        let b2 = Arc::clone(&board);
        let worker = thread::spawn(move || {
            b2.beat(0, BeatPhase::Snapshot, 0, 0);
            b2.beat(0, BeatPhase::Publish, 1, 10);
        });
        // Watchdog-style observer: ticks are monotone, phase is always a
        // valid label, and neither read consumes the mailbox.
        let mut last = 0;
        for _ in 0..2 {
            let t = board.ticks(0);
            assert!(t >= last && t <= 2, "non-monotone ticks: {t}");
            last = t;
            let _ = board.phase(0).name();
            thread::yield_now();
        }
        worker.join().unwrap();
        assert_eq!(board.ticks(0), 2);
        assert_eq!(board.phase(0), BeatPhase::Publish);
        // The observer consumed nothing: beat 1 is still in the mailbox.
        let beat = board.collect(0).expect("first beat still published");
        assert_eq!(beat, Beat { seq: 1, step: 0, ns: 0 });
    });
}

/// THE mutation test: with `--cfg lsgd_mutate_relaxed_beat`, the
/// worker's publish of the mailbox seq word is `Relaxed` instead of
/// `Release`, so the monitor's `detail` read has no happens-before edge
/// to the worker's `detail` write. The checker must report that as a
/// data race — proving a green run of the other tests actually depends
/// on the `Release`.
#[cfg(lsgd_mutate_relaxed_beat)]
#[test]
fn weakened_beat_release_is_caught() {
    let report = lsgd_check::explore(lsgd_check::Config::default(), || {
        let board = Arc::new(HeartbeatBoard::new(1));
        let b2 = Arc::clone(&board);
        let worker = thread::spawn(move || b2.beat(0, BeatPhase::Grad, 7, 70));
        let mut drained = None;
        while drained.is_none() {
            drained = board.collect(0);
            thread::yield_now();
        }
        let _ = worker.join();
    });
    let failure = report
        .failure
        .expect("the checker must catch the weakened beat publish");
    assert!(
        failure.message.contains("data race"),
        "expected a data-race report, got: {}",
        failure.message
    );
    assert!(!failure.seed.is_empty(), "failure must carry a replay seed");
}
