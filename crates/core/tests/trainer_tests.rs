//! Integration tests for the training executor across all algorithms.

use lsgd_core::prelude::*;
use lsgd_data::blobs::gaussian_blobs;
use lsgd_data::regression::dense_regression;
use lsgd_nn::tiny_mlp;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn blob_problem(seed: u64) -> NnProblem {
    let data = gaussian_blobs(600, 6, 3, 0.3, seed);
    NnProblem::new(tiny_mlp(6, 16, 3), data, 32, 256)
}

fn quick_cfg(algorithm: Algorithm, threads: usize) -> TrainConfig {
    TrainConfig {
        algorithm,
        threads,
        eta: 0.15,
        epsilons: vec![0.5, 0.25],
        max_updates: 30_000,
        max_wall: Duration::from_secs(20),
        eval_every: Duration::from_millis(15),
        seed: 7,
        staleness_cap: 256,
        ..TrainConfig::default()
    }
}

#[test]
fn sequential_converges_on_blobs() {
    let p = blob_problem(1);
    let r = train(&p, &quick_cfg(Algorithm::Sequential, 1));
    assert!(!r.crashed);
    assert!(r.fully_converged(), "{}", r.summary());
    assert_eq!(r.threads, 1);
    // Sequential updates have zero staleness by construction.
    assert_eq!(r.staleness.quantile(1.0), 0, "{}", r.summary());
}

#[test]
fn async_lock_converges_on_blobs() {
    let p = blob_problem(2);
    let r = train(&p, &quick_cfg(Algorithm::AsyncLock, 3));
    assert!(!r.crashed);
    assert!(r.fully_converged(), "{}", r.summary());
    assert!(r.published > 0);
}

#[test]
fn hogwild_converges_on_blobs() {
    let p = blob_problem(3);
    let r = train(&p, &quick_cfg(Algorithm::Hogwild, 3));
    assert!(!r.crashed);
    assert!(r.fully_converged(), "{}", r.summary());
}

#[test]
fn leashed_converges_on_blobs_all_persistence_levels() {
    let p = blob_problem(4);
    for tp in [None, Some(1), Some(0)] {
        let r = train(
            &p,
            &quick_cfg(Algorithm::Leashed { persistence: tp }, 3),
        );
        assert!(!r.crashed, "tp={tp:?}");
        assert!(r.fully_converged(), "tp={tp:?}: {}", r.summary());
        // Lemma 2: outstanding pool buffers bounded by ~2m+1.
        assert!(
            r.pool_outstanding_peak <= 2 * r.threads + 1,
            "tp={tp:?}: pool peak {}",
            r.pool_outstanding_peak
        );
    }
}

#[test]
fn sequential_ignores_thread_count() {
    let p = blob_problem(5);
    let r = train(&p, &quick_cfg(Algorithm::Sequential, 8));
    assert_eq!(r.threads, 1, "SEQ must force a single worker");
}

#[test]
fn huge_step_size_crashes_and_is_classified() {
    let p = blob_problem(6);
    let cfg = TrainConfig {
        eta: 1e6, // guaranteed numerical blow-up
        epsilons: vec![0.1],
        max_wall: Duration::from_secs(10),
        ..quick_cfg(Algorithm::Hogwild, 2)
    };
    let r = train(&p, &cfg);
    assert!(r.crashed, "{}", r.summary());
    assert!(matches!(
        r.outcome_for(0.1),
        Some(lsgd_metrics::Outcome::Crashed)
    ));
}

#[test]
fn unreachable_epsilon_diverges_within_budget() {
    let p = blob_problem(7);
    let cfg = TrainConfig {
        epsilons: vec![1e-9], // unreachably tight
        max_updates: 300,
        max_wall: Duration::from_secs(5),
        ..quick_cfg(Algorithm::AsyncLock, 2)
    };
    let r = train(&p, &cfg);
    assert!(!r.crashed);
    assert!(matches!(
        r.outcome_for(1e-9),
        Some(lsgd_metrics::Outcome::Diverged)
    ));
    assert!(!r.fully_converged());
}

#[test]
fn update_budget_limits_run() {
    let p = blob_problem(8);
    let cfg = TrainConfig {
        epsilons: vec![1e-12],
        max_updates: 200,
        max_wall: Duration::from_secs(30),
        eval_every: Duration::from_millis(5),
        ..quick_cfg(Algorithm::Leashed { persistence: None }, 2)
    };
    let r = train(&p, &cfg);
    // The monitor stops promptly after the budget; allow the in-flight
    // iterations of both workers to land.
    assert!(
        r.published <= 200 + 3000,
        "published {} far exceeds budget",
        r.published
    );
    assert!(r.published >= 200);
}

#[test]
fn staleness_grows_with_thread_count_for_async() {
    let p = blob_problem(9);
    let r1 = train(&p, &quick_cfg(Algorithm::AsyncLock, 1));
    let r4 = train(&p, &quick_cfg(Algorithm::AsyncLock, 4));
    // With one worker there is no concurrency → staleness 0; with several
    // workers mean staleness must be positive (concurrent updates land
    // between read and write).
    assert_eq!(r1.staleness.quantile(1.0), 0);
    assert!(
        r4.staleness.mean() > 0.1,
        "4-thread staleness mean {}",
        r4.staleness.mean()
    );
}

#[test]
fn leashed_tau_s_zero_under_persistence_zero() {
    // §IV.2: with Tp = 0, every *published* update won its CAS on the
    // first try, so its scheduling staleness τs is exactly zero.
    let p = blob_problem(10);
    let r = train(
        &p,
        &quick_cfg(Algorithm::Leashed { persistence: Some(0) }, 4),
    );
    assert!(r.published > 0);
    assert_eq!(
        r.tau_s.bin(0),
        r.tau_s.count(),
        "all τs must be zero under Tp=0; got mean {}",
        r.tau_s.mean()
    );
}

#[test]
fn loss_trace_is_recorded_and_decreasing_overall() {
    let p = blob_problem(11);
    let r = train(&p, &quick_cfg(Algorithm::Leashed { persistence: None }, 2));
    assert!(r.loss_trace.len() >= 2);
    let first = r.loss_trace.points()[0].1;
    let last = r.loss_trace.last_value().unwrap();
    assert!(last < first, "loss should fall: {first} -> {last}");
    assert!((first - r.initial_loss).abs() < 1e-9);
}

#[test]
fn memory_trace_and_peak_are_populated() {
    let p = blob_problem(12);
    let r = train(&p, &quick_cfg(Algorithm::Leashed { persistence: None }, 2));
    assert!(r.mem_peak_bytes > 0);
    assert!(!r.mem_trace.is_empty());
    // Every trace sample is bounded by the peak.
    for &(_, bytes) in r.mem_trace.points() {
        assert!(bytes as usize <= r.mem_peak_bytes);
    }
}

#[test]
fn leashed_uses_less_memory_in_high_tc_tu_regime() {
    // The paper's Fig. 10 claim lives in the high Tc/Tu regime (its CNN):
    // ASYNC holds 2m+1 parameter-sized vectors constantly, while Leashed
    // holds m gradients plus a small pool watermark (the published vector
    // and the rare in-flight copy), because threads spend almost all
    // their time in gradient computation. Our gauge counts pool-owned
    // buffers as live — the RSS-like accounting the paper's `ps`
    // methodology also has — so the comparison is apples-to-apples.
    let data = gaussian_blobs(400, 64, 4, 0.3, 13);
    // Wide-ish input with a deep stack => expensive gradient relative to
    // the O(d) update: a CNN-like Tc/Tu ratio without CNN runtime cost.
    let net = lsgd_nn::Network::new(vec![
        Box::new(lsgd_nn::dense::Dense::new(64, 96)),
        Box::new(lsgd_nn::activation::Relu::new(96)),
        Box::new(lsgd_nn::dense::Dense::new(96, 96)),
        Box::new(lsgd_nn::activation::Relu::new(96)),
        Box::new(lsgd_nn::dense::Dense::new(96, 4)),
    ]);
    let p = NnProblem::new(net, data, 64, 128);
    let m = 6;
    let mut cfg = quick_cfg(Algorithm::AsyncLock, m);
    cfg.epsilons = vec![1e-12]; // run the whole budget for a steady trace
    cfg.max_wall = Duration::from_secs(4);
    let r_async = train(&p, &cfg);
    cfg.algorithm = Algorithm::Leashed { persistence: None };
    let r_lsh = train(&p, &cfg);
    let mean = |r: &RunResult| {
        let pts = r.mem_trace.points();
        pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len().max(1) as f64
    };
    let a = mean(&r_async);
    let l = mean(&r_lsh);
    let vec_bytes = (p.dim() * 4) as f64;
    // ASYNC's footprint is the paper's deterministic 2m+1 vectors.
    let async_model = (2 * m + 1) as f64 * vec_bytes;
    assert!(
        (a - async_model).abs() < 0.2 * async_model,
        "ASYNC steady memory {a:.0}B should be ≈ (2m+1)·d·4 = {async_model:.0}B"
    );
    // Leashed is bounded by the Lemma-2 model: m gradients + ≤ 2m+1 pool
    // vectors. On an oversubscribed 2-core host descheduled workers hold
    // in-flight copies, so the strict CNN-regime win (Fig. 10) is only
    // reproducible with cores ≥ m — the harness reports it; here we
    // assert the bound.
    let leashed_bound = (3 * m + 2) as f64 * vec_bytes;
    assert!(
        l <= leashed_bound,
        "Leashed steady memory {l:.0}B exceeds the 3m+2 model bound {leashed_bound:.0}B"
    );
}

#[test]
fn tc_tu_timings_are_recorded_and_ordered() {
    let p = blob_problem(14);
    let r = train(&p, &quick_cfg(Algorithm::Leashed { persistence: None }, 2));
    assert!(r.tc.count() > 0);
    assert!(r.tu.count() > 0);
    // Gradient computation (a full forward+backward on batch 32) must
    // dominate the O(d) update copy for this problem.
    assert!(
        r.tc.mean() > r.tu.mean(),
        "Tc {} should exceed Tu {}",
        r.tc.mean(),
        r.tu.mean()
    );
}

#[test]
fn regression_problem_trains_under_all_algorithms() {
    let data = dense_regression(800, 10, 0.05, 20);
    let p = RegressionProblem::new(data, 16);
    for algo in [
        Algorithm::Sequential,
        Algorithm::AsyncLock,
        Algorithm::Hogwild,
        Algorithm::Leashed { persistence: Some(1) },
    ] {
        let cfg = TrainConfig {
            algorithm: algo,
            threads: 2,
            eta: 0.02,
            epsilons: vec![0.1],
            max_updates: 50_000,
            max_wall: Duration::from_secs(20),
            eval_every: Duration::from_millis(10),
            seed: 3,
            staleness_cap: 128,
            ..TrainConfig::default()
        };
        let r = train(&p, &cfg);
        assert!(!r.crashed, "{algo}: {}", r.summary());
        assert!(r.fully_converged(), "{algo}: {}", r.summary());
    }
}

#[test]
fn deterministic_problem_init_across_algorithms() {
    // All algorithms must start from the same θ₀ for a given seed — the
    // paper's controlled comparisons depend on it.
    let p = blob_problem(15);
    let a = p.init_theta(99);
    let b = p.init_theta(99);
    assert_eq!(a, b);
}

#[test]
fn recycling_disabled_still_trains_correctly() {
    // The recycling ablation path: correctness must be identical, only
    // the allocation behaviour differs.
    let p = blob_problem(16);
    let mut cfg = quick_cfg(Algorithm::Leashed { persistence: Some(1) }, 3);
    cfg.pool_recycling = false;
    let r = train(&p, &cfg);
    assert!(!r.crashed, "{}", r.summary());
    assert!(r.fully_converged(), "{}", r.summary());
    // Lemma-2 style bound still holds for concurrently-live buffers.
    assert!(r.pool_outstanding_peak <= 2 * r.threads + 1);
}

#[test]
fn monitor_with_coarse_cadence_still_detects_convergence() {
    // eval_every close to the run length: the final observation must
    // still classify correctly rather than hanging or mislabelling.
    let p = blob_problem(17);
    let mut cfg = quick_cfg(Algorithm::Hogwild, 2);
    cfg.eval_every = Duration::from_millis(900);
    cfg.max_wall = Duration::from_secs(15);
    let r = train(&p, &cfg);
    assert!(!r.crashed);
    assert!(
        r.fully_converged() || !r.loss_trace.is_empty(),
        "run must terminate with observations: {}",
        r.summary()
    );
}

#[test]
fn oversubscribed_threads_still_make_progress() {
    // 12 workers on a small machine: heavy oversubscription must not
    // deadlock or starve any algorithm (lock-freedom in practice).
    let p = blob_problem(18);
    for algo in [
        Algorithm::AsyncLock,
        Algorithm::Hogwild,
        Algorithm::Leashed { persistence: Some(1) },
    ] {
        let mut cfg = quick_cfg(algo, 12);
        cfg.max_wall = Duration::from_secs(8);
        cfg.epsilons = vec![0.9];
        let r = train(&p, &cfg);
        assert!(r.published > 50, "{algo}: only {} updates", r.published);
    }
}

#[test]
fn staleness_histogram_counts_match_published_updates() {
    let p = blob_problem(19);
    let r = train(&p, &quick_cfg(Algorithm::Leashed { persistence: None }, 3));
    // Every published update records exactly one staleness observation
    // (count() already includes overflow-bin observations).
    assert_eq!(r.staleness.count(), r.published);
    assert_eq!(r.tau_s.count(), r.published);
}

#[test]
fn sharded_leashed_converges_on_blobs_both_snapshot_modes() {
    let p = blob_problem(21);
    for snapshot in [SnapshotMode::Consistent, SnapshotMode::Fast] {
        let r = train(
            &p,
            &quick_cfg(
                Algorithm::ShardedLeashed {
                    persistence: Some(1),
                    shards: 8,
                    snapshot,
                },
                3,
            ),
        );
        assert!(!r.crashed, "{snapshot:?}");
        assert!(r.fully_converged(), "{snapshot:?}: {}", r.summary());
        // Dense NN gradients dirty every shard of every update.
        assert_eq!(r.dirty_shards.count(), r.published);
        assert_eq!(r.dirty_shards.quantile(0.0), 8, "{}", r.summary());
    }
}

#[test]
fn sharded_auto_shard_count_trains() {
    // `shards: 0` delegates to the dim/worker heuristic
    // (lsgd_core::shard::default_shards); the run must behave like any
    // explicitly sharded run. blob dim is tiny, so the heuristic
    // resolves to a single shard — the equivalence-critical floor case.
    let p = blob_problem(27);
    let r = train(
        &p,
        &quick_cfg(
            Algorithm::ShardedLeashed {
                persistence: Some(1),
                shards: 0,
                snapshot: SnapshotMode::Fast,
            },
            3,
        ),
    );
    assert!(!r.crashed);
    assert!(r.fully_converged(), "{}", r.summary());
    let expected = lsgd_core::shard::default_shards(p.dim(), 3);
    assert_eq!(r.dirty_shards.quantile(1.0), expected as u64);
}

#[test]
fn sharded_trainer_exploits_sparse_logreg_gradients() {
    let data = lsgd_data::sparse_logreg::sparse_logreg(800, 2048, 12, 23);
    let p = SparseLogRegProblem::new(data, 16);
    let shards = 64;
    let mut cfg = quick_cfg(
        Algorithm::ShardedLeashed {
            persistence: None,
            shards,
            snapshot: SnapshotMode::Consistent,
        },
        3,
    );
    cfg.eta = 1.0;
    cfg.epsilons = vec![0.5];
    let r = train(&p, &cfg);
    assert!(!r.crashed);
    assert!(r.fully_converged(), "{}", r.summary());
    // The sparse-native path must leave most shards clean: a 16-doc
    // minibatch touches ≲ 16·18 coordinates spread over 2048, so the mean
    // dirty-shard count sits well below S.
    assert!(r.dirty_shards.count() > 0);
    assert!(
        r.dirty_shards.mean() < shards as f64 * 0.9,
        "dirty mean {} of {shards} shards",
        r.dirty_shards.mean()
    );
}

#[test]
fn sharded_s1_matches_unsharded_loss_quality() {
    // S = 1 is a single publication domain: the sharded trainer must be
    // behaviorally equivalent to the unsharded Leashed path (same reads,
    // same LAU-SPC, same statistics), so convergence quality matches.
    let p = blob_problem(22);
    let sharded = train(
        &p,
        &quick_cfg(
            Algorithm::ShardedLeashed {
                persistence: None,
                shards: 1,
                snapshot: SnapshotMode::Fast,
            },
            2,
        ),
    );
    let plain = train(&p, &quick_cfg(Algorithm::Leashed { persistence: None }, 2));
    assert!(!sharded.crashed && !plain.crashed);
    assert!(sharded.fully_converged(), "{}", sharded.summary());
    assert!(plain.fully_converged(), "{}", plain.summary());
    assert_eq!(sharded.dirty_shards.quantile(1.0), 1);
    // Statistically equivalent end state on the same problem and budget.
    assert!(
        (sharded.final_loss - plain.final_loss).abs() < 0.35,
        "sharded {} vs plain {}",
        sharded.final_loss,
        plain.final_loss
    );
}

// ---------------------------------------------------------------------------
// Worker panic containment
// ---------------------------------------------------------------------------

/// Wraps a [`Problem`] and panics inside `grad` for the first
/// `panic_budget` calls (process-wide across workers); later calls
/// delegate. `u64::MAX` panics on every call.
struct PanickingGrad<P> {
    inner: P,
    panic_budget: u64,
    calls: AtomicU64,
}

impl<P> PanickingGrad<P> {
    fn new(inner: P, panic_budget: u64) -> Self {
        PanickingGrad { inner, panic_budget, calls: AtomicU64::new(0) }
    }
}

impl<P: Problem> Problem for PanickingGrad<P> {
    type Scratch = P::Scratch;

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn init_theta(&self, seed: u64) -> Vec<f32> {
        self.inner.init_theta(seed)
    }

    fn scratch(&self) -> Self::Scratch {
        self.inner.scratch()
    }

    fn grad(
        &self,
        theta: &[f32],
        grad: &mut [f32],
        scratch: &mut Self::Scratch,
        rng: &mut lsgd_tensor::SmallRng64,
    ) -> f32 {
        // ORDERING: Relaxed — a monotone call counter; the panic decision
        // needs no cross-thread ordering, only at-most-`budget` panics.
        if self.calls.fetch_add(1, Ordering::Relaxed) < self.panic_budget {
            panic!("injected grad failure (test)");
        }
        self.inner.grad(theta, grad, scratch, rng)
    }

    fn eval_loss(&self, theta: &[f32], scratch: &mut Self::Scratch) -> f64 {
        self.inner.eval_loss(theta, scratch)
    }
}

#[test]
fn grad_panic_in_every_worker_yields_error_carrying_result_without_hang() {
    // Every worker's first grad call panics: the run must terminate
    // promptly (monitor sees alive == 0), return a RunResult carrying
    // every crash, and leave the process healthy for a follow-up run.
    let p = PanickingGrad::new(blob_problem(30), u64::MAX);
    let mut cfg = quick_cfg(Algorithm::Leashed { persistence: Some(1) }, 3);
    cfg.max_wall = Duration::from_secs(30); // the wall budget must NOT be what ends it
    let start = std::time::Instant::now();
    let r = train(&p, &cfg);
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "all-crashed run should stop via worker accounting, not the wall budget"
    );
    assert_eq!(r.worker_crashes.len(), 3, "{}", r.summary());
    let mut crashed_ids: Vec<usize> = r.worker_crashes.iter().map(|c| c.worker).collect();
    crashed_ids.sort_unstable();
    assert_eq!(crashed_ids, vec![0, 1, 2]);
    for crash in &r.worker_crashes {
        assert!(
            crash.message.contains("injected grad failure"),
            "panic payload must be preserved: {:?}",
            crash.message
        );
    }
    assert_eq!(r.published, 0);
    assert!(r.summary().contains("faults(wcrash 3"), "{}", r.summary());

    // No poisoning: a clean run right after converges as usual.
    let clean = blob_problem(30);
    let r2 = train(&clean, &quick_cfg(Algorithm::Leashed { persistence: Some(1) }, 3));
    assert!(r2.worker_crashes.is_empty());
    assert!(r2.fully_converged(), "{}", r2.summary());
}

#[test]
fn single_grad_panic_is_contained_and_survivors_converge() {
    // Exactly one grad call panics (whichever worker gets there first);
    // the other workers must finish the job.
    let p = PanickingGrad::new(blob_problem(31), 1);
    let r = train(&p, &quick_cfg(Algorithm::Leashed { persistence: None }, 3));
    assert_eq!(r.worker_crashes.len(), 1, "{}", r.summary());
    assert!(!r.crashed, "a contained panic is not numerical instability");
    assert!(r.fully_converged(), "{}", r.summary());
    assert!(r.published > 0);
}

#[test]
fn sharded_worker_panics_are_contained_too() {
    // Same containment through the sharded path: guards released, the
    // multi-shard pools stay serviceable for the survivors.
    let p = PanickingGrad::new(blob_problem(32), 1);
    let r = train(
        &p,
        &quick_cfg(
            Algorithm::ShardedLeashed {
                persistence: Some(1),
                shards: 8,
                snapshot: SnapshotMode::Consistent,
            },
            3,
        ),
    );
    assert_eq!(r.worker_crashes.len(), 1, "{}", r.summary());
    assert!(r.fully_converged(), "{}", r.summary());
}
