//! `lsgd_fault` — deterministic, seeded fault injection for the
//! Leashed-SGD protocol seams.
//!
//! Lock-free resilience claims ("a crashed worker cannot wedge the
//! run", "snapshot validation degrades instead of spinning forever")
//! are only as good as the faults they were exercised against. This
//! crate plants **probes** at the five seams where the protocols are
//! vulnerable — publish CAS loop, snapshot validation, queue pop, pool
//! acquire, worker step boundary ([`Site`]) — and arms them with a
//! replayable schedule of crashes, stalls, and memory pressure.
//!
//! # Zero cost when off
//!
//! Without the `enabled` cargo feature every probe compiles to an
//! inlined empty function and [`WorkerTag`] is a ZST — the
//! `overhead_guard` test pins this. With the feature on, probes are a
//! single relaxed atomic load until a plan is armed, and they always
//! no-op inside model-checker executions ([`lsgd_check::model_active`])
//! so exhaustive exploration is never perturbed.
//!
//! # Arming
//!
//! Either set `LSGD_FAULT` to a spec (grammar in [`spec`]) before the
//! first probe fires, or call [`install`] programmatically:
//!
//! ```text
//! LSGD_FAULT='crash:w2@step120;stall:publish,p=0.01,us=500;oom:after=64'
//! LSGD_FAULT_SEED=zix9  # base-36, like LSGD_MODEL_SEED
//! ```
//!
//! # Determinism and replay
//!
//! Every probabilistic decision is drawn from a per-thread SplitMix64
//! stream seeded by `seed ⊕ mix(stream id)`, where the stream id is the
//! worker id declared via [`worker_tag`] (or a stable per-process
//! ticket for undeclared threads). Re-running with the same
//! `LSGD_FAULT_SEED` therefore draws the identical decision sequence at
//! every probe a thread visits; [`install`] re-seeds all streams, so
//! repeated installs inside one process replay from scratch. (The
//! *interleaving* of threads still varies run to run — the seed pins
//! each thread's own schedule, which is what the chaos tests assert.)

#![warn(missing_docs)]

pub mod spec;

pub use spec::{CrashRule, CrashWhen, Plan, Site, SpecError, StallRule, SITES};

/// Whether the injection plane is compiled in (`enabled` feature).
pub const COMPILED: bool = cfg!(feature = "enabled");

/// Fired-fault totals since the last [`install`] (or process start).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tallies {
    /// Injected worker crashes ([`worker_step`] panics).
    pub crashes: u64,
    /// Injected stalls, per [`Site`] (indexed by `Site as usize`).
    pub stalls: [u64; SITES],
    /// Allocations on which [`oom_on_alloc`] reported pressure.
    pub ooms: u64,
}

impl Tallies {
    /// Total stalls across all sites.
    pub fn stalls_total(&self) -> u64 {
        self.stalls.iter().sum()
    }
}

/// Parses a base-36 fault seed (the `LSGD_FAULT_SEED` format, matching
/// the model checker's seed encoding).
pub fn parse_seed(s: &str) -> Option<u64> {
    u64::from_str_radix(s.trim(), 36).ok()
}

/// Formats a seed in base-36, the form `LSGD_FAULT_SEED` accepts.
pub fn format_seed(mut seed: u64) -> String {
    const DIGITS: &[u8; 36] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    if seed == 0 {
        return "0".to_string();
    }
    let mut out = Vec::new();
    while seed > 0 {
        out.push(DIGITS[(seed % 36) as usize]);
        seed /= 36;
    }
    out.reverse();
    String::from_utf8(out).expect("base-36 digits are ASCII")
}

#[cfg(feature = "enabled")]
mod imp {
    use super::spec::{CrashWhen, Plan, Site, SITES};
    use super::Tallies;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::{Duration, Instant};

    // Control-plane state uses std atomics directly (not the lsgd_check
    // shims): it is never the subject of model checking — probes are
    // disabled under the model — and must not add shim noise to it.

    /// 0 = undetermined (env not read yet), 1 = off, 2 = armed.
    static STATE: AtomicU8 = AtomicU8::new(0);

    /// Bumped by every (re)install/clear; thread streams watching this
    /// re-fetch the plan and re-seed on mismatch.
    static GENERATION: AtomicU64 = AtomicU64::new(0);

    /// The armed seed, read by threads when (re)seeding their stream.
    static SEED: AtomicU64 = AtomicU64::new(0);

    /// Fresh-allocation counter for the `oom:after=<n>` rule.
    static FRESH_ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Fired-fault tallies (crashes, per-site stalls, ooms).
    static CRASHES: AtomicU64 = AtomicU64::new(0);
    static STALLS: [AtomicU64; SITES] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];
    static OOMS: AtomicU64 = AtomicU64::new(0);

    /// Ticket source for threads that never call `worker_tag`; offset
    /// past the u32 worker-id space so tickets can't collide with tags.
    static NEXT_TICKET: AtomicU64 = AtomicU64::new(1 << 32);

    fn plan_slot() -> &'static Mutex<Option<Arc<Plan>>> {
        static PLAN: OnceLock<Mutex<Option<Arc<Plan>>>> = OnceLock::new();
        PLAN.get_or_init(|| Mutex::new(None))
    }

    /// Per-thread decision stream: a cached plan pointer (refreshed on
    /// generation change) and the SplitMix64 state it draws from.
    struct ThreadStream {
        generation: u64,
        plan: Option<Arc<Plan>>,
        rng: u64,
        /// Stream id: the tagged worker id, or this thread's ticket.
        stream: u64,
        /// The tagged worker id (`u32::MAX` = untagged; crash rules
        /// target explicit ids only).
        worker: u32,
    }

    thread_local! {
        static STREAM: RefCell<ThreadStream> = RefCell::new(ThreadStream {
            generation: 0,
            plan: None,
            rng: 0,
            // ORDERING: Relaxed — ticket allocation only needs uniqueness
            // (a monotone counter), no ordering with other memory.
            stream: NEXT_TICKET.fetch_add(1, Ordering::Relaxed),
            worker: u32::MAX,
        });
    }

    /// SplitMix64 output mix — also used to spread stream ids so that
    /// `seed ^ stream` never feeds near-identical states to neighbors.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn next_u64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        mix(*state)
    }

    /// A draw in `[0, 1)` with 53 bits of precision.
    fn next_f64(state: &mut u64) -> f64 {
        (next_u64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    #[cold]
    fn init_state() -> bool {
        let armed = match lsgd_check::env::var("LSGD_FAULT") {
            Some(raw) => match Plan::parse(&raw) {
                Ok(plan) if !plan.is_empty() => {
                    let seed = match lsgd_check::env::var("LSGD_FAULT_SEED") {
                        Some(s) => super::parse_seed(&s).unwrap_or_else(|| {
                            lsgd_check::env::warn_once(
                                "LSGD_FAULT_SEED",
                                "ignoring malformed value (expected base-36); using seed 0",
                            );
                            0
                        }),
                        None => 0,
                    };
                    arm(Arc::new(plan), seed);
                    true
                }
                Ok(_) => false, // empty spec: explicit no-op
                Err(e) => {
                    lsgd_check::env::warn_once(
                        "LSGD_FAULT",
                        &format!("{e}; fault injection disabled"),
                    );
                    false
                }
            },
            None => false,
        };
        // ORDERING: SeqCst — arming must be globally ordered before the
        // state flip that lets probes run; racing initializers must
        // agree on one final state.
        STATE.store(if armed { 2 } else { 1 }, Ordering::SeqCst);
        armed
    }

    fn arm(plan: Arc<Plan>, seed: u64) {
        let mut slot = plan_slot().lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(plan);
        // ORDERING: SeqCst — seed, counter resets, and the generation
        // bump must all be visible before any thread observes the new
        // generation; SeqCst keeps this control-plane sequence simple.
        SEED.store(seed, Ordering::SeqCst);
        // ORDERING: SeqCst — see above (tally reset, same sequence).
        FRESH_ALLOCS.store(0, Ordering::SeqCst);
        // ORDERING: SeqCst — see above (tally reset, same sequence).
        CRASHES.store(0, Ordering::SeqCst);
        for s in &STALLS {
            // ORDERING: SeqCst — see above (tally reset, same sequence).
            s.store(0, Ordering::SeqCst);
        }
        // ORDERING: SeqCst — see above (tally reset, same sequence).
        OOMS.store(0, Ordering::SeqCst);
        // ORDERING: SeqCst — the bump is the publication point: threads
        // seeing the new generation re-fetch the plan under the mutex.
        GENERATION.fetch_add(1, Ordering::SeqCst);
    }

    pub fn active() -> bool {
        // Never inject inside a model execution: the checker owns the
        // schedule, and injected sleeps/panics would corrupt exploration.
        if lsgd_check::model_active() {
            return false;
        }
        // ORDERING: Relaxed — the latch is monotone after init; the data
        // it guards (the plan) is published under the plan mutex, not
        // through this flag.
        match STATE.load(Ordering::Relaxed) {
            0 => init_state(),
            1 => false,
            _ => true,
        }
    }

    pub fn install(spec: &str, seed: u64) -> Result<(), super::SpecError> {
        let plan = Plan::parse(spec)?;
        arm(Arc::new(plan), seed);
        // ORDERING: SeqCst — flip the latch after the plan is armed so a
        // probe that sees "armed" finds the new plan (or a newer one).
        STATE.store(2, Ordering::SeqCst);
        Ok(())
    }

    pub fn clear() {
        let mut slot = plan_slot().lock().unwrap_or_else(|e| e.into_inner());
        *slot = None;
        // ORDERING: SeqCst — generation bump invalidates cached plans in
        // thread streams; the latch flip after it stops new probes.
        GENERATION.fetch_add(1, Ordering::SeqCst);
        // ORDERING: SeqCst — see above (the latch flip of the same pair).
        STATE.store(1, Ordering::SeqCst);
    }

    pub fn tallies() -> Tallies {
        let mut stalls = [0u64; SITES];
        for (dst, src) in stalls.iter_mut().zip(&STALLS) {
            // ORDERING: Relaxed — tallies are monotone counters read for
            // reporting after the faulted run; no ordering is implied.
            *dst = src.load(Ordering::Relaxed);
        }
        Tallies {
            // ORDERING: Relaxed — same: report-time reads of monotone counters.
            crashes: CRASHES.load(Ordering::Relaxed),
            stalls,
            // ORDERING: Relaxed — same: report-time reads of monotone counters.
            ooms: OOMS.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` with the calling thread's stream, refreshed to the
    /// current generation (re-fetching the plan and re-seeding on
    /// change). Returns `None` when no plan is armed.
    fn with_stream<R>(f: impl FnOnce(&Arc<Plan>, &mut u64, u32) -> R) -> Option<R> {
        STREAM.with(|cell| {
            let mut ts = cell.borrow_mut();
            // ORDERING: Relaxed — a stale generation read only delays
            // plan pickup by one probe; the plan itself is fetched under
            // the mutex, which provides the real synchronization.
            let generation = GENERATION.load(Ordering::Relaxed);
            if ts.generation != generation {
                let plan = plan_slot().lock().unwrap_or_else(|e| e.into_inner()).clone();
                ts.generation = generation;
                ts.plan = plan;
                // ORDERING: Relaxed — SEED was written before the
                // generation bump we just observed; exact staleness here
                // only shifts which install's stream we replay, and the
                // plan mutex above already synchronized this thread.
                ts.rng = SEED.load(Ordering::Relaxed) ^ mix(ts.stream);
            }
            let plan = ts.plan.clone()?;
            let ThreadStream { rng, worker, .. } = &mut *ts;
            Some(f(&plan, rng, *worker))
        })
    }

    pub fn set_worker(id: u32) -> u32 {
        STREAM.with(|cell| {
            let mut ts = cell.borrow_mut();
            let prev = ts.worker;
            ts.worker = id;
            ts.stream = id as u64;
            // Force a re-seed from the new stream id at the next probe.
            ts.generation = 0;
            ts.plan = None;
            prev
        })
    }

    pub fn restore_worker(id: u32) {
        STREAM.with(|cell| {
            let mut ts = cell.borrow_mut();
            ts.worker = id;
            ts.stream = if id == u32::MAX {
                // ORDERING: Relaxed — ticket allocation only needs
                // uniqueness, no ordering with other memory.
                NEXT_TICKET.fetch_add(1, Ordering::Relaxed)
            } else {
                id as u64
            };
            ts.generation = 0;
            ts.plan = None;
        })
    }

    fn stall_for(us: u64) {
        // Spin rather than sleep: a stall models a descheduled-but-hot
        // thread, and must not round tiny durations up to OS timer
        // granularity (which would distort p·us calibration).
        let end = Instant::now() + Duration::from_micros(us);
        while Instant::now() < end {
            std::hint::spin_loop();
        }
    }

    pub fn point(site: Site) {
        if !active() {
            return;
        }
        with_stream(|plan, rng, _worker| {
            if let Some(rule) = plan.stalls[site as usize] {
                // One draw per armed probe visit, fired or not, keeps
                // the per-thread decision sequence aligned across runs
                // that only change `us`.
                if next_f64(rng) < rule.p {
                    // ORDERING: Relaxed — monotone tally counter.
                    STALLS[site as usize].fetch_add(1, Ordering::Relaxed);
                    stall_for(rule.us);
                }
            }
        });
    }

    pub fn worker_step(step: u64) {
        if !active() {
            return;
        }
        let crash: Option<u64> = with_stream(|plan, rng, worker| {
            for rule in plan.crashes.iter().filter(|r| r.worker == worker) {
                let fire = match rule.when {
                    CrashWhen::AtStep(n) => step == n,
                    CrashWhen::WithProb(p) => next_f64(rng) < p,
                };
                if fire {
                    return Some(step);
                }
            }
            if let Some(rule) = plan.stalls[Site::WorkerStep as usize] {
                if next_f64(rng) < rule.p {
                    // ORDERING: Relaxed — monotone tally counter.
                    STALLS[Site::WorkerStep as usize].fetch_add(1, Ordering::Relaxed);
                    stall_for(rule.us);
                }
            }
            None
        })
        .flatten();
        if let Some(step) = crash {
            // ORDERING: Relaxed — monotone tally counter.
            CRASHES.fetch_add(1, Ordering::Relaxed);
            let worker = STREAM.with(|cell| cell.borrow().worker);
            panic!("lsgd_fault: injected crash (worker {worker}, step {step})");
        }
    }

    pub fn oom_on_alloc() -> bool {
        if !active() {
            return false;
        }
        with_stream(|plan, _rng, _worker| {
            let after = plan.oom_after?;
            // ORDERING: Relaxed — the threshold needs a total count, not
            // an ordering: fetch_add is atomic, and "pressure from the
            // (after+1)-th fresh alloc onward" tolerates any interleave.
            let n = FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
            if n >= after {
                // ORDERING: Relaxed — monotone tally counter.
                OOMS.fetch_add(1, Ordering::Relaxed);
                Some(())
            } else {
                None
            }
        })
        .flatten()
        .is_some()
    }
}

/// Whether a fault plan is armed (always `false` when the `enabled`
/// feature is off or inside a model-checker execution).
#[inline]
pub fn active() -> bool {
    #[cfg(feature = "enabled")]
    {
        imp::active()
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Programmatically arms a fault plan, replacing any previous one and
/// resetting tallies and all per-thread decision streams. With the
/// `enabled` feature off this is an error (nothing can be injected).
pub fn install(spec: &str, seed: u64) -> Result<(), SpecError> {
    #[cfg(feature = "enabled")]
    {
        imp::install(spec, seed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = seed;
        let _ = Plan::parse(spec)?; // still validate the grammar
        Err(SpecError {
            item: spec.to_string(),
            reason: "lsgd_fault was compiled without the `enabled` feature".to_string(),
        })
    }
}

/// Disarms fault injection (probes return to their single-load idle
/// path; tallies are preserved until the next [`install`]).
pub fn clear() {
    #[cfg(feature = "enabled")]
    imp::clear();
}

/// Snapshot of the fired-fault totals since the last [`install`].
pub fn tallies() -> Tallies {
    #[cfg(feature = "enabled")]
    {
        imp::tallies()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Tallies::default()
    }
}

/// Declares the calling thread to be trainer worker `id` for the
/// duration of the returned guard: crash rules target it, and its
/// decision stream is seeded from `seed ⊕ mix(id)` so the schedule is
/// reproducible per worker. A ZST no-op when the feature is off.
pub fn worker_tag(id: u32) -> WorkerTag {
    #[cfg(feature = "enabled")]
    {
        WorkerTag { prev: imp::set_worker(id) }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = id;
        WorkerTag { _priv: () }
    }
}

/// RAII guard from [`worker_tag`]; restores the previous thread
/// identity (and a fresh ticket stream) on drop, so pooled runtime
/// threads don't leak a worker identity into later tasks.
#[cfg(feature = "enabled")]
pub struct WorkerTag {
    prev: u32,
}

/// RAII guard from [`worker_tag`] (ZST: feature off).
#[cfg(not(feature = "enabled"))]
pub struct WorkerTag {
    _priv: (),
}

#[cfg(feature = "enabled")]
impl Drop for WorkerTag {
    fn drop(&mut self) {
        imp::restore_worker(self.prev);
    }
}

/// Step-boundary probe: fires any matching `crash:` rule for the tagged
/// worker (by panicking — the trainer contains it) and any `stall:step`
/// rule. `step` is the worker-local iteration count.
#[inline]
pub fn worker_step(step: u64) {
    #[cfg(feature = "enabled")]
    imp::worker_step(step);
    #[cfg(not(feature = "enabled"))]
    let _ = step;
}

/// Site probe: fires the armed `stall:` rule for `site`, if any.
#[inline]
pub fn point(site: Site) {
    #[cfg(feature = "enabled")]
    imp::point(site);
    #[cfg(not(feature = "enabled"))]
    let _ = site;
}

/// Memory-pressure probe, called on each *fresh* pool allocation.
/// Returns `true` when the armed `oom:after=<n>` rule says this
/// allocation should be treated as hitting the memory cap.
#[inline]
pub fn oom_on_alloc() -> bool {
    #[cfg(feature = "enabled")]
    {
        imp::oom_on_alloc()
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

#[cfg(all(test, not(lsgd_model)))]
mod tests {
    use super::*;

    #[test]
    fn seed_format_round_trips() {
        for seed in [0u64, 1, 35, 36, 1295, u64::MAX] {
            let s = format_seed(seed);
            assert_eq!(parse_seed(&s), Some(seed), "seed {seed} via {s:?}");
        }
        assert_eq!(parse_seed("zix9"), Some(35 * 36 * 36 * 36 + 18 * 36 * 36 + 33 * 36 + 9));
        assert_eq!(parse_seed("not a seed"), None);
    }
}
