//! The `LSGD_FAULT` spec grammar and its parser.
//!
//! A spec is a `;`-separated list of fault items:
//!
//! ```text
//! crash:w<id>@step<n>      worker <id> panics at the start of its step <n>
//! crash:w<id>@p=<prob>     worker <id> panics with prob <prob> per step
//! stall:<site>[,p=<prob>][,us=<dur>]
//!                          probe <site> busy-sleeps <dur> µs with prob
//!                          <prob> (defaults: p=1, us=100)
//! oom:after=<n>            after <n> fresh pool allocations, every further
//!                          fresh allocation reports memory pressure
//! ```
//!
//! Sites: `publish`, `snapshot`, `pop`, `acquire`, `step`. Example:
//!
//! ```text
//! LSGD_FAULT='crash:w2@step120;stall:publish,p=0.01,us=500;oom:after=64'
//! ```
//!
//! Probabilistic draws are consumed from a per-worker stream fully
//! determined by `LSGD_FAULT_SEED` (see the crate docs), so a schedule
//! replays exactly under the same seed.

use std::fmt;

/// The protocol seams that carry injection probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Site {
    /// Inside the LAU-SPC publish CAS loop (one probe per attempt).
    Publish = 0,
    /// Inside the sharded snapshot's collect/validate loop.
    SnapshotValidate = 1,
    /// `lsgd_sync::SegQueue::pop`.
    QueuePop = 2,
    /// `BufferPool::acquire`.
    PoolAcquire = 3,
    /// The trainer worker's step boundary.
    WorkerStep = 4,
}

/// Number of [`Site`] variants.
pub const SITES: usize = 5;

impl Site {
    /// All sites, in discriminant order.
    pub const ALL: [Site; SITES] = [
        Site::Publish,
        Site::SnapshotValidate,
        Site::QueuePop,
        Site::PoolAcquire,
        Site::WorkerStep,
    ];

    /// The spec-grammar name of this site.
    pub fn name(self) -> &'static str {
        match self {
            Site::Publish => "publish",
            Site::SnapshotValidate => "snapshot",
            Site::QueuePop => "pop",
            Site::PoolAcquire => "acquire",
            Site::WorkerStep => "step",
        }
    }

    fn parse(s: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|site| site.name() == s)
    }
}

/// When a [`CrashRule`] fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrashWhen {
    /// At the start of exactly this worker-local step (0-based).
    AtStep(u64),
    /// With this probability per step, drawn from the worker's stream.
    WithProb(f64),
}

/// One `crash:` item: a targeted worker panic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashRule {
    /// Trainer worker id the rule targets.
    pub worker: u32,
    /// Trigger condition.
    pub when: CrashWhen,
}

/// One `stall:` item: a probabilistic busy-sleep at a probe site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallRule {
    /// Per-probe firing probability in `[0, 1]`.
    pub p: f64,
    /// Stall duration in microseconds.
    pub us: u64,
}

/// A parsed `LSGD_FAULT` spec.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Plan {
    /// Targeted worker crashes.
    pub crashes: Vec<CrashRule>,
    /// Per-site stall rules (indexed by `Site as usize`).
    pub stalls: [Option<StallRule>; SITES],
    /// `oom:after=<n>` threshold, if any.
    pub oom_after: Option<u64>,
}

/// A spec-grammar error, pointing at the offending item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The item (or fragment) that failed to parse.
    pub item: String,
    /// What was expected.
    pub reason: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec item {:?}: {}", self.item, self.reason)
    }
}

impl std::error::Error for SpecError {}

fn err(item: &str, reason: impl Into<String>) -> SpecError {
    SpecError { item: item.to_string(), reason: reason.into() }
}

impl Plan {
    /// Parses a full spec string (see the module docs for the grammar).
    /// An empty spec is valid and injects nothing.
    pub fn parse(spec: &str) -> Result<Plan, SpecError> {
        let mut plan = Plan::default();
        for item in spec.split(';') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (kind, rest) = item
                .split_once(':')
                .ok_or_else(|| err(item, "expected <kind>:<args>"))?;
            match kind.trim() {
                "crash" => plan.crashes.push(parse_crash(item, rest)?),
                "stall" => {
                    let (site, rule) = parse_stall(item, rest)?;
                    plan.stalls[site as usize] = Some(rule);
                }
                "oom" => {
                    let arg = rest.trim();
                    let n = arg
                        .strip_prefix("after=")
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| err(item, "expected oom:after=<n>"))?;
                    plan.oom_after = Some(n);
                }
                other => return Err(err(item, format!("unknown fault kind {other:?}"))),
            }
        }
        Ok(plan)
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.stalls.iter().all(Option::is_none) && self.oom_after.is_none()
    }
}

fn parse_crash(item: &str, rest: &str) -> Result<CrashRule, SpecError> {
    let (target, trigger) = rest
        .trim()
        .split_once('@')
        .ok_or_else(|| err(item, "expected crash:w<id>@step<n> or crash:w<id>@p=<prob>"))?;
    let worker = target
        .trim()
        .strip_prefix('w')
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| err(item, "crash target must be w<id>"))?;
    let trigger = trigger.trim();
    let when = if let Some(step) = trigger.strip_prefix("step") {
        CrashWhen::AtStep(
            step.parse::<u64>()
                .map_err(|_| err(item, "step<n> needs an integer step"))?,
        )
    } else if let Some(p) = trigger.strip_prefix("p=") {
        CrashWhen::WithProb(parse_prob(item, p)?)
    } else {
        return Err(err(item, "crash trigger must be step<n> or p=<prob>"));
    };
    Ok(CrashRule { worker, when })
}

fn parse_stall(item: &str, rest: &str) -> Result<(Site, StallRule), SpecError> {
    let mut parts = rest.split(',');
    let site_name = parts.next().unwrap_or("").trim();
    let site = Site::parse(site_name).ok_or_else(|| {
        err(
            item,
            format!(
                "unknown site {site_name:?} (one of: {})",
                Site::ALL.map(Site::name).join(", ")
            ),
        )
    })?;
    let mut rule = StallRule { p: 1.0, us: 100 };
    for part in parts {
        let part = part.trim();
        if let Some(p) = part.strip_prefix("p=") {
            rule.p = parse_prob(item, p)?;
        } else if let Some(us) = part.strip_prefix("us=") {
            rule.us = us
                .parse::<u64>()
                .map_err(|_| err(item, "us=<n> needs an integer microsecond count"))?;
        } else {
            return Err(err(item, format!("unknown stall parameter {part:?}")));
        }
    }
    Ok((site, rule))
}

fn parse_prob(item: &str, raw: &str) -> Result<f64, SpecError> {
    let p = raw
        .parse::<f64>()
        .map_err(|_| err(item, "p=<prob> needs a number"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(err(item, "p=<prob> must be within [0, 1]"));
    }
    Ok(p)
}

#[cfg(all(test, not(lsgd_model)))]
mod tests {
    use super::*;

    #[test]
    fn parses_the_readme_example() {
        let plan = Plan::parse("crash:w2@step120;stall:publish,p=0.01,us=500;oom:after=64")
            .expect("spec parses");
        assert_eq!(
            plan.crashes,
            vec![CrashRule { worker: 2, when: CrashWhen::AtStep(120) }]
        );
        assert_eq!(
            plan.stalls[Site::Publish as usize],
            Some(StallRule { p: 0.01, us: 500 })
        );
        assert_eq!(plan.stalls[Site::QueuePop as usize], None);
        assert_eq!(plan.oom_after, Some(64));
        assert!(!plan.is_empty());
    }

    #[test]
    fn stall_defaults_and_whitespace() {
        let plan = Plan::parse(" stall:pop ; crash:w0@p=0.5 ;").expect("spec parses");
        assert_eq!(plan.stalls[Site::QueuePop as usize], Some(StallRule { p: 1.0, us: 100 }));
        assert_eq!(plan.crashes[0].when, CrashWhen::WithProb(0.5));
        assert!(Plan::parse("").expect("empty spec is valid").is_empty());
    }

    #[test]
    fn every_site_name_round_trips() {
        for site in Site::ALL {
            let plan = Plan::parse(&format!("stall:{},us=7", site.name())).unwrap();
            assert_eq!(plan.stalls[site as usize], Some(StallRule { p: 1.0, us: 7 }));
        }
    }

    #[test]
    fn malformed_items_are_rejected_with_context() {
        for bad in [
            "crash:2@step5",        // missing w
            "crash:w1@stepx",       // non-integer step
            "crash:w1@sometimes",   // unknown trigger
            "stall:everywhere",     // unknown site
            "stall:publish,q=1",    // unknown parameter
            "stall:publish,p=1.5",  // out-of-range probability
            "oom:64",               // missing after=
            "flood:all",            // unknown kind
            "justtext",             // no colon
        ] {
            let e = Plan::parse(bad).expect_err(bad);
            assert!(e.to_string().contains("bad fault spec item"), "{e}");
        }
    }
}
