//! Seed-determinism contract for the armed fault plane: the same
//! `(spec, seed)` pair must draw the identical per-thread decision
//! sequence every run, and re-installing resets the streams so a
//! replay starts from scratch. Compiled only with `--features enabled`
//! (the chaos CI job).

#![cfg(feature = "enabled")]

use lsgd_fault::{Site, Tallies};
use std::sync::{Mutex, OnceLock};

/// Fault state (plan, tallies, thread streams) is process-global, so
/// tests that arm it must not interleave.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs a fixed probe schedule as worker 0 and returns which of the
/// `n` publish-probe visits stalled (a bitmap of fired decisions).
fn fired_pattern(spec: &str, seed: u64, n: usize) -> Vec<bool> {
    lsgd_fault::install(spec, seed).expect("spec parses");
    let _tag = lsgd_fault::worker_tag(0);
    let mut fired = Vec::with_capacity(n);
    let mut stalls_so_far = 0;
    for _ in 0..n {
        lsgd_fault::point(Site::Publish);
        let now = lsgd_fault::tallies().stalls[Site::Publish as usize];
        fired.push(now > stalls_so_far);
        stalls_so_far = now;
    }
    fired
}

#[test]
fn same_seed_replays_the_same_decision_sequence() {
    let _guard = serial();
    // us=0: decisions are drawn and tallied but no time is wasted.
    let spec = "stall:publish,p=0.3,us=0";
    let a = fired_pattern(spec, 0x5eed, 256);
    let b = fired_pattern(spec, 0x5eed, 256);
    assert_eq!(a, b, "identical (spec, seed) must replay identically");
    let fired = a.iter().filter(|f| **f).count();
    assert!(fired > 0 && fired < 256, "p=0.3 over 256 draws fired {fired} times");
    lsgd_fault::clear();
}

#[test]
fn different_seed_draws_a_different_sequence() {
    let _guard = serial();
    let spec = "stall:publish,p=0.5,us=0";
    let a = fired_pattern(spec, 1, 256);
    let b = fired_pattern(spec, 2, 256);
    assert_ne!(a, b, "256 p=0.5 draws colliding across seeds is ~2^-256");
    lsgd_fault::clear();
}

#[test]
fn install_resets_tallies_and_oom_counter() {
    let _guard = serial();
    lsgd_fault::install("oom:after=3", 7).unwrap();
    let _tag = lsgd_fault::worker_tag(0);
    let pressured: Vec<bool> = (0..6).map(|_| lsgd_fault::oom_on_alloc()).collect();
    assert_eq!(pressured, [false, false, false, true, true, true]);
    assert_eq!(lsgd_fault::tallies().ooms, 3);

    // Re-install: the alloc counter and tallies restart.
    lsgd_fault::install("oom:after=3", 7).unwrap();
    assert_eq!(lsgd_fault::tallies(), Tallies::default());
    assert!(!lsgd_fault::oom_on_alloc(), "counter restarted");
    lsgd_fault::clear();
}

#[test]
fn crash_rules_target_only_the_tagged_worker() {
    let _guard = serial();
    lsgd_fault::install("crash:w1@step5", 0).unwrap();
    {
        let _tag = lsgd_fault::worker_tag(0);
        for step in 0..10 {
            lsgd_fault::worker_step(step); // worker 0: no rule, no panic
        }
    }
    let crashed = std::panic::catch_unwind(|| {
        let _tag = lsgd_fault::worker_tag(1);
        for step in 0..10 {
            lsgd_fault::worker_step(step);
        }
    });
    let msg = *crashed
        .expect_err("worker 1 must crash at step 5")
        .downcast::<String>()
        .expect("injected crash carries a formatted message");
    assert!(msg.contains("injected crash"), "{msg}");
    assert!(msg.contains("worker 1") && msg.contains("step 5"), "{msg}");
    assert_eq!(lsgd_fault::tallies().crashes, 1);
    lsgd_fault::clear();
}

#[test]
fn clear_disarms_probes() {
    let _guard = serial();
    lsgd_fault::install("stall:pop,p=1,us=0;oom:after=0", 0).unwrap();
    assert!(lsgd_fault::active());
    lsgd_fault::clear();
    assert!(!lsgd_fault::active());
    let _tag = lsgd_fault::worker_tag(0);
    lsgd_fault::point(Site::QueuePop);
    assert!(!lsgd_fault::oom_on_alloc());
    assert_eq!(lsgd_fault::tallies().stalls_total(), 0);
}
