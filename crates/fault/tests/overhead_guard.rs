//! Pins the zero-cost contract: with the `enabled` feature off (the
//! default build), the fault plane must not exist — ZST guard, inert
//! probes, install refused. The default-feature CI `cargo test` run
//! compiles this file; the chaos job (which flips the feature on)
//! compiles `determinism.rs` instead.

#![cfg(not(feature = "enabled"))]

use lsgd_fault::{Site, WorkerTag};

#[test]
fn disabled_build_has_no_fault_plane() {
    // The whole file is cfg'd on the feature being off, so COMPILED is
    // constant here — the assert documents the contract, it doesn't
    // probe runtime state.
    #[allow(clippy::assertions_on_constants)]
    {
        assert!(!lsgd_fault::COMPILED);
    }
    assert_eq!(std::mem::size_of::<WorkerTag>(), 0, "WorkerTag must be a ZST");
    assert!(!lsgd_fault::active());
    assert!(!lsgd_fault::oom_on_alloc());
    assert_eq!(lsgd_fault::tallies(), lsgd_fault::Tallies::default());
}

#[test]
fn disabled_probes_are_inert() {
    // Even with a spec in the environment, probes must do nothing.
    std::env::set_var("LSGD_FAULT", "stall:publish,p=1,us=1;oom:after=0");
    let _tag = lsgd_fault::worker_tag(0);
    for step in 0..100 {
        lsgd_fault::worker_step(step);
        for site in Site::ALL {
            lsgd_fault::point(site);
        }
        assert!(!lsgd_fault::oom_on_alloc());
    }
    assert_eq!(lsgd_fault::tallies(), lsgd_fault::Tallies::default());
    assert!(!lsgd_fault::active());
}

#[test]
fn disabled_install_still_validates_but_refuses() {
    // Grammar errors surface even in disabled builds (so a typo'd spec
    // in a default-features test run is caught)...
    assert!(lsgd_fault::install("flood:all", 0).is_err());
    // ...and a valid spec is refused with a feature hint.
    let err = lsgd_fault::install("crash:w0@step1", 0)
        .expect_err("disabled build must refuse to arm");
    assert!(err.reason.contains("enabled"), "{err}");
}
