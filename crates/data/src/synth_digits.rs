//! Procedural MNIST-format digit generator ("SynthDigits").
//!
//! Substitute for the MNIST download the paper uses (no network access in
//! this environment — see DESIGN.md). Each class `0..=9` has a hand-drawn
//! stroke skeleton (polylines in a unit box, arcs sampled to polylines).
//! A sample is rendered by
//!
//! 1. applying a random affine jitter (translation, scale, rotation,
//!    shear) to the skeleton,
//! 2. rasterising with an anti-aliased distance-to-segment falloff at a
//!    random stroke thickness,
//! 3. adding Gaussian pixel noise and clamping to `[0, 1]`.
//!
//! The result is a 10-class, 28×28, `[0,1]`-grayscale classification task
//! with genuine intra-class variability — the same shape, format, batch
//! semantics and (importantly for the paper's Tc/Tu measurements) the same
//! per-gradient FLOP profile as MNIST under the Table II/III networks.

use crate::dataset::Dataset;
use lsgd_tensor::{Matrix, SmallRng64};

/// Image side length (MNIST format).
pub const SIDE: usize = 28;
/// Flattened image dimension.
pub const DIM: usize = SIDE * SIDE;
/// Number of classes.
pub const N_CLASSES: usize = 10;

/// Configurable generator for the synthetic digit dataset.
#[derive(Debug, Clone)]
pub struct SynthDigits {
    /// Max translation as a fraction of the image side (default 0.08).
    pub max_shift: f32,
    /// Scale jitter: samples scale in `[1-s, 1+s]` (default 0.12).
    pub scale_jitter: f32,
    /// Max rotation in radians (default 0.12).
    pub max_rotation: f32,
    /// Stroke thickness range in pixels (default 1.0..=1.9).
    pub thickness: (f32, f32),
    /// Gaussian pixel-noise standard deviation (default 0.06).
    pub noise_std: f32,
}

impl Default for SynthDigits {
    fn default() -> Self {
        SynthDigits {
            max_shift: 0.08,
            scale_jitter: 0.12,
            max_rotation: 0.12,
            thickness: (1.0, 1.9),
            noise_std: 0.06,
        }
    }
}

impl SynthDigits {
    /// Generates `n` samples with labels drawn round-robin (balanced
    /// classes), deterministic under `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng64::new(seed);
        let mut images = Matrix::zeros(n, DIM);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = (i % N_CLASSES) as u8;
            self.render_into(class, &mut rng, images.row_mut(i));
            labels.push(class);
        }
        Dataset::new(images, labels, N_CLASSES)
    }

    /// Renders one sample of `class` into a flat 784-length buffer.
    pub fn render_into(&self, class: u8, rng: &mut SmallRng64, out: &mut [f32]) {
        assert_eq!(out.len(), DIM);
        let strokes = skeleton(class);

        // Random affine jitter about the glyph centre (0.5, 0.5).
        let scale = 1.0 + rng.range_f32(-self.scale_jitter, self.scale_jitter);
        let angle = rng.range_f32(-self.max_rotation, self.max_rotation);
        let (sin, cos) = angle.sin_cos();
        let shear = rng.range_f32(-0.08, 0.08);
        let dx = rng.range_f32(-self.max_shift, self.max_shift);
        let dy = rng.range_f32(-self.max_shift, self.max_shift);
        let transform = |p: (f32, f32)| -> (f32, f32) {
            let (mut x, y) = (p.0 - 0.5, p.1 - 0.5);
            x += shear * y;
            let (rx, ry) = (cos * x - sin * y, sin * x + cos * y);
            (rx * scale + 0.5 + dx, ry * scale + 0.5 + dy)
        };

        // Transform all skeleton segments into pixel space.
        let px = |p: (f32, f32)| (p.0 * (SIDE as f32 - 1.0), p.1 * (SIDE as f32 - 1.0));
        let mut segments: Vec<((f32, f32), (f32, f32))> = Vec::new();
        for poly in &strokes {
            for w in poly.windows(2) {
                segments.push((px(transform(w[0])), px(transform(w[1]))));
            }
        }

        let thickness = rng.range_f32(self.thickness.0, self.thickness.1);
        // Anti-aliased falloff: full intensity inside the stroke, linear
        // ramp one pixel wide at the boundary.
        for (i, v) in out.iter_mut().enumerate() {
            let (r, c) = (i / SIDE, i % SIDE);
            let p = (c as f32, r as f32);
            let mut d = f32::MAX;
            for &(a, b) in &segments {
                d = d.min(dist_point_segment(p, a, b));
                if d <= 0.0 {
                    break;
                }
            }
            let ink = (1.0 - (d - thickness * 0.5)).clamp(0.0, 1.0);
            let noise = rng.next_normal() * self.noise_std;
            *v = (ink + noise).clamp(0.0, 1.0);
        }
    }
}

/// Distance from point `p` to segment `ab`.
fn dist_point_segment(p: (f32, f32), a: (f32, f32), b: (f32, f32)) -> f32 {
    let (apx, apy) = (p.0 - a.0, p.1 - a.1);
    let (abx, aby) = (b.0 - a.0, b.1 - a.1);
    let len_sq = abx * abx + aby * aby;
    let t = if len_sq > 0.0 {
        ((apx * abx + apy * aby) / len_sq).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let (dx, dy) = (p.0 - (a.0 + t * abx), p.1 - (a.1 + t * aby));
    (dx * dx + dy * dy).sqrt()
}

/// Samples an arc of a circle as a polyline (angles in radians, y grows
/// downward as in image coordinates).
fn arc(cx: f32, cy: f32, rx: f32, ry: f32, a0: f32, a1: f32, n: usize) -> Vec<(f32, f32)> {
    (0..=n)
        .map(|i| {
            let t = a0 + (a1 - a0) * i as f32 / n as f32;
            (cx + rx * t.cos(), cy + ry * t.sin())
        })
        .collect()
}

/// The per-class stroke skeletons, in a unit box with y growing downward.
/// Deliberately stylised — the classifier must separate 10 distinct shape
/// families, not read human handwriting.
fn skeleton(class: u8) -> Vec<Vec<(f32, f32)>> {
    use std::f32::consts::PI;
    match class {
        // 0: ellipse outline.
        0 => vec![arc(0.5, 0.5, 0.22, 0.32, 0.0, 2.0 * PI, 24)],
        // 1: vertical stroke with a small flag and base.
        1 => vec![
            vec![(0.55, 0.18), (0.55, 0.82)],
            vec![(0.42, 0.30), (0.55, 0.18)],
            vec![(0.42, 0.82), (0.68, 0.82)],
        ],
        // 2: top arc, diagonal, bottom bar.
        2 => vec![
            arc(0.5, 0.34, 0.20, 0.16, -PI, 0.0, 10),
            vec![(0.70, 0.34), (0.32, 0.80)],
            vec![(0.32, 0.80), (0.72, 0.80)],
        ],
        // 3: two right-facing arcs.
        3 => vec![
            arc(0.45, 0.34, 0.20, 0.15, -PI * 0.9, PI * 0.45, 12),
            arc(0.45, 0.65, 0.22, 0.17, -PI * 0.45, PI * 0.9, 12),
        ],
        // 4: diagonal, vertical, crossbar.
        4 => vec![
            vec![(0.60, 0.18), (0.32, 0.58)],
            vec![(0.32, 0.58), (0.74, 0.58)],
            vec![(0.60, 0.18), (0.60, 0.84)],
        ],
        // 5: top bar, left vertical, bottom bowl.
        5 => vec![
            vec![(0.68, 0.20), (0.36, 0.20)],
            vec![(0.36, 0.20), (0.36, 0.48)],
            arc(0.50, 0.62, 0.20, 0.18, -PI * 0.55, PI * 0.75, 12),
        ],
        // 6: tall left curve closing into a bottom loop.
        6 => vec![
            vec![(0.62, 0.20), (0.42, 0.45)],
            arc(0.50, 0.64, 0.18, 0.17, 0.0, 2.0 * PI, 18),
        ],
        // 7: top bar and long diagonal.
        7 => vec![
            vec![(0.30, 0.22), (0.72, 0.22)],
            vec![(0.72, 0.22), (0.44, 0.82)],
        ],
        // 8: stacked loops.
        8 => vec![
            arc(0.5, 0.35, 0.17, 0.14, 0.0, 2.0 * PI, 16),
            arc(0.5, 0.66, 0.20, 0.16, 0.0, 2.0 * PI, 16),
        ],
        // 9: top loop with a tail.
        9 => vec![
            arc(0.5, 0.36, 0.18, 0.15, 0.0, 2.0 * PI, 16),
            vec![(0.68, 0.40), (0.60, 0.82)],
        ],
        other => panic!("unknown digit class {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let d = SynthDigits::default().generate(50, 1);
        assert_eq!(d.len(), 50);
        assert_eq!(d.dim(), DIM);
        assert_eq!(d.n_classes, N_CLASSES);
    }

    #[test]
    fn pixels_are_normalised() {
        let d = SynthDigits::default().generate(40, 2);
        for v in d.images.as_slice() {
            assert!((0.0..=1.0).contains(v), "pixel {v} out of range");
        }
    }

    #[test]
    fn classes_are_balanced_round_robin() {
        let d = SynthDigits::default().generate(100, 3);
        assert_eq!(d.class_counts(), vec![10; 10]);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = SynthDigits::default();
        let a = g.generate(20, 7);
        let b = g.generate(20, 7);
        assert_eq!(a.images.as_slice(), b.images.as_slice());
        let c = g.generate(20, 8);
        assert_ne!(a.images.as_slice(), c.images.as_slice());
    }

    #[test]
    fn images_contain_ink_and_background() {
        let d = SynthDigits::default().generate(10, 4);
        for r in 0..10 {
            let row = d.images.row(r);
            let ink = row.iter().filter(|&&v| v > 0.5).count();
            let bg = row.iter().filter(|&&v| v < 0.3).count();
            assert!(ink > 10, "class {r}: only {ink} ink pixels");
            assert!(bg > 300, "class {r}: only {bg} background pixels");
        }
    }

    #[test]
    fn same_class_samples_differ() {
        // Jitter must produce intra-class variability.
        let d = SynthDigits::default().generate(20, 5);
        // Rows 0 and 10 are both class 0.
        assert_eq!(d.labels[0], d.labels[10]);
        let diff: f32 = d
            .images
            .row(0)
            .iter()
            .zip(d.images.row(10))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 5.0, "intra-class variation too small: {diff}");
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean inter-class pixel distance must exceed mean intra-class
        // distance — otherwise the task is unlearnable.
        let g = SynthDigits::default();
        let d = g.generate(200, 6);
        let mut intra = 0.0f64;
        let mut inter = 0.0f64;
        let mut n_intra = 0;
        let mut n_inter = 0;
        for i in 0..40 {
            for j in (i + 1)..40 {
                let dist: f32 = d
                    .images
                    .row(i)
                    .iter()
                    .zip(d.images.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d.labels[i] == d.labels[j] {
                    intra += dist as f64;
                    n_intra += 1;
                } else {
                    inter += dist as f64;
                    n_inter += 1;
                }
            }
        }
        let intra = intra / n_intra.max(1) as f64;
        let inter = inter / n_inter.max(1) as f64;
        assert!(
            inter > intra * 1.2,
            "inter {inter:.2} should exceed intra {intra:.2}"
        );
    }

    #[test]
    fn dist_point_segment_basics() {
        // Point on the segment.
        assert!(dist_point_segment((0.5, 0.0), (0.0, 0.0), (1.0, 0.0)) < 1e-6);
        // Perpendicular distance.
        assert!((dist_point_segment((0.5, 2.0), (0.0, 0.0), (1.0, 0.0)) - 2.0).abs() < 1e-6);
        // Beyond the endpoint: distance to endpoint.
        assert!((dist_point_segment((2.0, 0.0), (0.0, 0.0), (1.0, 0.0)) - 1.0).abs() < 1e-6);
        // Degenerate segment.
        assert!((dist_point_segment((3.0, 4.0), (0.0, 0.0), (0.0, 0.0)) - 5.0).abs() < 1e-6);
    }
}
