//! Labelled dataset container and minibatch sampling.

use lsgd_tensor::{Matrix, SmallRng64};

/// A labelled classification dataset: `images` is `(n, dim)` row-major,
/// `labels[i] < n_classes`.
#[derive(Clone)]
pub struct Dataset {
    /// Feature matrix, one sample per row.
    pub images: Matrix,
    /// Integer class labels, one per row of `images`.
    pub labels: Vec<u8>,
    /// Number of classes.
    pub n_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating invariants.
    ///
    /// # Panics
    /// Panics if lengths disagree or a label is out of range.
    pub fn new(images: Matrix, labels: Vec<u8>, n_classes: usize) -> Self {
        assert_eq!(images.rows(), labels.len(), "image/label count mismatch");
        assert!(
            labels.iter().all(|&y| (y as usize) < n_classes),
            "label out of range"
        );
        Dataset {
            images,
            labels,
            n_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-sample feature dimension.
    pub fn dim(&self) -> usize {
        self.images.cols()
    }

    /// A copy of the first `n` samples (used to carve out fixed evaluation
    /// subsets, as the convergence monitor does).
    pub fn head(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        let mut images = Matrix::zeros(n, self.dim());
        for r in 0..n {
            images.row_mut(r).copy_from_slice(self.images.row(r));
        }
        Dataset {
            images,
            labels: self.labels[..n].to_vec(),
            n_classes: self.n_classes,
        }
    }

    /// Splits into `(train, test)` with `test_fraction` of the samples in
    /// the test set (taken from the tail).
    pub fn train_test_split(&self, test_fraction: f32) -> (Dataset, Dataset) {
        let n_test = ((self.len() as f32) * test_fraction).round() as usize;
        let n_train = self.len() - n_test;
        let train = self.head(n_train);
        let mut images = Matrix::zeros(n_test, self.dim());
        for r in 0..n_test {
            images
                .row_mut(r)
                .copy_from_slice(self.images.row(n_train + r));
        }
        let test = Dataset {
            images,
            labels: self.labels[n_train..].to_vec(),
            n_classes: self.n_classes,
        };
        (train, test)
    }

    /// Fills `x`/`y` with a uniformly sampled (with replacement) minibatch.
    /// `x` must be `(batch, dim)`; `y` is resized to `batch`.
    pub fn sample_batch(&self, rng: &mut SmallRng64, x: &mut Matrix, y: &mut Vec<u8>) {
        assert_eq!(x.cols(), self.dim(), "batch buffer width");
        let batch = x.rows();
        y.clear();
        for r in 0..batch {
            let i = rng.next_below(self.len());
            x.row_mut(r).copy_from_slice(self.images.row(i));
            y.push(self.labels[i]);
        }
    }

    /// Class frequency counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &y in &self.labels {
            counts[y as usize] += 1;
        }
        counts
    }
}

/// Stateful minibatch sampler bound to a dataset (one per worker thread;
/// each worker seeds its own RNG stream, so parallel sampling is
/// contention-free, like the paper's per-thread OpenMP sampling).
pub struct Batcher<'a> {
    data: &'a Dataset,
    rng: SmallRng64,
    x: Matrix,
    y: Vec<u8>,
}

impl<'a> Batcher<'a> {
    /// Creates a sampler yielding `batch`-sized minibatches.
    pub fn new(data: &'a Dataset, batch: usize, seed: u64) -> Self {
        assert!(batch > 0, "batch size must be positive");
        Batcher {
            data,
            rng: SmallRng64::new(seed),
            x: Matrix::zeros(batch, data.dim()),
            y: Vec::with_capacity(batch),
        }
    }

    /// Draws the next minibatch, returning views valid until the next call.
    pub fn next_batch(&mut self) -> (&Matrix, &[u8]) {
        self.data.sample_batch(&mut self.rng, &mut self.x, &mut self.y);
        (&self.x, &self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let images = Matrix::from_fn(n, 3, |r, c| (r * 3 + c) as f32);
        let labels = (0..n).map(|i| (i % 4) as u8).collect();
        Dataset::new(images, labels, 4)
    }

    #[test]
    fn invariants_enforced() {
        let d = toy(8);
        assert_eq!(d.len(), 8);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.class_counts(), vec![2, 2, 2, 2]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_rejected() {
        Dataset::new(Matrix::zeros(1, 2), vec![5], 4);
    }

    #[test]
    fn head_takes_prefix() {
        let d = toy(10);
        let h = d.head(4);
        assert_eq!(h.len(), 4);
        assert_eq!(h.images.row(2), d.images.row(2));
        assert_eq!(h.labels, &d.labels[..4]);
    }

    #[test]
    fn split_partitions_samples() {
        let d = toy(10);
        let (tr, te) = d.train_test_split(0.3);
        assert_eq!(tr.len(), 7);
        assert_eq!(te.len(), 3);
        assert_eq!(te.images.row(0), d.images.row(7));
    }

    #[test]
    fn sample_batch_draws_valid_rows() {
        let d = toy(5);
        let mut rng = SmallRng64::new(1);
        let mut x = Matrix::zeros(16, 3);
        let mut y = Vec::new();
        d.sample_batch(&mut rng, &mut x, &mut y);
        assert_eq!(y.len(), 16);
        for (r, &label) in y.iter().enumerate() {
            // Every sampled row must be an exact copy of some source row.
            let first = x.row(r)[0];
            let src = (first as usize) / 3;
            assert!(src < 5);
            assert_eq!(x.row(r), d.images.row(src));
            assert_eq!(label, d.labels[src]);
        }
    }

    #[test]
    fn batcher_is_deterministic_per_seed() {
        let d = toy(20);
        let mut b1 = Batcher::new(&d, 4, 9);
        let mut b2 = Batcher::new(&d, 4, 9);
        for _ in 0..5 {
            let (x1, y1) = b1.next_batch();
            let y1 = y1.to_vec();
            let x1 = x1.clone();
            let (x2, y2) = b2.next_batch();
            assert_eq!(x1.as_slice(), x2.as_slice());
            assert_eq!(y1, y2);
        }
    }

    #[test]
    fn batchers_with_different_seeds_differ() {
        let d = toy(50);
        let mut b1 = Batcher::new(&d, 8, 1);
        let mut b2 = Batcher::new(&d, 8, 2);
        let (_, y1) = b1.next_batch();
        let y1 = y1.to_vec();
        let (_, y2) = b2.next_batch();
        assert_ne!(y1, y2, "different streams should diverge immediately");
    }
}
