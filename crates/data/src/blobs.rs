//! Gaussian-mixture classification data ("blobs").
//!
//! A fast, low-dimensional stand-in used by unit/integration tests and the
//! quickstart example: `k` spherical Gaussians with well-separated means.
//! Linearly separable for small `spread`, so even a tiny MLP reaches low
//! loss in a few hundred SGD iterations — ideal for asserting convergence
//! behaviour quickly.

use crate::dataset::Dataset;
use lsgd_tensor::{Matrix, SmallRng64};

/// Generates `n` samples from `k` Gaussian blobs in `dim` dimensions.
///
/// Class means are placed deterministically on a scaled hypercube pattern;
/// `spread` is the within-class standard deviation (default sensible value
/// is ~0.3 with unit-separated means).
pub fn gaussian_blobs(n: usize, dim: usize, k: usize, spread: f32, seed: u64) -> Dataset {
    assert!(k >= 2, "need at least two classes");
    assert!(dim >= 1, "need at least one dimension");
    let mut rng = SmallRng64::new(seed);

    // Deterministic, well-separated means: class c points 2.5 along
    // coordinate (c mod dim); when classes outnumber dimensions, an extra
    // offset along coordinate 0 keeps every pair ≥ 2.5 apart.
    const SEP: f32 = 2.5;
    let means: Vec<Vec<f32>> = (0..k)
        .map(|c| {
            (0..dim)
                .map(|j| {
                    let mut v = 0.0;
                    if j == c % dim {
                        v += SEP;
                    }
                    if j == 0 {
                        v += SEP * (c / dim) as f32;
                    }
                    v
                })
                .collect()
        })
        .collect();

    let mut images = Matrix::zeros(n, dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        let row = images.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            *v = means[c][j] + rng.next_normal() * spread;
        }
        labels.push(c as u8);
    }
    Dataset::new(images, labels, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_balance() {
        let d = gaussian_blobs(90, 5, 3, 0.2, 1);
        assert_eq!(d.len(), 90);
        assert_eq!(d.dim(), 5);
        assert_eq!(d.class_counts(), vec![30, 30, 30]);
    }

    #[test]
    fn classes_are_separated() {
        let d = gaussian_blobs(200, 4, 2, 0.1, 2);
        // Empirical class means must be well separated in feature space.
        let mut means = [[0.0f32; 4]; 2];
        for i in 0..d.len() {
            let c = d.labels[i] as usize;
            for (m, &v) in means[c].iter_mut().zip(d.images.row(i)) {
                *m += v / 100.0;
            }
        }
        let dist = lsgd_tensor::ops::dist2_sq(&means[0], &means[1]).sqrt();
        assert!(dist > 2.0, "class means only {dist} apart");
    }

    #[test]
    fn many_classes_few_dims_still_separate() {
        // k = 5 classes in dim = 2: the overflow offset must keep all
        // pairwise mean distances positive.
        let d = gaussian_blobs(500, 2, 5, 0.05, 9);
        let mut means = [[0.0f32; 2]; 5];
        let counts = d.class_counts();
        for i in 0..d.len() {
            let c = d.labels[i] as usize;
            for (m, &v) in means[c].iter_mut().zip(d.images.row(i)) {
                *m += v / counts[c] as f32;
            }
        }
        for a in 0..5 {
            for b in (a + 1)..5 {
                let dist = lsgd_tensor::ops::dist2_sq(&means[a], &means[b]).sqrt();
                assert!(dist > 1.0, "classes {a},{b} means only {dist} apart");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = gaussian_blobs(30, 3, 3, 0.3, 5);
        let b = gaussian_blobs(30, 3, 3, 0.3, 5);
        assert_eq!(a.images.as_slice(), b.images.as_slice());
    }

    #[test]
    #[should_panic]
    fn rejects_single_class() {
        gaussian_blobs(10, 2, 1, 0.1, 0);
    }
}
