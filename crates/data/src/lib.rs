#![warn(missing_docs)]
//! # lsgd-data — datasets for the Leashed-SGD experiments
//!
//! The paper evaluates on MNIST (60,000 28×28 hand-written digits,
//! minibatch 512). This environment has no network access, so the primary
//! dataset here is [`synth_digits`]: a procedural generator that renders
//! digit-like glyphs from per-class stroke skeletons with randomised
//! affine jitter, stroke thickness and pixel noise. It produces any number
//! of samples, deterministically under a seed, in the exact MNIST format
//! (28×28 grayscale in `[0,1]`, 10 classes) — preserving the non-convex
//! multi-class image-classification loss surface and the gradient cost
//! profile of the paper's workloads. See DESIGN.md for the substitution
//! rationale.
//!
//! Also provided for the convex experiments and fast tests:
//!
//! * [`blobs`] — Gaussian mixture classification in arbitrary dimension.
//! * [`regression`] — (sparse) linear-regression instances, the workload
//!   class for which HOGWILD!-style algorithms were originally analysed.
//! * [`sparse_logreg`] — high-dimensional sparse logistic regression with
//!   power-law (text-like) token frequencies, the workload exercising the
//!   sharded dirty-shard publication path.

pub mod blobs;
pub mod dataset;
pub mod regression;
pub mod sparse_logreg;
pub mod synth_digits;

pub use dataset::{Batcher, Dataset};
pub use sparse_logreg::SparseLogReg;
pub use synth_digits::SynthDigits;
