//! High-dimensional sparse logistic regression with power-law features —
//! the text-classification-like workload the ROADMAP's "sparse logistic
//! regression at scale" item asks for.
//!
//! Each sample is a synthetic "document": a handful of token draws from a
//! Zipf (power-law) distribution over a `dim`-sized vocabulary, turned
//! into a log-tf, L2-normalised bag-of-words row. Labels come from a
//! ground-truth separating vector `w*` through a logistic link, so the
//! instance is genuinely learnable and `w*` gives a reference accuracy.
//! Rows are stored CSR-style (`offsets`/`indices`/`values`) with strictly
//! ascending indices per row — exactly the `(index, value)` shape the
//! sharded dirty-shard publication path consumes.

use lsgd_tensor::SmallRng64;

/// A sparse binary-classification instance `y ~ Bernoulli(σ(margin·x·w*))`
/// with CSR rows and known ground truth.
#[derive(Clone)]
pub struct SparseLogReg {
    /// Column indices, strictly ascending within each row.
    indices: Vec<u32>,
    /// Feature values aligned with `indices`.
    values: Vec<f32>,
    /// Row start offsets into `indices`/`values`, length `n + 1`.
    offsets: Vec<usize>,
    /// Binary labels (0 / 1), length `n`.
    pub labels: Vec<u8>,
    /// Vocabulary size (parameter dimension).
    dim: usize,
    /// The generating separator `w*` (for reference accuracy checks).
    pub w_star: Vec<f32>,
}

impl SparseLogReg {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature (parameter) dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The sparse row `i` as `(indices, values)` slices.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Mean nonzeros per row.
    pub fn avg_nnz(&self) -> f64 {
        self.indices.len() as f64 / self.len().max(1) as f64
    }

    /// The linear margin `x_i · theta` (sparse dot product).
    pub fn margin(&self, i: usize, theta: &[f32]) -> f32 {
        let (idx, val) = self.row(i);
        idx.iter()
            .zip(val)
            .map(|(&j, &v)| v * theta[j as usize])
            .sum()
    }

    /// Mean logistic loss of `theta` over the full dataset (numerically
    /// stable form).
    pub fn logloss(&self, theta: &[f32]) -> f64 {
        let mut total = 0.0f64;
        for i in 0..self.len() {
            let z = self.margin(i, theta) as f64;
            let y = self.labels[i] as f64;
            // max(z,0) - z·y + ln(1 + e^{-|z|})
            total += z.max(0.0) - z * y + (-z.abs()).exp().ln_1p();
        }
        total / self.len().max(1) as f64
    }

    /// Classification accuracy of `theta` (margin sign vs. label).
    pub fn accuracy(&self, theta: &[f32]) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let correct = (0..self.len())
            .filter(|&i| (self.margin(i, theta) > 0.0) == (self.labels[i] == 1))
            .count();
        correct as f32 / self.len() as f32
    }
}

/// Cumulative (unnormalised) Zipf weights over `dim` ranks:
/// `cdf[k] = Σ_{j=0..=k} 1/(j+1)^exponent`. Shared by the generator and
/// the publication benches so "power-law indices" always means the same
/// distribution.
pub fn zipf_cdf(dim: usize, exponent: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(dim);
    let mut acc = 0.0f64;
    for k in 0..dim {
        acc += 1.0 / ((k + 1) as f64).powf(exponent);
        cdf.push(acc);
    }
    cdf
}

/// Draws one rank from the distribution described by a [`zipf_cdf`]
/// (inverse-CDF via binary search).
pub fn zipf_draw(cdf: &[f64], rng: &mut SmallRng64) -> usize {
    let total = *cdf.last().expect("non-empty cdf");
    let u = rng.next_f64() * total;
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// The Zipf exponent used by [`sparse_logreg`] (classic text-like decay).
pub const ZIPF_EXPONENT: f64 = 1.1;

/// Generates `n` samples over a `dim`-token vocabulary with roughly
/// `avg_nnz` tokens per document, deterministically under `seed`.
///
/// Token draws follow a Zipf distribution with exponent ≈ 1.1 (classic
/// text-like frequencies: a few head tokens appear in most documents, a
/// long tail almost never), counts become log-tf values, and each row is
/// L2-normalised so margins are O(1) regardless of document length.
///
/// # Panics
/// Panics if `n == 0`, `dim == 0`, or `avg_nnz` is 0 or exceeds `dim`.
pub fn sparse_logreg(n: usize, dim: usize, avg_nnz: usize, seed: u64) -> SparseLogReg {
    assert!(n > 0 && dim > 0, "need samples and a vocabulary");
    assert!(avg_nnz > 0 && avg_nnz <= dim, "avg_nnz in 1..=dim");
    let mut rng = SmallRng64::new(seed);
    let w_star: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();

    let cdf = zipf_cdf(dim, ZIPF_EXPONENT);

    let margin_scale = 6.0f32; // strong but not deterministic separation
    let mut indices = Vec::with_capacity(n * avg_nnz);
    let mut values = Vec::with_capacity(n * avg_nnz);
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut labels = Vec::with_capacity(n);
    let mut draws: Vec<u32> = Vec::new();
    for _ in 0..n {
        // Document length uniform in [avg/2, 3·avg/2] (≥ 1).
        let len = (avg_nnz / 2 + rng.next_below(avg_nnz + 1)).max(1);
        draws.clear();
        for _ in 0..len {
            draws.push(zipf_draw(&cdf, &mut rng) as u32);
        }
        draws.sort_unstable();
        // Collapse repeated tokens into log-tf values.
        let row_start = values.len();
        let mut k = 0usize;
        while k < draws.len() {
            let tok = draws[k];
            let mut count = 1usize;
            while k + count < draws.len() && draws[k + count] == tok {
                count += 1;
            }
            indices.push(tok);
            values.push(1.0 + (count as f32).ln());
            k += count;
        }
        // L2-normalise the row.
        let norm = values[row_start..]
            .iter()
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
            .max(1e-12);
        for v in &mut values[row_start..] {
            *v /= norm;
        }
        offsets.push(indices.len());
        // Label through the logistic link on the ground-truth margin.
        let z: f32 = indices[row_start..]
            .iter()
            .zip(&values[row_start..])
            .map(|(&j, &v)| v * w_star[j as usize])
            .sum();
        let p = 1.0 / (1.0 + (-margin_scale * z).exp());
        labels.push(u8::from(rng.next_f32() < p));
    }
    SparseLogReg {
        indices,
        values,
        offsets,
        labels,
        dim,
        w_star,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SparseLogReg {
        sparse_logreg(500, 512, 12, 7)
    }

    #[test]
    fn rows_are_sorted_unique_and_bounded() {
        let d = small();
        assert_eq!(d.len(), 500);
        for i in 0..d.len() {
            let (idx, val) = d.row(i);
            assert!(!idx.is_empty(), "row {i} empty");
            assert_eq!(idx.len(), val.len());
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "row {i} unsorted");
            assert!(idx.iter().all(|&j| (j as usize) < d.dim()));
            let norm: f32 = val.iter().map(|v| v * v).sum();
            assert!((norm - 1.0).abs() < 1e-4, "row {i} norm {norm}");
        }
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let a = sparse_logreg(100, 256, 8, 3);
        let b = sparse_logreg(100, 256, 8, 3);
        assert_eq!(a.labels, b.labels);
        for i in 0..a.len() {
            assert_eq!(a.row(i), b.row(i));
        }
        let c = sparse_logreg(100, 256, 8, 4);
        assert_ne!(a.labels, c.labels, "different seed, different data");
    }

    #[test]
    fn token_frequencies_follow_a_power_law() {
        let d = sparse_logreg(2000, 1024, 16, 1);
        let mut freq = vec![0u32; d.dim()];
        for i in 0..d.len() {
            for &j in d.row(i).0 {
                freq[j as usize] += 1;
            }
        }
        let head: u32 = freq[..8].iter().sum();
        let mid: u32 = freq[256..264].iter().sum();
        let tail: u32 = freq[1016..].iter().sum();
        assert!(
            head > 20 * mid.max(1),
            "head tokens ({head}) should dwarf mid-rank tokens ({mid})"
        );
        assert!(
            mid > tail,
            "frequencies must keep decaying down the tail ({mid} vs {tail})"
        );
    }

    #[test]
    fn ground_truth_separates_and_zero_does_not() {
        let d = small();
        assert!(
            d.accuracy(&d.w_star) > 0.85,
            "w* accuracy {}",
            d.accuracy(&d.w_star)
        );
        // θ = 0: logloss is exactly ln 2, accuracy is chance-like.
        let zero = vec![0.0f32; d.dim()];
        assert!((d.logloss(&zero) - std::f64::consts::LN_2).abs() < 1e-9);
        assert!(d.logloss(&d.w_star) < d.logloss(&zero) * 0.8);
    }

    #[test]
    fn both_classes_appear() {
        let d = small();
        let pos = d.labels.iter().filter(|&&y| y == 1).count();
        assert!(pos > d.len() / 10 && pos < d.len() * 9 / 10, "pos {pos}");
    }
}
