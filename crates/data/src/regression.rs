//! Linear-regression instances, dense and sparse.
//!
//! HOGWILD! was originally analysed for *sparse* convex problems, where
//! uncoordinated component-wise updates rarely collide (paper §I/§VI).
//! These generators let the examples and benches reproduce that regime —
//! and contrast it with the dense non-convex DL regime the paper targets.

use lsgd_tensor::{Matrix, SmallRng64};

/// A least-squares problem instance `y ≈ X w*` with known ground truth.
#[derive(Clone)]
pub struct RegressionData {
    /// Design matrix `(n, dim)`.
    pub x: Matrix,
    /// Targets, length `n`.
    pub y: Vec<f32>,
    /// The generating weight vector `w*` (for recovery checks).
    pub w_star: Vec<f32>,
}

impl RegressionData {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Mean squared error of parameters `w` on the full data.
    pub fn mse(&self, w: &[f32]) -> f32 {
        assert_eq!(w.len(), self.dim());
        let mut total = 0.0f64;
        for i in 0..self.len() {
            let pred = lsgd_tensor::ops::dot(self.x.row(i), w);
            let e = (pred - self.y[i]) as f64;
            total += e * e;
        }
        (total / self.len().max(1) as f64) as f32
    }

    /// The least-squares gradient of one sample: `2 (xᵀw - y) x`, written
    /// into `grad` (dense).
    pub fn sample_grad(&self, i: usize, w: &[f32], grad: &mut [f32]) {
        let row = self.x.row(i);
        let err = 2.0 * (lsgd_tensor::ops::dot(row, w) - self.y[i]);
        for (g, &xi) in grad.iter_mut().zip(row) {
            *g = err * xi;
        }
    }
}

/// Dense instance: `x ~ N(0,1)^dim`, `w* ~ N(0,1)`, `y = x·w* + noise`.
pub fn dense_regression(n: usize, dim: usize, noise_std: f32, seed: u64) -> RegressionData {
    let mut rng = SmallRng64::new(seed);
    let w_star: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
    let mut x = Matrix::zeros(n, dim);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let row = x.row_mut(i);
        for v in row.iter_mut() {
            *v = rng.next_normal();
        }
        let t = lsgd_tensor::ops::dot(row, &w_star) + rng.next_normal() * noise_std;
        y.push(t);
    }
    RegressionData { x, y, w_star }
}

/// Sparse instance: each sample touches only `nnz` random coordinates —
/// the gradient-sparsity regime where HOGWILD!'s analysis applies.
pub fn sparse_regression(
    n: usize,
    dim: usize,
    nnz: usize,
    noise_std: f32,
    seed: u64,
) -> RegressionData {
    assert!(nnz <= dim, "nnz must not exceed dim");
    let mut rng = SmallRng64::new(seed);
    let w_star: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
    let mut x = Matrix::zeros(n, dim);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let row = x.row_mut(i);
        for _ in 0..nnz {
            let j = rng.next_below(dim);
            row[j] = rng.next_normal();
        }
        let t = lsgd_tensor::ops::dot(row, &w_star) + rng.next_normal() * noise_std;
        y.push(t);
    }
    RegressionData { x, y, w_star }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_has_near_zero_mse() {
        let d = dense_regression(200, 8, 0.0, 1);
        assert!(d.mse(&d.w_star) < 1e-6);
    }

    #[test]
    fn zero_weights_have_high_mse() {
        let d = dense_regression(200, 8, 0.0, 2);
        assert!(d.mse(&[0.0; 8]) > 0.5);
    }

    #[test]
    fn noise_raises_ground_truth_mse() {
        let d = dense_regression(2000, 4, 0.5, 3);
        let mse = d.mse(&d.w_star);
        assert!((mse - 0.25).abs() < 0.08, "expected ~noise², got {mse}");
    }

    #[test]
    fn sparse_rows_have_bounded_support() {
        let d = sparse_regression(100, 50, 3, 0.0, 4);
        for i in 0..d.len() {
            let nnz = d.x.row(i).iter().filter(|&&v| v != 0.0).count();
            assert!(nnz <= 3, "row {i} has {nnz} nonzeros");
        }
    }

    #[test]
    fn sample_grad_is_zero_at_optimum_noiseless() {
        let d = dense_regression(50, 6, 0.0, 5);
        let mut g = vec![0.0f32; 6];
        d.sample_grad(7, &d.w_star, &mut g);
        assert!(g.iter().all(|v| v.abs() < 1e-4), "{g:?}");
    }

    #[test]
    fn sgd_on_regression_recovers_w_star() {
        let d = dense_regression(500, 5, 0.01, 6);
        let mut w = vec![0.0f32; 5];
        let mut g = vec![0.0f32; 5];
        let mut rng = SmallRng64::new(7);
        for _ in 0..4000 {
            let i = rng.next_below(d.len());
            d.sample_grad(i, &w, &mut g);
            lsgd_tensor::ops::sgd_step(&mut w, &g, 0.02);
        }
        let err = lsgd_tensor::ops::dist2_sq(&w, &d.w_star).sqrt();
        assert!(err < 0.15, "recovery error {err}");
    }
}
