//! The mutex-backed queue the workspace used before `queue::SegQueue`
//! existed, kept for two jobs: the **baseline** in the contended-queue
//! benchmark (`queue_throughput`), and the **oracle** in differential
//! tests (same FIFO semantics, trivially correct implementation).

use std::collections::VecDeque;
use std::sync::Mutex;

/// Unbounded MPMC FIFO queue: a `Mutex<VecDeque>` with the same API as
/// [`crate::SegQueue`]. Thread-safe and FIFO, but every operation takes
/// the lock — this is exactly the hot-path synchronisation the lock-free
/// queue removes.
pub struct MutexSegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> MutexSegQueue<T> {
    /// Creates an empty queue.
    pub const fn new() -> Self {
        MutexSegQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes `value` onto the back of the queue.
    pub fn push(&self, value: T) {
        self.lock().push_back(value);
    }

    /// Pops from the front of the queue, `None` if empty.
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Default for MutexSegQueue<T> {
    fn default() -> Self {
        MutexSegQueue::new()
    }
}

impl<T> std::fmt::Debug for MutexSegQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutexSegQueue")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::MutexSegQueue;

    #[test]
    fn fifo_order() {
        let q = MutexSegQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
