//! Exponential backoff for contended atomic retry loops.

use std::hint;
use std::thread;

/// Bounded exponential backoff: spin-hint for the first few retries,
/// then interleave `yield_now` so an oversubscribed box (more runnable
/// threads than cores) lets the thread we are waiting on actually run.
///
/// The two phases matter for different failure shapes: `spin()` after a
/// lost CAS keeps the cache line hot when the winner is on another core,
/// while `snooze()` while waiting on *another thread's pending step*
/// (e.g. a claimed-but-unwritten slot) must eventually yield, or a
/// single-core scheduler could starve the very thread being waited on.
pub struct Backoff {
    step: u32,
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// Fresh backoff at the shortest delay.
    #[inline]
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Backs off after losing a race another thread *won* (progress was
    /// made system-wide): spin only, growing exponentially.
    #[inline]
    pub fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(SPIN_LIMIT) {
            hint::spin_loop();
        }
        if self.step <= SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// Backs off while waiting for another thread to *complete a started
    /// step*: spins briefly, then yields the timeslice so the awaited
    /// thread can be scheduled.
    ///
    /// Under the model checker every `snooze` yields immediately: the
    /// scheduler deprioritizes this thread until the awaited one has
    /// run, which is what keeps wait loops from generating unbounded
    /// schedules (spinning would never let the model make progress —
    /// there is no preemption inside a model thread's turn).
    #[inline]
    pub fn snooze(&mut self) {
        if lsgd_check::model_active() {
            lsgd_check::thread::yield_now();
            return;
        }
        if self.step <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                hint::spin_loop();
            }
        } else {
            thread::yield_now();
        }
        if self.step <= YIELD_LIMIT {
            self.step += 1;
        }
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_steps_are_bounded() {
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        assert!(b.step <= SPIN_LIMIT + 1);
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.snooze();
        }
        assert!(b.step <= YIELD_LIMIT + 1);
    }
}
