//! Lock-free concurrency primitives for the Leashed-SGD reproduction.
//!
//! The paper's headline property is lock-freedom *end to end*: the
//! ParameterVector publication protocol is CAS-based, and the buffer
//! free-lists behind it must not reintroduce a lock on the hot
//! allocation/recycle path. This crate provides:
//!
//! * [`SegQueue`] — an unbounded, lock-free, MPMC FIFO queue built as a
//!   Michael–Scott-style linked list of fixed-size segments with
//!   per-segment atomic indices and CAS-only push/pop. Its reclamation
//!   scheme (safe under concurrent poppers) is documented in
//!   [`queue`]'s module docs.
//! * [`MutexSegQueue`] — the mutex-backed `VecDeque` implementation that
//!   previously stood in for the queue, kept as the comparison baseline
//!   for the contended-queue benchmark and as a semantics oracle in
//!   differential tests.
//!
//! This crate depends on nothing but `std` so every other workspace
//! member (including the vendored `crossbeam` shim) can build on it.

#![warn(missing_docs)]

pub mod backoff;
pub mod mutex_queue;
pub mod queue;

pub use mutex_queue::MutexSegQueue;
pub use queue::SegQueue;
