//! A lock-free, unbounded, MPMC FIFO queue (segmented Michael–Scott).
//!
//! # Structure
//!
//! The queue is a singly linked list of fixed-size **segments**
//! ([`SEG_CAP`] slots each), in the style of Michael & Scott's two-pointer
//! queue lifted from nodes-of-one to nodes-of-many: a `head` cursor
//! (segment pointer + monotone slot index) for poppers and a `tail`
//! cursor for pushers. Push claims the next tail index with one CAS,
//! writes its value into the claimed slot, then flags the slot WRITTEN.
//! Pop claims the next head index with one CAS, awaits the slot's WRITTEN
//! flag, takes the value, then flags the slot CONSUMED. The thread whose
//! claim fills a segment allocates/installs the successor segment; both
//! cursors then hop segment boundaries without ever touching a lock.
//!
//! Indices are global (never reset per segment) and strictly monotone, so
//! every `(segment, slot)` pair is claimed by exactly one pusher and one
//! popper over the queue's lifetime — segments are **one-shot**, never
//! reused, which is what makes the CAS on the cursor index ABA-free.
//!
//! # Reclamation (why freeing segments under concurrent poppers is safe)
//!
//! A segment may only be freed once no thread can ever dereference it
//! again. Rather than a global epoch scheme, reclamation rides on the
//! per-slot state machine (`0 → WRITTEN → WRITTEN|CONSUMED`), exploiting
//! two facts:
//!
//! 1. **Access is bracketed by slot claims.** A popper dereferences a
//!    segment only between *winning the head-index CAS for a slot in it*
//!    and *setting that slot's CONSUMED bit* (its last touch of the
//!    segment). A pusher's last touch is setting WRITTEN, and CONSUMED
//!    can only follow WRITTEN, so a slot whose CONSUMED bit is set has
//!    been fully vacated by both its pusher and its popper.
//! 2. **Each slot is claimed exactly once per side** (monotone global
//!    indices, one-shot segments).
//!
//! The popper of a segment's **last** slot initiates teardown: it scans
//! the segment's slots, and for each one either observes CONSUMED
//! (that slot's popper is gone for good — by 1 and 2 it can never come
//! back) or atomically sets an ABANDONED bit in the slot's state. A
//! popper that later finishes such a slot sees ABANDONED when it sets
//! CONSUMED and *takes over* the teardown, continuing the scan from the
//! next slot. Whoever completes the scan — the initiator, if every slot
//! was already CONSUMED, or the last straggling popper otherwise — frees
//! the segment. Exactly one thread can complete the scan (each handoff
//! transfers responsibility via a single atomic RMW on a slot's state),
//! and by construction it does so only after every slot is CONSUMED,
//! i.e. after the last possible dereference. The teardown initiator
//! itself holds the only other reference path (the head cursor), which
//! it has already advanced past the segment before initiating.
//!
//! No locks, no timestamps, no deferred-free lists: memory is bounded by
//! live elements plus at most one retiring segment per in-flight popper.
//!
//! # Progress
//!
//! Push and pop are CAS-only; a failed cursor CAS always means another
//! thread's push/pop succeeded, so the system as a whole makes progress
//! (lock-freedom). Two bounded waits exist, the same ones the published
//! `crossbeam` SegQueue has: a popper awaiting its claimed slot's WRITTEN
//! flag, and a cursor awaiting a successor segment mid-installation. Both
//! wait on a *specific already-claimed step* of another thread and spin
//! with [`Backoff::snooze`], which yields the timeslice so the awaited
//! thread runs even on an oversubscribed box. The buffer-pool caller
//! additionally never blocks on an empty queue: `pop` returns `None`
//! immediately when head catches tail.
//!
//! # Memory ordering contract (call sites rely on this)
//!
//! `push(v)` **releases** and the `pop()` that returns `v` **acquires**:
//! every write the pusher made before `push` — including plain
//! non-atomic writes to memory reachable through `v`, such as the
//! contents of a buffer whose address is queued — happens-before
//! anything the popper does after `pop`. The edge is the pusher's
//! `Release` store of WRITTEN into the slot state paired with the
//! popper's `Acquire` wait on it. `lsgd_core`'s `BufferPool` depends on
//! this to hand raw buffer addresses between threads without other
//! synchronisation.

use crate::backoff::Backoff;
use lsgd_check::annotate;
use lsgd_check::sync::{fence, AtomicPtr, AtomicUsize, Ordering, UnsafeCell};
use std::mem::MaybeUninit;

/// Slots per segment. One less than [`LAP`] so that, per segment lap,
/// index offset `SEG_CAP` is a reserved "cursor is mid-hop to the next
/// segment" state distinguishable from every claimable slot.
///
/// Under `--cfg lsgd_model` the capacity drops to 3 so model tests hit
/// segment boundaries (successor install, teardown handoff) within a
/// handful of operations instead of 31.
pub const SEG_CAP: usize = if cfg!(lsgd_model) { 3 } else { 31 };

/// Indices advance by `LAP` per segment (offset `SEG_CAP` is the hop
/// marker; see [`SEG_CAP`]).
const LAP: usize = SEG_CAP + 1;

/// Slot state bit: the pusher has finished writing the value.
const WRITTEN: usize = 1;
/// Slot state bit: the popper has finished taking the value.
const CONSUMED: usize = 2;
/// Slot state bit: segment teardown reached this slot while its popper
/// was still mid-read; that popper continues the teardown.
const ABANDONED: usize = 4;

/// Cursor indices are shifted left by one; the freed-up low bit is used
/// on the **head** index (only — the tail's stays 0) as a hint that a
/// successor segment is already installed past the head's current one,
/// letting poppers skip the empty-check against the tail.
const SHIFT: usize = 1;
const HAS_NEXT: usize = 1;

/// One value cell plus its state machine.
struct Slot<T> {
    value: UnsafeCell<MaybeUninit<T>>,
    /// Combination of [`WRITTEN`] / [`CONSUMED`] / [`ABANDONED`].
    state: AtomicUsize,
}

impl<T> Slot<T> {
    /// Spins until the pusher that claimed this slot lands its value.
    fn await_written(&self) {
        let mut backoff = Backoff::new();
        while self.state.load(Ordering::Acquire) & WRITTEN == 0 {
            backoff.snooze();
        }
    }
}

/// A one-shot block of [`SEG_CAP`] slots in the segment list.
struct Segment<T> {
    /// Successor segment, installed by the pusher that claims the last
    /// slot; null until then.
    next: AtomicPtr<Segment<T>>,
    slots: [Slot<T>; SEG_CAP],
}

impl<T> Segment<T> {
    /// A fresh segment with null `next` and all-zero slot states.
    fn new_boxed() -> Box<Segment<T>> {
        // SAFETY: `AtomicPtr`, `AtomicUsize`, and `MaybeUninit<T>` are
        // all valid when zero-initialised, hence so is `Segment<T>`.
        unsafe { Box::new(MaybeUninit::<Segment<T>>::zeroed().assume_init()) }
    }

    /// Spins until the successor segment is installed.
    fn await_next(&self) -> *mut Segment<T> {
        let mut backoff = Backoff::new();
        loop {
            let next = self.next.load(Ordering::Acquire);
            if !next.is_null() {
                return next;
            }
            backoff.snooze();
        }
    }

    /// Continues (or initiates, with `start == 0`) teardown of `seg`
    /// from slot `start`: frees the segment once every slot is observed
    /// CONSUMED, handing responsibility to a straggling popper otherwise.
    ///
    /// # Safety
    /// `seg` must be fully popped (head cursor advanced past it) and the
    /// caller must hold teardown responsibility: it is either the popper
    /// of the segment's last slot (initiation) or a popper that just
    /// observed ABANDONED on its own slot (handoff).
    unsafe fn teardown(seg: *mut Segment<T>, start: usize) {
        // The last slot never needs an ABANDONED handoff: its popper is
        // the teardown initiator, so it is already past its read.
        for i in start..SEG_CAP - 1 {
            let slot = &(*seg).slots[i];
            // If the slot's popper is still mid-read, flag the slot and
            // delegate the rest of the teardown to that popper.
            if slot.state.load(Ordering::Acquire) & CONSUMED == 0
                && slot.state.fetch_or(ABANDONED, Ordering::AcqRel) & CONSUMED == 0
            {
                return;
            }
        }
        // Every slot is CONSUMED: no thread can touch `seg` again.
        annotate::retire(seg as usize, std::mem::size_of::<Segment<T>>());
        drop(Box::from_raw(seg));
    }
}

/// A queue cursor: a monotone slot index (shifted, low bit = HAS_NEXT on
/// the tail side) plus the segment that index currently falls in.
struct Cursor<T> {
    index: AtomicUsize,
    segment: AtomicPtr<Segment<T>>,
}

/// Pad the two cursors to distinct cache lines: pushers and poppers
/// otherwise false-share one line and every CAS invalidates both sides.
#[repr(align(128))]
struct CachePadded<T>(T);

/// An unbounded lock-free MPMC FIFO queue (drop-in for
/// `crossbeam::queue::SegQueue`). See the module docs for the algorithm,
/// reclamation argument, and memory-ordering contract.
pub struct SegQueue<T> {
    head: CachePadded<Cursor<T>>,
    tail: CachePadded<Cursor<T>>,
}

// SAFETY: values are moved in by value and out by value; all shared
// internal state is atomics plus slots governed by the claim protocol
// (each slot has one writer then one reader, ordered by WRITTEN).
unsafe impl<T: Send> Send for SegQueue<T> {}
unsafe impl<T: Send> Sync for SegQueue<T> {}

impl<T> SegQueue<T> {
    /// Creates an empty queue. The first segment is allocated lazily by
    /// the first push, so `new` is allocation-free and `const`.
    pub const fn new() -> Self {
        SegQueue {
            head: CachePadded(Cursor {
                index: AtomicUsize::new(0),
                segment: AtomicPtr::new(std::ptr::null_mut()),
            }),
            tail: CachePadded(Cursor {
                index: AtomicUsize::new(0),
                segment: AtomicPtr::new(std::ptr::null_mut()),
            }),
        }
    }

    /// Pushes `value` onto the back of the queue.
    pub fn push(&self, value: T) {
        let mut backoff = Backoff::new();
        let mut tail = self.tail.0.index.load(Ordering::Acquire);
        let mut seg = self.tail.0.segment.load(Ordering::Acquire);
        // Pre-allocated successor, carried across CAS retries so a lost
        // race does not leak or re-allocate it.
        let mut next_seg: Option<Box<Segment<T>>> = None;

        loop {
            let offset = (tail >> SHIFT) % LAP;
            if offset == SEG_CAP {
                // Another pusher claimed the last slot and is installing
                // the successor segment; wait for the cursor to hop.
                backoff.snooze();
                tail = self.tail.0.index.load(Ordering::Acquire);
                seg = self.tail.0.segment.load(Ordering::Acquire);
                continue;
            }

            // About to claim the last slot: have the successor ready so
            // the install happens promptly after the claim.
            if offset + 1 == SEG_CAP && next_seg.is_none() {
                next_seg = Some(Segment::new_boxed());
            }

            if seg.is_null() {
                // First-ever push: race to install the initial segment.
                let first = Box::into_raw(Segment::new_boxed());
                // ORDERING: failure side is Relaxed — the loser only
                // reclaims its own never-published allocation and
                // re-reads the cursors with Acquire below.
                if self
                    .tail
                    .0
                    .segment
                    .compare_exchange(seg, first, Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    annotate::fresh(first as usize, std::mem::size_of::<Segment<T>>());
                    self.head.0.segment.store(first, Ordering::Release);
                    seg = first;
                } else {
                    // SAFETY: `first` never escaped; reclaim it whole.
                    next_seg = Some(unsafe { Box::from_raw(first) });
                    tail = self.tail.0.index.load(Ordering::Acquire);
                    seg = self.tail.0.segment.load(Ordering::Acquire);
                    continue;
                }
            }

            let new_tail = tail + (1 << SHIFT);
            // ORDERING: SeqCst on the claim CAS pairs with the SeqCst
            // fence in pop's empty check — a pop that still sees
            // head == tail after its fence is guaranteed no push
            // completed a claim before the pop's head load.
            match self.tail.0.index.compare_exchange_weak(
                tail,
                new_tail,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                Ok(_) => unsafe {
                    // Claimed slot `offset` in `seg`. If it is the last
                    // one, install the successor before writing so other
                    // pushers stop spinning as soon as possible.
                    if offset + 1 == SEG_CAP {
                        let next = Box::into_raw(next_seg.take().unwrap());
                        annotate::fresh(next as usize, std::mem::size_of::<Segment<T>>());
                        // Hop the cursor over the reserved offset.
                        let next_index = new_tail.wrapping_add(1 << SHIFT);
                        self.tail.0.segment.store(next, Ordering::Release);
                        self.tail.0.index.store(next_index, Ordering::Release);
                        (*seg).next.store(next, Ordering::Release);
                    }
                    // Land the value, then publish it. This Release store
                    // is the producer half of the module-docs ordering
                    // contract.
                    let slot = &(*seg).slots[offset];
                    // SAFETY: this pusher won the claim CAS for `offset`,
                    // so it is the slot's only writer.
                    slot.value.with_mut(|p| p.write(MaybeUninit::new(value)));
                    #[cfg(not(lsgd_mutate_relaxed_written))]
                    slot.state.fetch_or(WRITTEN, Ordering::Release);
                    // ORDERING: deliberately wrong — this cfg exists so
                    // the model checker's mutation test can prove it
                    // detects the weakened publication (see
                    // crates/sync/tests/model_queue.rs).
                    #[cfg(lsgd_mutate_relaxed_written)]
                    slot.state.fetch_or(WRITTEN, Ordering::Relaxed);
                    return;
                },
                Err(current) => {
                    lsgd_trace::count(lsgd_trace::Counter::QueuePushRetry);
                    tail = current;
                    seg = self.tail.0.segment.load(Ordering::Acquire);
                    backoff.spin();
                }
            }
        }
    }

    /// Pops from the front of the queue; `None` if empty. Never blocks
    /// on an empty queue.
    pub fn pop(&self) -> Option<T> {
        // Injection seam: an armed `stall:pop` rule delays this popper
        // before it reads the head cursor (exercising slot-state races).
        lsgd_fault::point(lsgd_fault::Site::QueuePop);
        let mut backoff = Backoff::new();
        let mut head = self.head.0.index.load(Ordering::Acquire);
        let mut seg = self.head.0.segment.load(Ordering::Acquire);

        loop {
            let offset = (head >> SHIFT) % LAP;
            if offset == SEG_CAP {
                // The popper of the previous slot is mid-hop to the next
                // segment; wait for the cursor to land.
                backoff.snooze();
                head = self.head.0.index.load(Ordering::Acquire);
                seg = self.head.0.segment.load(Ordering::Acquire);
                continue;
            }

            let mut new_head = head + (1 << SHIFT);

            if new_head & HAS_NEXT == 0 {
                // Successor not known to exist: check emptiness against
                // the tail. A relaxed tail read may lag, but lagging only
                // *underestimates* tail — seeing `tail > head` therefore
                // proves the slot at `head` was already claimed by a
                // pusher, and claiming it is safe with no fence at all.
                // Only the "looks empty" answer needs certainty: there
                // the SeqCst fence (pairing with the SeqCst index CASes)
                // orders this re-read after the head load, so a push
                // that completed before the head load cannot be missed.
                // This keeps the fence off the hot non-empty path.
                // ORDERING: Relaxed tail reads are safe because lag only
                // underestimates (see the comment above); the SeqCst
                // fence pairs with the SeqCst claim CASes to make the
                // "looks empty" answer authoritative.
                let mut tail = self.tail.0.index.load(Ordering::Relaxed);
                if head >> SHIFT == tail >> SHIFT {
                    // ORDERING: the SeqCst fence pairs with the SeqCst
                    // claim CASes (see the comment above); the Relaxed
                    // re-read after it is then authoritative.
                    fence(Ordering::SeqCst);
                    // ORDERING: Relaxed — ordered by the fence above.
                    tail = self.tail.0.index.load(Ordering::Relaxed);
                    if head >> SHIFT == tail >> SHIFT {
                        lsgd_trace::count(lsgd_trace::Counter::QueueEmptyPop);
                        return None;
                    }
                }
                // Tail already left this segment → a successor exists;
                // remember that in the claimed index. (A lagging tail
                // read can only under-set this hint, which is safe: the
                // next pop just re-derives it the slow way.)
                if (head >> SHIFT) / LAP != (tail >> SHIFT) / LAP {
                    new_head |= HAS_NEXT;
                }
            }

            if seg.is_null() {
                // Tail is non-empty but the first segment is still being
                // installed by the first pusher.
                backoff.snooze();
                head = self.head.0.index.load(Ordering::Acquire);
                seg = self.head.0.segment.load(Ordering::Acquire);
                continue;
            }

            // ORDERING: SeqCst on the claim CAS pairs with the SeqCst
            // fence in the empty check above (same contract as the tail
            // CAS in push).
            match self.head.0.index.compare_exchange_weak(
                head,
                new_head,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                Ok(_) => unsafe {
                    // Claimed slot `offset` in `seg`. `seg` cannot be
                    // freed before this popper sets CONSUMED (reclamation
                    // argument in the module docs), so dereferencing it
                    // is safe from here to that store.
                    if offset + 1 == SEG_CAP {
                        // Last slot of the segment: hop the head cursor,
                        // then (below) initiate teardown.
                        let next = (*seg).await_next();
                        let mut next_index = (new_head & !HAS_NEXT).wrapping_add(1 << SHIFT);
                        // ORDERING: Relaxed — a lagging null read only
                        // under-sets the HAS_NEXT hint, which the next
                        // pop re-derives the slow way; never a
                        // correctness input.
                        if !(*next).next.load(Ordering::Relaxed).is_null() {
                            next_index |= HAS_NEXT;
                        }
                        self.head.0.segment.store(next, Ordering::Release);
                        self.head.0.index.store(next_index, Ordering::Release);
                    }
                    let slot = &(*seg).slots[offset];
                    slot.await_written();
                    // SAFETY: this popper won the claim CAS for `offset`
                    // and WRITTEN is set, so the value is initialised and
                    // this is its only reader; the read moves it out.
                    let value = slot.value.with_mut(|p| p.read()).assume_init();
                    if offset + 1 == SEG_CAP {
                        // Popper of the last slot initiates teardown; its
                        // own slot needs no CONSUMED mark (it *is* the
                        // initiator, per the reclamation argument).
                        Segment::teardown(seg, 0);
                    } else if slot.state.fetch_or(CONSUMED, Ordering::AcqRel) & ABANDONED != 0 {
                        // Teardown already swept past this slot and
                        // delegated to us; carry it forward.
                        Segment::teardown(seg, offset + 1);
                    }
                    return Some(value);
                },
                Err(current) => {
                    lsgd_trace::count(lsgd_trace::Counter::QueuePopRetry);
                    head = current;
                    seg = self.head.0.segment.load(Ordering::Acquire);
                    backoff.spin();
                }
            }
        }
    }

    /// Whether the queue is empty at the instant of the check.
    pub fn is_empty(&self) -> bool {
        // ORDERING: SeqCst puts both cursor reads in the single total
        // order with the SeqCst claim CASes, so the answer reflects a
        // real instant rather than two unrelated lagging reads.
        let head = self.head.0.index.load(Ordering::SeqCst);
        // ORDERING: SeqCst — see above.
        let tail = self.tail.0.index.load(Ordering::SeqCst);
        head >> SHIFT == tail >> SHIFT
    }

    /// Number of elements at the instant of a consistent index snapshot.
    pub fn len(&self) -> usize {
        loop {
            // ORDERING: SeqCst as in is_empty; the tail re-read below
            // additionally validates the pair as one snapshot.
            let mut tail = self.tail.0.index.load(Ordering::SeqCst);
            // ORDERING: SeqCst — see above.
            let mut head = self.head.0.index.load(Ordering::SeqCst);
            // Re-read to make sure the pair is a consistent snapshot.
            // ORDERING: SeqCst — validates the pair as one snapshot.
            if self.tail.0.index.load(Ordering::SeqCst) == tail {
                // Strip HAS_NEXT, then normalise mid-hop cursors (offset
                // SEG_CAP counts as the start of the next segment).
                tail &= !((1 << SHIFT) - 1);
                head &= !((1 << SHIFT) - 1);
                if (tail >> SHIFT) % LAP == SEG_CAP {
                    tail = tail.wrapping_add(1 << SHIFT);
                }
                if (head >> SHIFT) % LAP == SEG_CAP {
                    head = head.wrapping_add(1 << SHIFT);
                }
                let lap = (head >> SHIFT) / LAP;
                tail = tail.wrapping_sub((lap * LAP) << SHIFT);
                head = head.wrapping_sub((lap * LAP) << SHIFT);
                tail >>= SHIFT;
                head >>= SHIFT;
                // One index per lap is the reserved hop marker, not an
                // element.
                return tail - head - tail / LAP;
            }
        }
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        SegQueue::new()
    }
}

impl<T> std::fmt::Debug for SegQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegQueue").field("len", &self.len()).finish()
    }
}

impl<T> Drop for SegQueue<T> {
    fn drop(&mut self) {
        // Exclusive access (&mut self): walk head→tail dropping the
        // values still queued, freeing each segment as it is passed.
        let mut head = *self.head.0.index.get_mut() & !HAS_NEXT;
        let tail = *self.tail.0.index.get_mut() & !HAS_NEXT;
        let mut seg = *self.head.0.segment.get_mut();
        unsafe {
            while head != tail {
                let offset = (head >> SHIFT) % LAP;
                if offset < SEG_CAP {
                    let slot = &(*seg).slots[offset];
                    (*slot.value.get()).assume_init_drop();
                } else {
                    let next = *(*seg).next.get_mut();
                    annotate::retire(seg as usize, std::mem::size_of::<Segment<T>>());
                    drop(Box::from_raw(seg));
                    seg = next;
                }
                head = head.wrapping_add(1 << SHIFT);
            }
            if !seg.is_null() {
                annotate::retire(seg as usize, std::mem::size_of::<Segment<T>>());
                drop(Box::from_raw(seg));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_within_and_across_segments() {
        let q = SegQueue::new();
        // 5 * LAP elements crosses several segment boundaries.
        let n = 5 * LAP as u64;
        for i in 0..n {
            q.push(i);
        }
        assert_eq!(q.len(), n as usize);
        for i in 0..n {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_through_segment_hops() {
        let q = SegQueue::new();
        assert_eq!(q.len(), 0);
        for lap in 0..3usize {
            for i in 0..SEG_CAP {
                q.push(0u8);
                assert_eq!(q.len(), lap * SEG_CAP + i + 1);
            }
        }
        for i in (0..3 * SEG_CAP).rev() {
            q.pop().unwrap();
            assert_eq!(q.len(), i);
        }
    }

    #[test]
    fn empty_pop_is_none_not_blocking() {
        let q: SegQueue<u32> = SegQueue::new();
        assert_eq!(q.pop(), None);
        q.push(7);
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drop_releases_queued_values() {
        // Drop counting via Arc strong counts.
        let marker = Arc::new(());
        {
            let q = SegQueue::new();
            for _ in 0..100 {
                q.push(Arc::clone(&marker));
            }
            for _ in 0..40 {
                q.pop().unwrap();
            }
            assert_eq!(Arc::strong_count(&marker), 61);
        }
        assert_eq!(Arc::strong_count(&marker), 1, "queue drop leaks values");
    }

    #[test]
    fn interleaved_push_pop_stays_fifo() {
        let q = SegQueue::new();
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        // Irregular interleaving that repeatedly drains to empty.
        for round in 0..200u64 {
            for _ in 0..(round % 7) {
                q.push(next_push);
                next_push += 1;
            }
            for _ in 0..(round % 5) {
                if let Some(v) = q.pop() {
                    assert_eq!(v, next_pop);
                    next_pop += 1;
                }
            }
        }
        while let Some(v) = q.pop() {
            assert_eq!(v, next_pop);
            next_pop += 1;
        }
        assert_eq!(next_pop, next_push);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 40k-element stress loop: minutes under Miri, no extra coverage
    fn concurrent_mpmc_conserves_elements() {
        let q = Arc::new(SegQueue::new());
        let producers = 4u64;
        let per = 10_000u64;
        let popped: u64 = std::thread::scope(|s| {
            for t in 0..producers {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per {
                        q.push(t * per + i);
                    }
                });
            }
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut sum = 0u64;
                        let mut misses = 0u32;
                        while misses < 10_000 {
                            match q.pop() {
                                Some(v) => {
                                    sum += v;
                                    misses = 0;
                                }
                                None => {
                                    misses += 1;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        sum
                    })
                })
                .collect();
            consumers.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let leftover: u64 = std::iter::from_fn(|| q.pop()).sum();
        let expected: u64 = (0..producers * per).sum();
        assert_eq!(popped + leftover, expected);
    }
}
