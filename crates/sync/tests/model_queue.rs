//! Model checks for `SegQueue`: exactly-once FIFO delivery, segment
//! teardown/reclamation (no leak, no double free, no use-after-free),
//! and the mutation test proving the checker catches a weakened
//! publication ordering.
//!
//! Run with `RUSTFLAGS="--cfg lsgd_model" cargo test -p lsgd_sync --test
//! model_queue`. Under the model, `SEG_CAP == 3`, so a handful of
//! operations crosses segment boundaries and exercises successor
//! install and teardown handoff. The mutation test additionally needs
//! `--cfg lsgd_mutate_relaxed_written`, which flips the WRITTEN
//! `Release` store in `push` to `Relaxed`; the regular invariants are
//! compiled out under that cfg because they would (correctly) fail.
#![cfg(lsgd_model)]

use lsgd_check::thread;
use lsgd_sync::queue::SEG_CAP;
use lsgd_sync::SegQueue;
use std::sync::Arc;

/// Pops until a value arrives, yielding so the model scheduler runs the
/// producer instead of spinning this thread forever.
fn pop_blocking(q: &SegQueue<u64>) -> u64 {
    loop {
        if let Some(v) = q.pop() {
            return v;
        }
        thread::yield_now();
    }
}

/// One producer, one consumer, enough values to cross a segment
/// boundary: every value arrives exactly once, in order, across all
/// explored schedules.
#[cfg(not(lsgd_mutate_relaxed_written))]
#[test]
fn spsc_delivers_exactly_once_in_order() {
    let n = (SEG_CAP + 1) as u64;
    lsgd_check::model(move || {
        let q = Arc::new(SegQueue::new());
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || {
            for i in 0..n {
                q2.push(i);
            }
        });
        let mut got = Vec::with_capacity(n as usize);
        for _ in 0..n {
            got.push(pop_blocking(&q));
        }
        producer.join().unwrap();
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "lost, duplicated, or reordered");
        assert!(q.pop().is_none(), "queue must be empty after n pops");
    });
}

/// Two concurrent producers racing the tail claim and the successor
/// install; the consumer must see each producer's values exactly once
/// and in per-producer order.
#[cfg(not(lsgd_mutate_relaxed_written))]
#[test]
fn mpsc_conserves_and_orders_per_producer() {
    lsgd_check::model(|| {
        let q = Arc::new(SegQueue::new());
        let per = 2u64;
        let producers: Vec<_> = (0..2u64)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..per {
                        q.push(p * 100 + i);
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        for _ in 0..2 * per {
            got.push(pop_blocking(&q));
        }
        for p in producers {
            p.join().unwrap();
        }
        let mut a: Vec<u64> = got.iter().copied().filter(|v| *v < 100).collect();
        let mut b: Vec<u64> = got.iter().copied().filter(|v| *v >= 100).collect();
        assert_eq!(a.len() + b.len(), 2 * per as usize);
        // FIFO holds per producer even when pushes interleave.
        assert!(a.windows(2).all(|w| w[0] < w[1]), "producer 0 reordered: {a:?}");
        assert!(b.windows(2).all(|w| w[0] < w[1]), "producer 1 reordered: {b:?}");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, (0..per).collect::<Vec<_>>());
        assert_eq!(b, (100..100 + per).collect::<Vec<_>>());
    });
}

/// Two poppers draining a pre-filled queue across a segment boundary:
/// exercises the CONSUMED/ABANDONED teardown handoff. The checker's
/// region tracking turns any double free, use-after-free, or leaked
/// segment in any explored schedule into a failure.
#[cfg(not(lsgd_mutate_relaxed_written))]
#[test]
fn concurrent_poppers_hand_off_teardown_safely() {
    let n = SEG_CAP + 1;
    lsgd_check::model(move || {
        let q = Arc::new(SegQueue::new());
        for i in 0..n as u64 {
            q.push(i);
        }
        let per = n / 2;
        let poppers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || (0..per).map(|_| pop_blocking(&q)).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = poppers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n as u64).collect::<Vec<_>>(), "slot lost or duplicated");
        assert!(q.pop().is_none());
    });
}

/// THE mutation test: with `--cfg lsgd_mutate_relaxed_written`, push's
/// WRITTEN store is `Relaxed` instead of `Release`, so the popper's
/// value read has no happens-before edge to the pusher's value write.
/// The checker must report that as a data race — proving a green run of
/// the other tests actually depends on the ordering being `Release`.
#[cfg(lsgd_mutate_relaxed_written)]
#[test]
fn weakened_written_release_is_caught() {
    let report = lsgd_check::explore(lsgd_check::Config::default(), || {
        let q = Arc::new(SegQueue::new());
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push(7u64));
        assert_eq!(pop_blocking(&q), 7);
        let _ = producer.join();
    });
    let failure = report
        .failure
        .expect("the Release→Relaxed mutation must be detected");
    assert!(
        failure.message.contains("data race"),
        "expected a data-race report, got: {}",
        failure.message
    );
    assert!(!failure.seed.is_empty(), "failure must carry a replay seed");
}
