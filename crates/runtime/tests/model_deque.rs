//! Model checks for the runtime's seq-claim work-stealing deque: no task is
//! lost or duplicated across owner pops racing concurrent steals (including
//! ring wraparound), and the mutation test proving the checker catches a
//! weakened steal-claim ordering.
//!
//! Run with `RUSTFLAGS="--cfg lsgd_model" cargo test -p lsgd_runtime --test
//! model_deque`. The mutation test additionally needs `--cfg
//! lsgd_mutate_relaxed_steal`, which flips the claim CAS's success ordering
//! from `Acquire` to `Relaxed` — severing the only happens-before edge from
//! the owner's payload write to the thief's payload read. The regular
//! invariant tests are compiled out under that cfg because they would
//! (correctly) fail.
#![cfg(lsgd_model)]

use lsgd_check::sync::{AtomicUsize, Ordering};
use lsgd_check::thread;
use lsgd_runtime::deque::Deque;
use std::sync::Arc;

/// Steals until the shared taken-counter reaches `total`, yielding so the
/// model scheduler runs the other claimants instead of spinning forever.
#[cfg(not(lsgd_mutate_relaxed_steal))]
fn steal_until(d: &Deque<u64>, taken: &AtomicUsize, total: usize) -> Vec<u64> {
    let mut got = Vec::new();
    // ORDERING: Relaxed — the counter only gates loop termination; the
    // values themselves synchronize through the deque's claim protocol.
    while taken.load(Ordering::Relaxed) < total {
        if let Some(v) = d.steal() {
            got.push(v);
            taken.fetch_add(1, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
        } else {
            thread::yield_now();
        }
    }
    got
}

/// Owner pushes then pops LIFO while one thief steals FIFO: across all
/// explored schedules every value is delivered exactly once, to exactly one
/// of the two.
#[cfg(not(lsgd_mutate_relaxed_steal))]
#[test]
fn owner_pop_vs_steal_delivers_exactly_once() {
    const N: usize = 3;
    lsgd_check::model(|| {
        let d = Arc::new(Deque::new(4));
        let taken = Arc::new(AtomicUsize::new(0));
        let thief = {
            let d = Arc::clone(&d);
            let taken = Arc::clone(&taken);
            thread::spawn(move || steal_until(&d, &taken, N))
        };
        // Owner: push everything, then drain LIFO. After `pop` returns
        // `None` every remaining value is claimed by the thief, so the
        // counter protocol below still terminates.
        let mut mine = Vec::new();
        unsafe {
            for i in 0..N as u64 {
                d.push(i).unwrap();
            }
            while let Some(v) = d.pop() {
                mine.push(v);
                // ORDERING: Relaxed — termination counter only.
                taken.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Owner's LIFO order: strictly descending.
        assert!(mine.windows(2).all(|w| w[0] > w[1]), "owner not LIFO: {mine:?}");
        let stolen = thief.join().unwrap();
        // Thief's FIFO order: strictly ascending.
        assert!(
            stolen.windows(2).all(|w| w[0] < w[1]),
            "thief not FIFO: {stolen:?}"
        );
        let mut all = mine;
        all.extend(stolen);
        all.sort_unstable();
        assert_eq!(
            all,
            (0..N as u64).collect::<Vec<_>>(),
            "task lost or duplicated"
        );
        assert!(unsafe { d.pop() }.is_none());
        assert!(d.steal().is_none());
    });
}

/// Two thieves racing each other (and the owner's pop) over the same
/// claim CASes: conservation must hold and each thief's haul stays
/// ascending (FIFO per thief).
#[cfg(not(lsgd_mutate_relaxed_steal))]
#[test]
fn two_thieves_conserve_tasks() {
    const N: usize = 3;
    lsgd_check::model(|| {
        let d = Arc::new(Deque::new(4));
        unsafe {
            for i in 0..N as u64 {
                d.push(i).unwrap();
            }
        }
        let taken = Arc::new(AtomicUsize::new(0));
        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let d = Arc::clone(&d);
                let taken = Arc::clone(&taken);
                thread::spawn(move || steal_until(&d, &taken, N))
            })
            .collect();
        // Owner competes for the newest task.
        let mut all = Vec::new();
        if let Some(v) = unsafe { d.pop() } {
            // ORDERING: Relaxed — termination counter only.
            taken.fetch_add(1, Ordering::Relaxed);
            assert_eq!(v, N as u64 - 1, "owner pop must take the newest");
            all.push(v);
        }
        for t in thieves {
            let got = t.join().unwrap();
            assert!(got.windows(2).all(|w| w[0] < w[1]), "thief not FIFO: {got:?}");
            all.extend(got);
        }
        all.sort_unstable();
        assert_eq!(
            all,
            (0..N as u64).collect::<Vec<_>>(),
            "task lost or duplicated"
        );
    });
}

/// Ring wraparound under contention: more values than the capacity-4 ring,
/// so slots recycle (FREE(i+cap)) while a thief is mid-scan. The recycle
/// Release / push Acquire pairing must keep reads and overwrites ordered.
#[cfg(not(lsgd_mutate_relaxed_steal))]
#[test]
fn wraparound_recycles_slots_safely() {
    const N: usize = 5; // > capacity ⇒ at least one slot hosts two generations
    lsgd_check::model(|| {
        let d = Arc::new(Deque::new(4));
        let taken = Arc::new(AtomicUsize::new(0));
        let thief = {
            let d = Arc::clone(&d);
            let taken = Arc::clone(&taken);
            thread::spawn(move || steal_until(&d, &taken, N))
        };
        let mut mine = Vec::new();
        let mut next = 0u64;
        while next < N as u64 {
            match unsafe { d.push(next) } {
                Ok(()) => next += 1,
                Err(_) => {
                    // Ring full: help drain, or let the thief make progress.
                    if let Some(v) = unsafe { d.pop() } {
                        mine.push(v);
                        // ORDERING: Relaxed — termination counter only.
                        taken.fetch_add(1, Ordering::Relaxed);
                    } else {
                        thread::yield_now();
                    }
                }
            }
        }
        let stolen = thief.join().unwrap();
        let mut all = mine;
        all.extend(stolen);
        all.sort_unstable();
        assert_eq!(
            all,
            (0..N as u64).collect::<Vec<_>>(),
            "task lost or duplicated across wraparound"
        );
    });
}

/// THE mutation test: with `--cfg lsgd_mutate_relaxed_steal`, the claim
/// CAS's success ordering is `Relaxed` instead of `Acquire`, so the thief's
/// payload read has no happens-before edge to the owner's payload write.
/// The checker must report that as a data race — proving the green runs of
/// the tests above actually depend on the ordering being `Acquire`.
#[cfg(lsgd_mutate_relaxed_steal)]
#[test]
fn weakened_steal_claim_is_caught() {
    let report = lsgd_check::explore(lsgd_check::Config::default(), || {
        let d = Arc::new(Deque::new(4));
        let d2 = Arc::clone(&d);
        let owner = thread::spawn(move || unsafe {
            d2.push(7u64).unwrap();
        });
        loop {
            if let Some(v) = d.steal() {
                assert_eq!(v, 7);
                break;
            }
            thread::yield_now();
        }
        let _ = owner.join();
    });
    let failure = report
        .failure
        .expect("the Acquire→Relaxed steal-claim mutation must be detected");
    assert!(
        failure.message.contains("data race"),
        "expected a data-race report, got: {}",
        failure.message
    );
    assert!(!failure.seed.is_empty(), "failure must carry a replay seed");
}
