//! Native stress for the work-stealing runtime: the schedule shapes the
//! model checker cannot reach (real preemption, oversubscription, cache
//! contention), with exactly-once accounting so any lost/duplicated task or
//! missed wakeup turns into an assertion failure or a watchdog abort.
//!
//! `LSGD_STRESS_THREADS` (the contention CI job sets it to 2× nproc) sizes
//! the runtime; nightly TSan runs this suite instrumented.
#![cfg(not(lsgd_model))]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lsgd_runtime::deque::Deque;
use lsgd_runtime::Runtime;

fn stress_threads() -> usize {
    lsgd_check::env::positive_usize("LSGD_STRESS_THREADS")
        .filter(|&n| n >= 2)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().max(2))
                .unwrap_or(4)
        })
}

/// Abort (via panic in a watchdog thread) if the stress body hangs — a
/// missed-wakeup livelock would otherwise stall CI for the full job timeout.
fn with_watchdog(limit: Duration, f: impl FnOnce()) {
    let done = Arc::new(AtomicUsize::new(0));
    let flag = Arc::clone(&done);
    let dog = std::thread::spawn(move || {
        let start = Instant::now();
        while flag.load(Ordering::Acquire) == 0 {
            if start.elapsed() > limit {
                eprintln!("steal_stress watchdog: body exceeded {limit:?}; aborting");
                std::process::abort();
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });
    f();
    done.store(1, Ordering::Release);
    dog.join().unwrap();
}

/// Raw deque under one owner (push/pop churn) and many thieves: every value
/// delivered exactly once, across ring wraparound, for millions of ops.
#[test]
fn deque_exactly_once_under_native_contention() {
    const N: usize = 200_000;
    let thieves = stress_threads().clamp(2, 8) - 1;
    with_watchdog(Duration::from_secs(120), || {
        let d = Arc::new(Deque::new(64));
        let taken = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..thieves {
                let d = Arc::clone(&d);
                let taken = Arc::clone(&taken);
                let sum = Arc::clone(&sum);
                s.spawn(move || {
                    while taken.load(Ordering::Acquire) < N {
                        if let Some(v) = d.steal() {
                            sum.fetch_add(v, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
                            taken.fetch_add(1, Ordering::AcqRel);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            let mut next = 0usize;
            while next < N {
                // SAFETY: this thread is the deque's only owner.
                unsafe {
                    match d.push(next) {
                        Ok(()) => next += 1,
                        Err(_) => {
                            if let Some(v) = d.pop() {
                                sum.fetch_add(v, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
                                taken.fetch_add(1, Ordering::AcqRel);
                            }
                        }
                    }
                }
            }
            while taken.load(Ordering::Acquire) < N {
                if let Some(v) = unsafe { d.pop() } {
                    sum.fetch_add(v, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
                    taken.fetch_add(1, Ordering::AcqRel);
                }
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), N); // ORDERING: Relaxed test tally; join/scope exit orders the read.
        assert_eq!(sum.load(Ordering::Relaxed), N * (N - 1) / 2); // ORDERING: Relaxed test tally; join/scope exit orders the read.
    });
}

/// Oversubscribed `parallel_for` churn: many external threads hammer one
/// runtime with nested splits; exactly-once accounting on every job.
#[test]
fn parallel_for_exactly_once_oversubscribed() {
    let threads = stress_threads();
    let rt = Runtime::new(threads);
    let callers = threads; // callers + workers ≈ 2× threads ⇒ oversubscribed
    with_watchdog(Duration::from_secs(120), || {
        std::thread::scope(|s| {
            for c in 0..callers {
                let rt = &rt;
                s.spawn(move || {
                    for round in 0..300 {
                        let ntasks = 1 + (c + round) % 33;
                        let hits: Vec<AtomicUsize> =
                            (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
                        rt.parallel_for(ntasks, &|i| {
                            hits[i].fetch_add(1, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
                        });
                        for (i, h) in hits.iter().enumerate() {
                            assert_eq!(
                                h.load(Ordering::Relaxed), // ORDERING: Relaxed test tally; join/scope exit orders the read.
                                1,
                                "caller {c} round {round} task {i}"
                            );
                        }
                    }
                });
            }
        });
    });
}

/// Trainer-shaped load: scoped long-lived tasks (each running nested
/// `parallel_for` splits) racing fine-grained external splits, repeated so
/// scope setup/teardown and the reservation protocol churn.
#[test]
fn scope_and_splits_share_workers() {
    let threads = stress_threads();
    let rt = Runtime::new(threads);
    with_watchdog(Duration::from_secs(120), || {
        for _ in 0..20 {
            let nworkers = 3usize;
            let sums: Vec<AtomicUsize> = (0..nworkers).map(|_| AtomicUsize::new(0)).collect();
            rt.scope(|s| {
                for sum in &sums {
                    s.spawn(|| {
                        for _ in 0..50 {
                            rt.parallel_for(16, &|i| {
                                sum.fetch_add(i + 1, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
                            });
                        }
                    });
                }
            });
            for sum in &sums {
                assert_eq!(sum.load(Ordering::Relaxed), 50 * 16 * 17 / 2); // ORDERING: Relaxed test tally; join/scope exit orders the read.
            }
        }
    });
}
