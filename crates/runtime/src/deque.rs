//! Seq-claim work-stealing deque: LIFO owner pop, FIFO steal.
//!
//! This is the per-worker task queue of the unified runtime. It keeps the
//! Chase–Lev *shape* — a single owner pushes and pops at the bottom while any
//! number of thieves steal from the top — but replaces Chase–Lev's
//! speculative slot read (read the value, then CAS `top` to find out whether
//! the read was allowed) with a **claim-then-read** protocol: every slot
//! carries a `seq` generation word, and whoever wins the slot's READY→CLAIMED
//! CAS is the unique thread that reads the value. Nobody ever touches a
//! payload it does not own, so the protocol contains no benign race — which
//! is exactly what lets the `lsgd_check` vector-clock race detector (and
//! TSan) verify it: any flagged access is a real bug, not a Chase–Lev
//! artifact to be waved away.
//!
//! Layout: a fixed power-of-two ring of `cap` slots. Indices `bottom`
//! (owner-only writes) and `top` (advisory steal frontier) increase
//! monotonically over the whole lifetime — they are never decremented, so
//! the usual Chase–Lev `b = b - 1` ABA subtleties cannot arise. Slot
//! `i & (cap-1)` holds generation `i`; its `seq` word encodes the state:
//!
//! | `seq` value | state     | meaning                                    |
//! |-------------|-----------|--------------------------------------------|
//! | `i`         | FREE      | empty, ready for the owner's push of gen i |
//! | `i + 1`     | READY     | value published, up for claim              |
//! | `i + 2`     | CLAIMED   | a claimant won the CAS and owns the value  |
//! | `i + cap`   | FREE(i+cap) | value consumed; slot recycled for gen i+cap |
//!
//! The owner pops LIFO by scanning downward from `bottom`; thieves steal
//! FIFO by scanning upward from `top`. Both claim a READY slot with the same
//! CAS; the loser just skips the index (a claimed index is dead forever).
//! `top` is purely advisory — thieves CAS it forward over dead indices to
//! bound future scans, but correctness never depends on its value.
//!
//! Single-owner contract: `push`/`pop` are `unsafe fn` — the caller must
//! guarantee at most one thread acts as owner at a time. The runtime
//! enforces this with per-slot claim flags whose Acquire/Release handoff
//! also transfers the owner-local scan cursors below. Under `--cfg
//! lsgd_model` the cursors live in checker-tracked `UnsafeCell`s, so a
//! violated owner contract shows up as a detected data race rather than
//! silent corruption.

use std::mem::MaybeUninit;

use lsgd_check::sync::{AtomicU64, Ordering, UnsafeCell};

/// Success ordering of the claim CAS that takes a slot READY→CLAIMED.
///
/// This is *the* happens-before edge of the whole deque: it pairs with the
/// publisher's `seq` Release store of READY, making the payload write
/// visible to the claimant before it reads the slot.
// ORDERING: Acquire — claim-CAS success pairs with push's Release store of
// READY on the same `seq` word; without it the claimant's value read races
// the owner's value write.
#[cfg(not(lsgd_mutate_relaxed_steal))]
const CLAIM_SUCCESS: Ordering = Ordering::Acquire;

/// Mutation sentinel (`--cfg lsgd_mutate_relaxed_steal`): deliberately drop
/// the Acquire on the claim CAS. This severs the only happens-before chain
/// from the owner's payload write to the thief's payload read, so the model
/// checker must report the read as a data race — proof the green model runs
/// depend on the real ordering.
// ORDERING: Relaxed — intentionally wrong; exists only so
// tests/model_deque.rs can assert the checker catches it.
#[cfg(lsgd_mutate_relaxed_steal)]
const CLAIM_SUCCESS: Ordering = Ordering::Relaxed;

struct Slot<T> {
    /// Generation/state word; see the module table.
    seq: AtomicU64,
    /// The payload. Written only by the owner (push); read only by the
    /// unique claim winner (owner pop or one thief).
    val: UnsafeCell<MaybeUninit<T>>,
}

/// Fixed-capacity work-stealing deque. See the module docs for the protocol.
pub struct Deque<T> {
    /// One past the newest pushed index. Owner-only writes.
    bottom: AtomicU64,
    /// Advisory steal frontier: every index below it is dead (claimed or
    /// consumed). Thieves CAS it forward; it never overtakes a live slot.
    top: AtomicU64,
    /// Owner-local: one past the highest index that may still be live.
    /// Protected by the single-owner contract, not by atomics.
    cursor: UnsafeCell<u64>,
    /// Owner-local: every index below this was verified dead by a previous
    /// owner scan. Bounds pop's downward scan so repeated empty pops do not
    /// rescan the same dead prefix.
    floor: UnsafeCell<u64>,
    mask: u64,
    slots: Box<[Slot<T>]>,
}

impl<T: Send> Deque<T> {
    /// A deque holding at most `capacity` (rounded up to a power of two,
    /// minimum 4) in-flight tasks.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(4);
        let slots = (0..cap as u64)
            .map(|i| Slot {
                seq: AtomicU64::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Deque {
            bottom: AtomicU64::new(0),
            top: AtomicU64::new(0),
            cursor: UnsafeCell::new(0),
            floor: UnsafeCell::new(0),
            mask: cap as u64 - 1,
            slots,
        }
    }

    /// Ring capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.mask as usize + 1
    }

    #[inline]
    fn slot(&self, i: u64) -> &Slot<T> {
        &self.slots[(i & self.mask) as usize]
    }

    /// Cheap emptiness hint for the scheduler's sleep decision. May report
    /// `true` for a deque whose remaining indices are all dead (stale
    /// `top`); thieves tidy `top` as they scan, so the hint converges to
    /// `false` once a steal attempt walks the dead suffix.
    pub fn maybe_nonempty(&self) -> bool {
        // ORDERING: Relaxed — both loads are advisory; a stale answer in
        // either direction only costs a redundant steal scan or a wakeup
        // that the publisher-side Dekker handshake in lib.rs backstops.
        self.top.load(Ordering::Relaxed) < self.bottom.load(Ordering::Relaxed)
    }

    /// Owner-only: publish `v` at the bottom. Returns `Err(v)` when the ring
    /// is full (the generation-`i - cap` value has not been consumed yet).
    ///
    /// # Safety
    /// At most one thread may act as owner (call `push`/`pop`) at a time,
    /// and ownership handoff between threads must happen-before the new
    /// owner's first call.
    pub unsafe fn push(&self, v: T) -> Result<(), T> {
        // ORDERING: Relaxed — `bottom` is written only by the owner (us);
        // reading our own latest store needs no synchronization.
        let b = self.bottom.load(Ordering::Relaxed);
        let slot = self.slot(b);
        // ORDERING: Acquire — pairs with the claimant's Release store of
        // FREE(i+cap): observing the slot recycled guarantees the previous
        // generation's value *read* completed before we overwrite `val`.
        if slot.seq.load(Ordering::Acquire) != b {
            return Err(v); // ring full: generation b - cap still in flight
        }
        slot.val.with_mut(|p| unsafe { (*p).write(v) });
        // ORDERING: Release — publishes the `val` write above to whichever
        // thread wins the READY→CLAIMED CAS (pairs with CLAIM_SUCCESS).
        slot.seq.store(b + 1, Ordering::Release);
        // ORDERING: Relaxed — advisory upper bound for thieves' scans; the
        // per-slot `seq` protocol carries all synchronization. Deliberately
        // *not* Release: an Acquire load of `bottom` must never be what
        // publishes `val`, or the model-check mutation sentinel on the
        // claim CAS would be masked by this side channel.
        self.bottom.store(b + 1, Ordering::Relaxed);
        self.cursor.with_mut(|c| *c = b + 1);
        Ok(())
    }

    /// Owner-only: LIFO pop of the newest unclaimed task.
    ///
    /// # Safety
    /// Same single-owner contract as [`Deque::push`].
    pub unsafe fn pop(&self) -> Option<T> {
        let cap = self.mask + 1;
        let start = self.cursor.with(|c| *c);
        let floor = self.floor.with(|f| *f);
        let mut i = start;
        loop {
            // ORDERING: Relaxed — advisory lower bound; indices below `top`
            // are dead by construction, so a stale (small) value only makes
            // us scan slots we will find dead anyway.
            let t = self.top.load(Ordering::Relaxed).max(floor);
            if i <= t {
                // Everything in [t, start) was verified dead: remember it so
                // the next empty pop is O(1) instead of rescanning.
                self.cursor.with_mut(|c| *c = i);
                self.floor.with_mut(|f| *f = i);
                return None;
            }
            i -= 1;
            let slot = self.slot(i);
            // ORDERING: Relaxed — pre-screen only; the claim CAS below is
            // the synchronizing edge (and for the owner, our own push of
            // this value is already ordered by program order).
            let seq = slot.seq.load(Ordering::Relaxed);
            // ORDERING: claim CAS — success is CLAIM_SUCCESS (Acquire),
            // the only happens-before edge to the payload; failure is
            // Relaxed because a thief won the index and we touch no data.
            if seq == i + 1
                && slot
                    .seq
                    .compare_exchange(i + 1, i + 2, CLAIM_SUCCESS, Ordering::Relaxed)
                    .is_ok()
            {
                let v = slot.val.with(|p| unsafe { (*p).assume_init_read() });
                // ORDERING: Release — recycle the slot: pairs with push's
                // Acquire fullness check so our value read above
                // happens-before the next-generation overwrite.
                slot.seq.store(i + cap, Ordering::Release);
                self.cursor.with_mut(|c| *c = i);
                return Some(v);
            }
            // CLAIMED or consumed: the index is dead forever; keep scanning
            // downward. (The owner never tidies `top` — thieves do.)
        }
    }

    /// FIFO steal of the oldest unclaimed task. Any thread may call this.
    /// Returns `None` when no READY task is observable.
    pub fn steal(&self) -> Option<T> {
        let cap = self.mask + 1;
        // ORDERING: Relaxed — advisory frontier; staleness only costs a
        // redundant scan over dead slots.
        let mut i = self.top.load(Ordering::Relaxed);
        loop {
            // ORDERING: Relaxed — advisory upper bound. Deliberately *not*
            // Acquire: `bottom` must not carry the payload happens-before
            // edge (that is CLAIM_SUCCESS's job — see push's comment on why
            // this also matters for the mutation sentinel). The per-slot
            // `seq` check below re-validates anything we read here.
            let b = self.bottom.load(Ordering::Relaxed);
            if i >= b {
                return None;
            }
            let slot = self.slot(i);
            // ORDERING: Relaxed — pre-screen only; the claim CAS is the
            // synchronizing edge.
            let seq = slot.seq.load(Ordering::Relaxed);
            if seq == i + 1 {
                // ORDERING: claim CAS — success is CLAIM_SUCCESS (Acquire),
                // the only happens-before edge to the payload; failure is
                // Relaxed because another claimant won and we touch no data.
                if slot
                    .seq
                    .compare_exchange(i + 1, i + 2, CLAIM_SUCCESS, Ordering::Relaxed)
                    .is_ok()
                {
                    let v = slot.val.with(|p| unsafe { (*p).assume_init_read() });
                    // ORDERING: Release — recycle the slot; pairs with
                    // push's Acquire fullness check so our value read
                    // happens-before the next-generation overwrite.
                    slot.seq.store(i + cap, Ordering::Release);
                    // ORDERING: Relaxed — advisory tidy of the frontier so
                    // later scans skip this dead index; failure means
                    // another thief already advanced it.
                    let _ = self.top.compare_exchange(i, i + 1, Ordering::Relaxed, Ordering::Relaxed);
                    return Some(v);
                }
                // Lost the claim; reload `seq` to see the index die.
                continue;
            }
            if seq == i {
                // Generation i not pushed yet ⇒ we are at the true frontier
                // (the stale `b` we read ran ahead of the slot states).
                return None;
            }
            // CLAIMED or consumed: dead index. Tidy the frontier and move on.
            // ORDERING: Relaxed — advisory, as above.
            let _ = self.top.compare_exchange(i, i + 1, Ordering::Relaxed, Ordering::Relaxed);
            i += 1;
        }
    }
}

impl<T> Drop for Deque<T> {
    fn drop(&mut self) {
        // `&mut self` guarantees no owner or thief is in flight; drop every
        // READY (published, unclaimed) value. seq ≡ slot_index + 1 (mod cap)
        // is exactly the READY state of the slot's current generation.
        for (s, slot) in self.slots.iter_mut().enumerate() {
            // ORDERING: Relaxed — exclusive access via `&mut self`; the
            // thread that handed us the deque synchronized already.
            let seq = slot.seq.load(Ordering::Relaxed);
            if seq.wrapping_sub(s as u64) & self.mask == 1 {
                unsafe { (*slot.val.get()).assume_init_drop() };
            }
        }
    }
}

#[cfg(all(test, not(lsgd_model)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
    use std::sync::Arc;

    #[test]
    fn push_pop_is_lifo() {
        let d = Deque::new(8);
        unsafe {
            d.push(1).unwrap();
            d.push(2).unwrap();
            d.push(3).unwrap();
            assert_eq!(d.pop(), Some(3));
            assert_eq!(d.pop(), Some(2));
            d.push(4).unwrap();
            assert_eq!(d.pop(), Some(4));
            assert_eq!(d.pop(), Some(1));
            assert_eq!(d.pop(), None);
        }
    }

    #[test]
    fn steal_is_fifo() {
        let d = Deque::new(8);
        unsafe {
            for i in 0..5 {
                d.push(i).unwrap();
            }
        }
        assert_eq!(d.steal(), Some(0));
        assert_eq!(d.steal(), Some(1));
        unsafe { assert_eq!(d.pop(), Some(4)) };
        assert_eq!(d.steal(), Some(2));
        assert_eq!(d.steal(), Some(3));
        assert_eq!(d.steal(), None);
        unsafe { assert_eq!(d.pop(), None) };
    }

    #[test]
    fn full_ring_returns_err_until_consumed() {
        let d = Deque::new(4);
        unsafe {
            for i in 0..4 {
                d.push(i).unwrap();
            }
            assert_eq!(d.push(99), Err(99));
            // Consuming the *oldest* frees the slot the next push needs.
            assert_eq!(d.steal(), Some(0));
            d.push(4).unwrap();
            assert_eq!(d.push(99), Err(99));
        }
    }

    #[test]
    fn ring_wraps_across_many_generations() {
        let d = Deque::new(4);
        for round in 0u64..25 {
            unsafe {
                d.push(round * 2).unwrap();
                d.push(round * 2 + 1).unwrap();
                if round % 2 == 0 {
                    assert_eq!(d.pop(), Some(round * 2 + 1));
                    assert_eq!(d.steal(), Some(round * 2));
                } else {
                    assert_eq!(d.steal(), Some(round * 2));
                    assert_eq!(d.steal(), Some(round * 2 + 1));
                }
                assert_eq!(d.pop(), None);
            }
        }
    }

    #[test]
    fn drop_releases_unclaimed_values() {
        #[derive(Debug)]
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, StdOrdering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let d = Deque::new(8);
        unsafe {
            for _ in 0..5 {
                d.push(Counted(Arc::clone(&drops))).unwrap();
            }
            drop(d.pop()); // 1 dropped by us
        }
        drop(d.steal()); // 1 dropped by us
        assert_eq!(drops.load(StdOrdering::Relaxed), 2); // ORDERING: Relaxed test tally; join/scope exit orders the read.
        drop(d); // remaining 3 dropped by Deque::drop
        assert_eq!(drops.load(StdOrdering::Relaxed), 5); // ORDERING: Relaxed test tally; join/scope exit orders the read.
    }

    #[test]
    fn concurrent_owner_and_thieves_deliver_exactly_once() {
        const N: usize = 10_000;
        const THIEVES: usize = 3;
        let d = Arc::new(Deque::new(64));
        let seen = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..THIEVES {
                let d = Arc::clone(&d);
                let seen = Arc::clone(&seen);
                let sum = Arc::clone(&sum);
                s.spawn(move || {
                    while seen.load(StdOrdering::Acquire) < N {
                        if let Some(v) = d.steal() {
                            sum.fetch_add(v, StdOrdering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
                            seen.fetch_add(1, StdOrdering::AcqRel);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            // Owner: push all values, popping whenever the ring fills.
            let mut next = 0usize;
            while next < N {
                unsafe {
                    match d.push(next) {
                        Ok(()) => next += 1,
                        Err(_) => {
                            if let Some(v) = d.pop() {
                                sum.fetch_add(v, StdOrdering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
                                seen.fetch_add(1, StdOrdering::AcqRel);
                            }
                        }
                    }
                }
            }
            // Drain the tail alongside the thieves.
            while seen.load(StdOrdering::Acquire) < N {
                if let Some(v) = unsafe { d.pop() } {
                    sum.fetch_add(v, StdOrdering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
                    seen.fetch_add(1, StdOrdering::AcqRel);
                }
            }
        });
        assert_eq!(seen.load(StdOrdering::Relaxed), N); // ORDERING: Relaxed test tally; join/scope exit orders the read.
        assert_eq!(sum.load(StdOrdering::Relaxed), N * (N - 1) / 2); // ORDERING: Relaxed test tally; join/scope exit orders the read.
    }
}
