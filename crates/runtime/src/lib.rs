//! `lsgd_runtime` — the unified work-stealing runtime.
//!
//! One scheduler for both thread populations the repo used to run side by
//! side: long-lived trainer workers (previously `std::thread::scope` in
//! `lsgd_core::trainer`) and fine-grained intra-step GEMM/sample splits
//! (previously the condvar work-sharing pool in `lsgd_tensor::threadpool`).
//! Because both kinds of work execute on the *same* workers, m trainer
//! workers × GEMM fan-out can never oversubscribe the machine, and one knob
//! (`LSGD_THREADS`) sizes everything.
//!
//! # Architecture
//!
//! * **Workers and deques.** `Runtime::new(n)` spawns `n - 1` OS workers (the
//!   caller of `parallel_for` always participates, so `n` threads compute).
//!   Each worker permanently owns a seq-claim work-stealing deque
//!   ([`deque::Deque`]: LIFO owner pop, FIFO steal, model-checkable under
//!   `--cfg lsgd_model`); extra deque slots are claimed on demand by
//!   non-worker threads (the main thread, temp scope threads) when *they*
//!   call `parallel_for`.
//! * **`parallel_for` with caller participation.** The caller pushes the
//!   task indices onto its own deque, wakes sleepers, then pops LIFO while
//!   idle workers steal FIFO. The caller's wait loop runs tasks, so the
//!   serial case and the uncontended case stay fast; a full ring falls back
//!   to running the task inline. Nested `parallel_for` (a spawned trainer
//!   task splitting a GEMM) reuses the current thread's deque slot.
//! * **`Runtime::scope`.** Long-lived tasks (trainer workers, the monitor)
//!   are spawned into a scope. Scoped tasks are *guaranteed concurrent*: a
//!   task is queued to the runtime only when a sleeping worker is reserved
//!   for it, otherwise it gets a dedicated temporary thread — so
//!   barrier-style protocols between scope tasks cannot deadlock even on a
//!   single-core runtime. `scope()` joins and re-raises panics, like
//!   `std::thread::scope`.
//! * **Sleeping.** Idle workers park on a condvar behind an epoch counter.
//!   `parallel_for` publishers skip the lock entirely when nobody sleeps,
//!   using a SeqCst-fence Dekker handshake with the workers'
//!   idle-advertisement (`idle_hint`) so a publish and a park can never miss
//!   each other.
//!
//! # Determinism contract
//!
//! The runtime schedules *which thread* runs a task, never *what* the task
//! computes: `parallel_for(n, f)` always runs `f(0..n)` exactly once each,
//! and callers that need bitwise-reproducible results (the GEMM layer)
//! partition work into disjoint output rectangles with [`split_ranges`] and
//! reduce in ascending range order on the calling thread. Differential
//! suites (`gemm_differential`, `fastpath_differential`,
//! `prepacked_differential`) hold the serial ≡ parallel bitwise guarantee
//! across this runtime.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use lsgd_sync::backoff::Backoff;

pub mod deque;

use deque::Deque;

/// In-flight task bound per deque slot; overflow runs inline at the pusher.
const DEQUE_CAP: usize = 256;

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

/// One `parallel_for` call, stack-allocated in the caller's frame.
struct SplitJob {
    /// The task body. Lifetime-erased from the caller's `&dyn`; kept alive
    /// by the `pending` protocol below (the job frame does not return until
    /// `pending == 0`, and every runner's last touch is the decrement).
    f: &'static (dyn Fn(usize) + Sync),
    /// Tasks not yet finished. Runners decrement after running.
    pending: AtomicUsize,
    /// Set (before the decrement) by any runner whose task panicked.
    poisoned: AtomicBool,
}

/// A claim on one index of a [`SplitJob`]. Flows through the deques.
#[derive(Clone, Copy)]
struct Task {
    job: *const SplitJob,
    index: usize,
}

// SAFETY: the pointee is a stack frame that provably outlives every Task
// referring to it (the `pending` counter keeps the frame alive until all
// tasks ran), and SplitJob's interior is Sync.
unsafe impl Send for Task {}

/// Run one task: catch panics (they must not unwind into a scheduler loop),
/// record poison, then signal completion.
fn run_task(t: Task) {
    // SAFETY: `pending > 0` (we hold an undone task), so the job frame is
    // alive; see `unsafe impl Send for Task`.
    let job = unsafe { &*t.job };
    if catch_unwind(AssertUnwindSafe(|| (job.f)(t.index))).is_err() {
        // ORDERING: Relaxed — ordered before the caller's observation of
        // `pending == 0` by the AcqRel decrement below.
        job.poisoned.store(true, Ordering::Relaxed);
    }
    // ORDERING: AcqRel — the completion edge: Release publishes this task's
    // effects (and the poison flag) to the caller's Acquire load of zero;
    // Acquire chains earlier decrements so the final observer sees them all.
    job.pending.fetch_sub(1, Ordering::AcqRel);
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

struct SlotEntry {
    /// Exclusive-owner flag for the deque's single-owner contract.
    claimed: AtomicBool,
    deque: Deque<Task>,
}

/// State behind the sleep lock.
struct Hub {
    /// Bumped on every event sleepers could be waiting for (new scoped task,
    /// scoped-task completion, work published while someone advertised idle,
    /// shutdown).
    epoch: u64,
    /// Workers currently inside `Condvar::wait`.
    waiters: usize,
    /// Scoped tasks awaiting a reserved worker. `spawn` only queues here
    /// when `waiters > scoped.len()` — i.e. a sleeping worker is dedicated
    /// to every queued entry — which is what makes scoped tasks guaranteed
    /// concurrent (see module docs).
    scoped: VecDeque<ScopedTask>,
    shutdown: bool,
}

struct Shared {
    /// Process-unique id, so a thread-local slot claim can't leak across
    /// distinct runtimes.
    id: u64,
    /// Total compute threads (workers + participating caller).
    nthreads: usize,
    /// Worker-owned slots first (`0..nthreads-1`, claimed forever), then
    /// claim-on-demand slots for external `parallel_for` callers.
    slots: Box<[SlotEntry]>,
    hub: Mutex<Hub>,
    cv: Condvar,
    /// Mirror of `hub.waiters` readable without the lock; the Dekker
    /// handshake in `publish_wakeup`/`worker_loop` keeps it honest.
    idle_hint: AtomicUsize,
}

/// The work-stealing runtime. See module docs.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

thread_local! {
    /// (runtime id, slot index) this thread currently owns, if any.
    static CURRENT_SLOT: std::cell::Cell<Option<(u64, usize)>> =
        const { std::cell::Cell::new(None) };
}

fn next_runtime_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    // ORDERING: Relaxed — a pure id counter; uniqueness is all that matters.
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Runtime {
    /// A runtime computing on `threads` threads total: `threads - 1` spawned
    /// workers plus the participating caller. `Runtime::new(1)` spawns
    /// nothing and runs everything inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let nworkers = threads - 1;
        // Workers own the first nworkers slots; the rest serve external
        // callers (main thread, temp scope threads, nested cases).
        let nslots = if nworkers == 0 { 0 } else { 2 * threads };
        let shared = Arc::new(Shared {
            id: next_runtime_id(),
            nthreads: threads,
            slots: (0..nslots)
                .map(|i| SlotEntry {
                    claimed: AtomicBool::new(i < nworkers),
                    deque: Deque::new(DEQUE_CAP),
                })
                .collect(),
            hub: Mutex::new(Hub {
                epoch: 0,
                waiters: 0,
                scoped: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            idle_hint: AtomicUsize::new(0),
        });
        let workers = (0..nworkers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lsgd-rt-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("failed to spawn lsgd runtime worker")
            })
            .collect();
        Runtime { shared, workers }
    }

    /// Total compute threads (spawned workers + the participating caller).
    pub fn threads(&self) -> usize {
        self.shared.nthreads
    }

    /// Run `f(0)`, …, `f(ntasks - 1)` exactly once each, in parallel across
    /// the runtime's workers with the caller participating; returns when all
    /// are done. Serial (plain ascending loop on the caller) when the
    /// runtime has no workers or `ntasks <= 1`. If any task panics, panics
    /// after all tasks finished.
    pub fn parallel_for(&self, ntasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if ntasks == 0 {
            return;
        }
        if self.workers.is_empty() || ntasks == 1 {
            for i in 0..ntasks {
                f(i);
            }
            return;
        }
        let shared = &*self.shared;
        // Find our deque slot: workers/nested callers already own one;
        // external callers claim one for the duration of the call.
        let (slot_idx, temp_claim) = match CURRENT_SLOT.get() {
            Some((id, s)) if id == shared.id => (s, false),
            _ => match claim_slot(shared) {
                Some(s) => {
                    CURRENT_SLOT.set(Some((shared.id, s)));
                    (s, true)
                }
                // Every slot busy (wildly oversubscribed externals): the
                // serial fallback is always correct.
                None => {
                    for i in 0..ntasks {
                        f(i);
                    }
                    return;
                }
            },
        };
        // SAFETY: lifetime erasure — `job` (and the `&dyn` it captures) must
        // outlive every Task. Guaranteed by the wait loop below: this frame
        // does not return until `pending == 0`, and the decrement is each
        // runner's final access.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let job = SplitJob {
            f: f_static,
            pending: AtomicUsize::new(ntasks),
            poisoned: AtomicBool::new(false),
        };
        let deque = &shared.slots[slot_idx].deque;
        let mut pushed_any = false;
        for i in 0..ntasks {
            // SAFETY: we own slot `slot_idx` (permanent worker ownership or
            // the claim above), so we are the unique deque owner.
            if unsafe { deque.push(Task { job: &job, index: i }) }.is_err() {
                // Ring full — run inline; the LIFO pop below keeps draining
                // so this is rare and only means less parallelism.
                run_task(Task { job: &job, index: i });
            } else {
                pushed_any = true;
            }
        }
        if pushed_any {
            publish_wakeup(shared);
        }
        // Participate: drain our own deque LIFO; when it runs dry, wait for
        // thieves to finish the stolen tasks. A popped task may belong to an
        // *outer* nested job — running it here is correct (it only shortens
        // the outer frame's wait).
        let mut backoff = Backoff::new();
        loop {
            if let Some(t) = unsafe { deque.pop() } {
                run_task(t);
                backoff = Backoff::new();
                continue;
            }
            // ORDERING: Acquire — pairs with runners' AcqRel decrements so
            // observing zero makes every task's effects visible here.
            if job.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            backoff.snooze();
        }
        if temp_claim {
            CURRENT_SLOT.set(None);
            release_slot(shared, slot_idx);
        }
        // ORDERING: Relaxed — ordered by the Acquire load of zero above.
        if job.poisoned.load(Ordering::Relaxed) {
            panic!("lsgd_runtime::parallel_for: a task panicked");
        }
    }

    /// Structured concurrency for long-lived tasks (trainer workers, the
    /// monitor): every task spawned on the scope is guaranteed to run
    /// *concurrently* with the others (reserved sleeping worker or dedicated
    /// temp thread — never merely queued), and `scope` returns only after
    /// all of them finished. Task panics are re-raised here, after the scope
    /// fully quiesces, like `std::thread::scope`.
    pub fn scope<'env, F, R>(&'env self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let scope = Scope {
            rt: self,
            core: Arc::new(ScopeCore {
                pending: AtomicUsize::new(0),
                panicked: AtomicBool::new(false),
            }),
            temps: Mutex::new(Vec::new()),
            _scope: PhantomData,
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Must quiesce even when `f` panicked: spawned tasks borrow `'env`.
        scope.wait_all();
        for h in scope.temps.lock().unwrap().drain(..) {
            // Task panics were caught inside run_scoped; join can't fail.
            let _ = h.join();
        }
        // ORDERING: Acquire — pairs with the Release decrement in
        // run_scoped; wait_all saw zero, this makes the poison flag visible.
        let task_panicked = scope.core.panicked.load(Ordering::Acquire);
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(r) => {
                if task_panicked {
                    panic!("lsgd_runtime::scope: a spawned task panicked");
                }
                r
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        {
            let mut hub = self.shared.hub.lock().unwrap();
            hub.shutdown = true;
            hub.epoch += 1;
        }
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

struct ScopeCore {
    /// Scoped tasks not yet finished (incremented at spawn).
    pending: AtomicUsize,
    panicked: AtomicBool,
}

struct ScopedTask {
    f: Box<dyn FnOnce() + Send + 'static>,
    core: Arc<ScopeCore>,
}

/// Handle for spawning tasks inside [`Runtime::scope`]. Mirrors
/// `std::thread::Scope`: tasks may borrow from the enclosing environment.
pub struct Scope<'scope, 'env: 'scope> {
    rt: &'scope Runtime,
    core: Arc<ScopeCore>,
    temps: Mutex<Vec<std::thread::JoinHandle<()>>>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that runs concurrently with the scope body and all other
    /// scoped tasks. The task may borrow from `'env`; the borrow is released
    /// when `scope` returns.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        // ORDERING: Relaxed — incremented before the task is published
        // (queue push / thread spawn below are the publication edges), and
        // `wait_all` only runs after the scope closure returned, i.e. after
        // this call. No task can observe a transient zero.
        self.core.pending.fetch_add(1, Ordering::Relaxed);
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: lifetime erasure to ship the closure to a worker/thread.
        // `Scope::wait_all` (run unconditionally by `Runtime::scope`, even
        // on panic) blocks until the task finished, so the `'scope`/`'env`
        // borrows outlive the task's execution.
        let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        let task = ScopedTask {
            f: boxed,
            core: Arc::clone(&self.core),
        };
        let shared = &self.rt.shared;
        let mut hub = shared.hub.lock().unwrap();
        // Reservation protocol: queue to the runtime only if a sleeping
        // worker is free to dedicate itself (each queued scoped task is
        // matched 1:1 with a waiter). Otherwise — all workers busy, or a
        // 1-thread runtime — a dedicated temp thread keeps the concurrency
        // guarantee (trainer barrier protocols rely on it).
        if hub.waiters > hub.scoped.len() {
            hub.scoped.push_back(task);
            hub.epoch += 1;
            drop(hub);
            shared.cv.notify_all();
        } else {
            drop(hub);
            lsgd_trace::count(lsgd_trace::Counter::SpillThread);
            let shared = Arc::clone(&self.rt.shared);
            let handle = std::thread::Builder::new()
                .name("lsgd-rt-scoped".into())
                .spawn(move || run_scoped(&shared, task))
                .expect("failed to spawn scoped task thread");
            self.temps.lock().unwrap().push(handle);
        }
    }

    /// Block until every spawned task finished, stealing split tasks while
    /// waiting so a scope waiter never idles a core that has GEMM work.
    fn wait_all(&self) {
        let shared = &*self.rt.shared;
        loop {
            // ORDERING: Acquire — pairs with run_scoped's Release decrement;
            // zero here means every task's effects are visible.
            if self.core.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if let Some(t) = steal_any(shared) {
                run_task(t);
                continue;
            }
            let hub = shared.hub.lock().unwrap();
            // ORDERING: Acquire — re-check under the lock (completion bumps
            // the epoch under the same lock, so we cannot sleep through it).
            if self.core.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if has_split_work(shared) {
                continue; // stealable work appeared; drop the lock and take it
            }
            // Timeout because split-work publishers skip notify when no
            // *worker* advertised idle — a scope waiter is not counted in
            // idle_hint, so it backstops with a short poll.
            let (hub, _) = shared
                .cv
                .wait_timeout(hub, Duration::from_millis(1))
                .unwrap();
            drop(hub);
        }
    }
}

fn run_scoped(shared: &Shared, task: ScopedTask) {
    let ScopedTask { f, core } = task;
    if catch_unwind(AssertUnwindSafe(f)).is_err() {
        // ORDERING: Relaxed — ordered before the scope's observation of
        // `pending == 0` by the Release decrement below.
        core.panicked.store(true, Ordering::Relaxed);
    }
    // ORDERING: Release — completion edge: the scope caller's Acquire load
    // of zero sees every effect of this task (and the poison flag).
    core.pending.fetch_sub(1, Ordering::Release);
    // Wake the scope waiter (and anyone else parked on the epoch).
    let mut hub = shared.hub.lock().unwrap();
    hub.epoch += 1;
    drop(hub);
    shared.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Worker loop and wakeup
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared, me: usize) {
    CURRENT_SLOT.set(Some((shared.id, me)));
    loop {
        // Busy phase: drain our own deque LIFO, then steal FIFO.
        loop {
            // SAFETY: slot `me` is permanently claimed by this worker.
            while let Some(t) = unsafe { shared.slots[me].deque.pop() } {
                run_task(t);
            }
            match steal_any(shared) {
                Some(t) => run_task(t),
                None => break,
            }
        }
        // Idle phase.
        let mut hub = shared.hub.lock().unwrap();
        loop {
            if let Some(task) = hub.scoped.pop_front() {
                drop(hub);
                run_scoped(shared, task);
                break; // back to the busy phase
            }
            if hub.shutdown {
                return;
            }
            hub.waiters += 1;
            // ORDERING: Relaxed + SeqCst fence — Dekker handshake, sleeper
            // side: advertise idleness, then re-scan for work. Pairs with
            // the publisher's write-work → fence → read-hint sequence in
            // publish_wakeup: at least one of us must see the other.
            shared.idle_hint.store(hub.waiters, Ordering::Relaxed);
            // ORDERING: SeqCst fence — orders the advertise above before
            // the re-scan below; pairs with publish_wakeup's fence.
            fence(Ordering::SeqCst);
            if has_split_work(shared) {
                hub.waiters -= 1;
                // ORDERING: Relaxed — hint shrink; a stale larger value only
                // causes a spurious notify.
                shared.idle_hint.store(hub.waiters, Ordering::Relaxed);
                drop(hub);
                break; // back to the busy phase
            }
            lsgd_trace::count(lsgd_trace::Counter::Park);
            hub = shared.cv.wait(hub).unwrap();
            lsgd_trace::count(lsgd_trace::Counter::Unpark);
            hub.waiters -= 1;
            // ORDERING: Relaxed — as above.
            shared.idle_hint.store(hub.waiters, Ordering::Relaxed);
            // Loop: re-check scoped queue / shutdown / split work.
        }
    }
}

/// Publisher side of the Dekker handshake: after pushing split tasks, wake
/// sleepers iff any worker advertised idle. The common busy case costs one
/// fence + one load — no lock.
fn publish_wakeup(shared: &Shared) {
    // ORDERING: SeqCst fence + Relaxed load — publisher side of the Dekker
    // handshake (see worker_loop): our deque pushes precede the fence, so if
    // the sleeper's post-advertise re-scan missed them, this load must see
    // its idle_hint store.
    fence(Ordering::SeqCst);
    // ORDERING: Relaxed load — the SeqCst fence above makes the handshake
    // sound; a stale positive hint only costs a spurious lock + notify.
    if shared.idle_hint.load(Ordering::Relaxed) > 0 {
        let mut hub = shared.hub.lock().unwrap();
        hub.epoch += 1;
        drop(hub);
        shared.cv.notify_all();
    }
}

fn has_split_work(shared: &Shared) -> bool {
    shared.slots.iter().any(|s| s.deque.maybe_nonempty())
}

/// Steal one task from any slot's deque (FIFO within each victim).
fn steal_any(shared: &Shared) -> Option<Task> {
    lsgd_trace::count(lsgd_trace::Counter::StealAttempt);
    for entry in shared.slots.iter() {
        if let Some(t) = entry.deque.steal() {
            lsgd_trace::count(lsgd_trace::Counter::StealHit);
            return Some(t);
        }
    }
    lsgd_trace::count(lsgd_trace::Counter::StealMiss);
    None
}

/// Claim a free external slot (never a worker-owned one — those stay
/// claimed forever).
fn claim_slot(shared: &Shared) -> Option<usize> {
    for (i, entry) in shared.slots.iter().enumerate() {
        // ORDERING: Acquire on success — pairs with release_slot's Release
        // store: the previous external owner's deque cursor writes (plain
        // owner-local state) happen-before our first push/pop. Relaxed on
        // failure — we just try the next slot.
        if entry
            .claimed
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return Some(i);
        }
    }
    None
}

fn release_slot(shared: &Shared, idx: usize) {
    // ORDERING: Release — hand the deque's owner-local state to the next
    // claimant's Acquire CAS.
    shared.slots[idx].claimed.store(false, Ordering::Release);
}

// ---------------------------------------------------------------------------
// Handle, global runtime, sizing
// ---------------------------------------------------------------------------

/// How a compute layer reaches a runtime: the process-global one (default)
/// or an explicitly injected instance (tests, benchmarks, embedders).
/// Replaces the old `Option<Arc<ThreadPool>>` plumbing in `lsgd_nn`.
#[derive(Clone, Default)]
pub enum Handle {
    /// The process-global runtime, sized by `LSGD_THREADS` (see [`global`]).
    #[default]
    Global,
    /// An explicitly injected runtime.
    Owned(Arc<Runtime>),
}

impl Handle {
    /// The runtime this handle points at.
    pub fn get(&self) -> &Runtime {
        match self {
            Handle::Global => global(),
            Handle::Owned(rt) => rt,
        }
    }

    /// Convenience: `self.get().threads()`.
    pub fn threads(&self) -> usize {
        self.get().threads()
    }
}

impl From<Arc<Runtime>> for Handle {
    fn from(rt: Arc<Runtime>) -> Self {
        Handle::Owned(rt)
    }
}

impl From<Runtime> for Handle {
    fn from(rt: Runtime) -> Self {
        Handle::Owned(Arc::new(rt))
    }
}

impl std::fmt::Debug for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Handle::Global => write!(f, "Handle::Global"),
            Handle::Owned(rt) => write!(f, "Handle::Owned({} threads)", rt.threads()),
        }
    }
}

/// The process-global runtime. Sized by `LSGD_THREADS` (≥ 1), else by the
/// deprecated `LSGD_GEMM_THREADS` (one-time stderr warning), else by
/// `available_parallelism()`.
pub fn global() -> &'static Runtime {
    static GLOBAL: OnceLock<Runtime> = OnceLock::new();
    GLOBAL.get_or_init(|| Runtime::new(default_threads()))
}

fn default_threads() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The shared checked parser warns once on malformed/zero values; the
    // sizing precedence itself stays a pure function for tests.
    let (n, legacy) = size_from_env(
        lsgd_check::env::positive_usize("LSGD_THREADS"),
        lsgd_check::env::positive_usize("LSGD_GEMM_THREADS"),
        hw,
    );
    if legacy {
        static WARNED: AtomicBool = AtomicBool::new(false);
        // ORDERING: Relaxed — one-shot warning latch; emitting the warning
        // twice under a race would be harmless.
        if !WARNED.swap(true, Ordering::Relaxed) {
            eprintln!(
                "lsgd_runtime: LSGD_GEMM_THREADS is deprecated; \
                 set LSGD_THREADS={n} instead (one runtime now sizes both \
                 trainer workers and GEMM splits)"
            );
        }
    }
    n
}

/// Pure sizing rule, split out for tests: the primary knob wins, the
/// deprecated legacy knob is honored second (reported via the bool),
/// default last. Malformed/zero values arrive here as `None` — the
/// checked parser in `lsgd_check::env` already rejected and reported
/// them.
fn size_from_env(primary: Option<usize>, legacy: Option<usize>, default: usize) -> (usize, bool) {
    if let Some(n) = primary {
        return (n, false);
    }
    if let Some(n) = legacy {
        return (n, true);
    }
    (default, false)
}

// ---------------------------------------------------------------------------
// split_ranges (moved from lsgd_tensor::threadpool)
// ---------------------------------------------------------------------------

/// Split `0..n` into at most `max_tasks` contiguous near-equal ranges
/// (longer ranges first). Deterministic: callers that reduce per-range
/// partial results in ascending range order get bitwise-identical results
/// regardless of which threads ran which range — this is the foundation of
/// the serial ≡ parallel guarantee in the GEMM layer.
pub fn split_ranges(n: usize, max_tasks: usize) -> Vec<Range<usize>> {
    if n == 0 || max_tasks == 0 {
        return Vec::new();
    }
    let tasks = max_tasks.min(n);
    let base = n / tasks;
    let extra = n % tasks;
    let mut out = Vec::with_capacity(tasks);
    let mut start = 0;
    for t in 0..tasks {
        let len = base + usize::from(t < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(all(test, not(lsgd_model)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn runs_every_task_exactly_once() {
        let rt = Runtime::new(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        rt.parallel_for(64, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i}"); // ORDERING: Relaxed test tally; join/scope exit orders the read.
        }
    }

    #[test]
    fn single_thread_runtime_runs_inline() {
        let rt = Runtime::new(1);
        assert_eq!(rt.threads(), 1);
        let tid = std::thread::current().id();
        let ran = AtomicUsize::new(0);
        rt.parallel_for(8, &|_| {
            assert_eq!(std::thread::current().id(), tid);
            ran.fetch_add(1, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
        });
        assert_eq!(ran.load(Ordering::Relaxed), 8); // ORDERING: Relaxed test tally; join/scope exit orders the read.
    }

    #[test]
    fn runtime_survives_repeated_jobs() {
        let rt = Runtime::new(3);
        for round in 0..200 {
            let sum = AtomicUsize::new(0);
            rt.parallel_for(17, &|i| {
                sum.fetch_add(i + round, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
            });
            assert_eq!(sum.load(Ordering::Relaxed), 17 * 16 / 2 + 17 * round); // ORDERING: Relaxed test tally; join/scope exit orders the read.
        }
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let rt = Runtime::new(2);
        rt.parallel_for(0, &|_| panic!("must not run"));
    }

    #[test]
    fn more_tasks_than_deque_capacity_still_all_run() {
        let rt = Runtime::new(4);
        let n = DEQUE_CAP * 3 + 7;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        rt.parallel_for(n, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1)); // ORDERING: Relaxed test tally; join/scope exit orders the read.
    }

    #[test]
    fn task_panic_propagates_and_runtime_survives() {
        let rt = Runtime::new(4);
        let res = catch_unwind(AssertUnwindSafe(|| {
            rt.parallel_for(16, &|i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        // The runtime must still work after a poisoned job.
        let sum = AtomicUsize::new(0);
        rt.parallel_for(16, &|i| {
            sum.fetch_add(i, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
        });
        assert_eq!(sum.load(Ordering::Relaxed), 120); // ORDERING: Relaxed test tally; join/scope exit orders the read.
    }

    #[test]
    fn nested_parallel_for_completes() {
        let rt = Runtime::new(4);
        let total = AtomicUsize::new(0);
        rt.parallel_for(8, &|_| {
            rt.parallel_for(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64); // ORDERING: Relaxed test tally; join/scope exit orders the read.
    }

    #[test]
    fn scope_tasks_run_concurrently_even_oversubscribed() {
        // More scope tasks than threads: the reservation protocol must fall
        // back to temp threads so this barrier cannot deadlock.
        let rt = Runtime::new(2);
        let ntasks = 6;
        let barrier = Barrier::new(ntasks);
        rt.scope(|s| {
            for _ in 0..ntasks {
                s.spawn(|| {
                    barrier.wait();
                });
            }
        });
    }

    #[test]
    fn scope_tasks_can_use_parallel_for() {
        let rt = Runtime::new(4);
        let sums: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        rt.scope(|s| {
            for sum in &sums {
                s.spawn(|| {
                    rt.parallel_for(32, &|i| {
                        sum.fetch_add(i, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
                    });
                });
            }
        });
        for sum in &sums {
            assert_eq!(sum.load(Ordering::Relaxed), 32 * 31 / 2); // ORDERING: Relaxed test tally; join/scope exit orders the read.
        }
    }

    #[test]
    fn scope_propagates_task_panic_after_quiescing() {
        let rt = Runtime::new(2);
        let finished = AtomicUsize::new(0);
        let res = catch_unwind(AssertUnwindSafe(|| {
            rt.scope(|s| {
                s.spawn(|| panic!("task boom"));
                s.spawn(|| {
                    finished.fetch_add(1, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
                });
            });
        }));
        assert!(res.is_err());
        assert_eq!(finished.load(Ordering::Relaxed), 1); // ORDERING: Relaxed test tally; join/scope exit orders the read.
    }

    #[test]
    fn scope_returns_closure_value() {
        let rt = Runtime::new(2);
        let v = rt.scope(|s| {
            s.spawn(|| {});
            42
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn drop_joins_workers() {
        let rt = Runtime::new(4);
        let sum = AtomicUsize::new(0);
        rt.parallel_for(32, &|i| {
            sum.fetch_add(i, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
        });
        drop(rt); // must not hang
        assert_eq!(sum.load(Ordering::Relaxed), 32 * 31 / 2); // ORDERING: Relaxed test tally; join/scope exit orders the read.
    }

    #[test]
    fn external_threads_can_share_one_runtime() {
        let rt = Runtime::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let sum = AtomicUsize::new(0);
                        rt.parallel_for(16, &|i| {
                            sum.fetch_add(i, Ordering::Relaxed); // ORDERING: Relaxed test tally; join/scope exit orders the read.
                        });
                        assert_eq!(sum.load(Ordering::Relaxed), 120); // ORDERING: Relaxed test tally; join/scope exit orders the read.
                    }
                });
            }
        });
    }

    #[test]
    fn split_ranges_partitions_exactly() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for max_tasks in [1usize, 2, 3, 8, 1000] {
                let ranges = split_ranges(n, max_tasks);
                if n == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert!(ranges.len() <= max_tasks);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, n);
                // Longer ranges first, sizes differ by at most one.
                let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                assert!(lens.windows(2).all(|w| w[0] >= w[1]));
                assert!(lens[0] - lens[lens.len() - 1] <= 1);
            }
        }
    }

    #[test]
    fn size_from_env_precedence_and_deprecation() {
        // Primary knob wins, no deprecation flag. (Malformed/zero values
        // reach this function as `None` — `lsgd_check::env` rejects them
        // with a one-time warning.)
        assert_eq!(size_from_env(Some(3), Some(7), 8), (3, false));
        // Legacy knob honored when primary is absent — flagged.
        assert_eq!(size_from_env(None, Some(7), 8), (7, true));
        // Neither knob set: the default.
        assert_eq!(size_from_env(None, None, 6), (6, false));
    }

    #[test]
    fn handle_default_is_global() {
        let h = Handle::default();
        assert!(matches!(h, Handle::Global));
        assert_eq!(h.threads(), global().threads());
        let owned: Handle = Runtime::new(2).into();
        assert_eq!(owned.threads(), 2);
    }
}
