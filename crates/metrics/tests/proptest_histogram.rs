//! Property suite for the histogram quantile estimators: on arbitrary
//! (adversarial) sample sets, the reported quantile bounds must bracket
//! the true order statistics, and the log-bucketed bounds must stay
//! within their advertised ≈ 3% relative width. This is the contract the
//! `lsgd_trace` per-phase p50/p95/p99 reporting rests on.

use lsgd_metrics::{Histogram, LogHistogram};
use proptest::collection::vec;
use proptest::prelude::*;

/// Adversarial u64 samples: clusters at tiny values, geometric-bucket
/// boundaries, power-of-two straddles, and huge outliers — the shapes
/// that break naive bucketing. (The vendored proptest shim has no
/// `prop_oneof!`, so the cluster choice is a mapped selector.)
fn samples() -> impl Strategy<Value = Vec<u64>> {
    vec((0u64..6, 0u64..u64::MAX / 2), 1..200).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(which, raw)| match which {
                0 => raw % 64,                       // exact-bucket region
                1 => 62 + raw % 4,                   // first geometric boundary
                2 => 1_000 + raw % 100,              // mid-scale cluster
                3 => (1u64 << 20) - 2 + raw % 4,     // power-of-two straddle
                4 => raw,                            // anything
                _ => u64::MAX,                       // extreme outlier
            })
            .collect()
    })
}

/// The same rank convention both histogram `quantile` implementations
/// use: `round(q * (n - 1))`.
fn true_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// LogHistogram: `[lo, hi]` brackets the true order statistic at
    /// every probed quantile, with bounded relative width.
    #[test]
    fn log_histogram_bounds_true_quantiles(mut vals in samples(), qs in vec(0.0f64..1.0, 1..8)) {
        let mut h = LogHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in qs.into_iter().chain([0.0, 0.5, 0.95, 0.99, 1.0]) {
            let truth = true_rank(&vals, q);
            let (lo, hi) = h.quantile_bounds(q);
            prop_assert!(lo <= truth && truth <= hi,
                "q={q}: true {truth} outside [{lo}, {hi}]");
            // Advertised precision: one sub-bucket (1/32 relative), so
            // the conservative `quantile()` estimate never overstates the
            // truth by more than ~3% (plus the unit slack of bucket 32's
            // integer bounds).
            prop_assert!(hi - lo <= lo / 32 + 1, "q={q}: [{lo}, {hi}] too wide");
        }
        // Aggregates are exact regardless of bucketing.
        prop_assert_eq!(h.min(), vals[0]);
        prop_assert_eq!(h.max(), *vals.last().unwrap());
        prop_assert_eq!(h.count(), vals.len() as u64);
    }

    /// Unit-bin Histogram: below the cap the quantile is the exact order
    /// statistic; at or above it the estimate saturates at the cap
    /// (a lower bound on the truth).
    #[test]
    fn unit_histogram_quantile_is_exact_below_cap(mut vals in vec(0u64..2_000, 1..200), q in 0.0f64..1.0) {
        let cap = 1_000usize;
        let mut h = Histogram::new(cap);
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [q, 1.0] {
            let truth = true_rank(&vals, q);
            let est = h.quantile(q);
            if truth < cap as u64 {
                prop_assert_eq!(est, truth);
            } else {
                prop_assert!(est <= truth, "saturated estimate {est} must lower-bound {truth}");
                prop_assert!(est >= cap as u64);
            }
        }
    }
}
