//! Online (streaming) summary statistics.

/// Welford-style online mean/variance with min/max tracking.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n_total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        self.n = n_total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_observation_zero_variance() {
        let mut s = OnlineStats::new();
        s.record(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(1.0);
        a.record(2.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
    }
}
