//! Integer-bin histograms (staleness distributions, retry counts) and a
//! log-bucketed latency histogram for p99-grade tail reporting.

/// A histogram over non-negative integer values with unit-width bins up to
/// a cap; values beyond the cap land in an overflow bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    max_seen: u64,
}

impl Histogram {
    /// Creates a histogram with unit bins `0..cap` plus an overflow bin.
    pub fn new(cap: usize) -> Self {
        Histogram {
            bins: vec![0; cap],
            overflow: 0,
            count: 0,
            sum: 0,
            max_seen: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        if (v as usize) < self.bins.len() {
            self.bins[v as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += v as u128;
        self.max_seen = self.max_seen.max(v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest value observed.
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Count in unit bin `v` (not including overflow).
    pub fn bin(&self, v: usize) -> u64 {
        self.bins.get(v).copied().unwrap_or(0)
    }

    /// Observations beyond the bin cap.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate `q`-quantile (0..=1) from the binned counts; overflow
    /// observations are treated as `cap`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * (self.count as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (v, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen > target {
                return v as u64;
            }
        }
        self.bins.len() as u64
    }

    /// Merges another histogram into this one (bin caps must match).
    ///
    /// # Panics
    /// Panics if the bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin cap mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Non-empty `(value, count)` pairs, for printing distributions.
    pub fn nonzero_bins(&self) -> Vec<(u64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
            .collect()
    }

    /// Renders a compact ASCII bar chart of the distribution.
    pub fn ascii_chart(&self, width: usize) -> String {
        let peak = self.bins.iter().cloned().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (v, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat(((c as f64 / peak as f64) * width as f64).ceil() as usize);
            out.push_str(&format!("{v:>5} | {bar} {c}\n"));
        }
        if self.overflow > 0 {
            out.push_str(&format!("  >={} | {}\n", self.bins.len(), self.overflow));
        }
        out
    }
}

/// Sub-bucket resolution of [`LogHistogram`]: each power-of-two range is
/// split into `2^SUB_BITS` linear sub-buckets, bounding the relative
/// error of any quantile estimate by `2^-SUB_BITS` (≈ 3.1%).
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Number of buckets needed to cover the full `u64` range at `SUB_BITS`
/// resolution: `SUB` exact unit buckets for `0..SUB`, then `SUB`
/// sub-buckets per remaining exponent `SUB_BITS..=63`.
const LOG_BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// An HDR-style histogram over `u64` values (latencies in nanoseconds)
/// with geometric buckets: values below [`SUB`] are recorded exactly,
/// larger values land in one of `SUB` linear sub-buckets per power of
/// two, so every bucket spans at most a `1/SUB` relative range. Quantile
/// *bounds* are therefore tight to ≈ 3% at any scale — nanoseconds to
/// minutes — with a fixed footprint, unlike [`Histogram`]'s unit bins
/// which need a cap chosen in advance.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min_seen: u64,
    max_seen: u64,
}

/// Bucket index for a value (monotone in `v`).
fn log_bucket(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // 2^exp <= v, exp >= SUB_BITS
    let sub = (v >> (exp - SUB_BITS)) - SUB; // top SUB_BITS bits after the leading 1
    ((exp - SUB_BITS) as u64 * SUB + SUB + sub) as usize
}

/// Inclusive `[lo, hi]` value range of bucket `i` (inverse of
/// [`log_bucket`]).
fn log_bucket_bounds(i: usize) -> (u64, u64) {
    if (i as u64) < SUB {
        return (i as u64, i as u64);
    }
    let g = (i as u64 - SUB) / SUB; // exponent group, exp = g + SUB_BITS
    let s = (i as u64 - SUB) % SUB;
    let lo = (SUB + s) << g;
    // Parenthesised so the top bucket (hi == u64::MAX) doesn't overflow.
    let hi = lo + ((1u64 << g) - 1);
    (lo, hi)
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram (fixed bucket layout; no cap needed).
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; LOG_BUCKETS],
            count: 0,
            sum: 0,
            min_seen: u64::MAX,
            max_seen: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[log_bucket(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min_seen = self.min_seen.min(v);
        self.max_seen = self.max_seen.max(v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest value observed (0 when empty).
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Smallest value observed (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_seen
        }
    }

    /// `[lo, hi]` bounds on the `q`-quantile (0..=1): the true order
    /// statistic at rank `round(q·(n-1))` is guaranteed to lie in the
    /// returned range, and `hi - lo < lo / SUB` (≈ 3% relative width).
    /// `(0, 0)` when empty.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let target = (q.clamp(0.0, 1.0) * (self.count as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > target {
                let (lo, hi) = log_bucket_bounds(i);
                // The bucket bounds can only be tightened by the actual
                // extremes seen.
                return (lo.max(self.min()), hi.min(self.max_seen));
            }
        }
        unreachable!("cumulative bucket counts must reach self.count");
    }

    /// Conservative (upper-bound) `q`-quantile estimate — what latency
    /// reports print for p50/p95/p99.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let mut h = Histogram::new(10);
        for v in [1u64, 1, 2, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bin(3), 3);
        assert_eq!(h.bin(0), 0);
        assert!((h.mean() - 13.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn overflow_bin_catches_large_values() {
        let mut h = Histogram::new(4);
        h.record(100);
        h.record(2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let mut h = Histogram::new(100);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(1.0), 99);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(8);
        let mut b = Histogram::new(8);
        a.record(1);
        b.record(1);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bin(1), 2);
        assert_eq!(a.bin(7), 1);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_caps() {
        let mut a = Histogram::new(8);
        a.merge(&Histogram::new(4));
    }

    #[test]
    fn empty_histogram_defaults() {
        let h = Histogram::new(4);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn ascii_chart_lists_nonzero_bins() {
        let mut h = Histogram::new(4);
        h.record(2);
        h.record(2);
        let chart = h.ascii_chart(10);
        assert!(chart.contains("2 |"));
        assert!(!chart.contains("0 |"));
    }

    #[test]
    fn log_bucket_roundtrips_every_boundary() {
        // The bucket of a value must contain it, and bucketing must be
        // monotone across every power-of-two boundary.
        for exp in 0..64u32 {
            for off in [0u64, 1, 2] {
                let v = (1u64 << exp).saturating_add(off);
                let i = log_bucket(v);
                let (lo, hi) = log_bucket_bounds(i);
                assert!(lo <= v && v <= hi, "v={v} bucket={i} [{lo},{hi}]");
            }
        }
        for v in 0..200u64 {
            assert!(log_bucket(v) <= log_bucket(v + 1), "monotone at {v}");
        }
        assert!(log_bucket(u64::MAX) < LOG_BUCKETS);
    }

    #[test]
    fn log_small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile_bounds(0.0), (0, 0));
        assert_eq!(h.quantile_bounds(1.0), (31, 31));
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn log_quantile_bounds_bracket_true_order_statistics() {
        let mut h = LogHistogram::new();
        let mut vals: Vec<u64> = (0..1000u64).map(|i| i * i * 37 + 5).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = (q * (vals.len() as f64 - 1.0)).round() as usize;
            let truth = vals[rank];
            let (lo, hi) = h.quantile_bounds(q);
            assert!(lo <= truth && truth <= hi, "q={q}: {truth} not in [{lo},{hi}]");
            assert!(hi - lo <= lo / SUB + 1, "q={q}: bucket too wide [{lo},{hi}]");
        }
    }

    #[test]
    fn log_merge_matches_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [3u64, 70, 900, 1_000_000] {
            a.record(v);
            both.record(v);
        }
        for v in [12u64, 44, 123_456_789] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(a.quantile_bounds(q), both.quantile_bounds(q));
        }
    }

    #[test]
    fn log_empty_defaults() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile_bounds(0.99), (0, 0));
    }
}
