//! Integer-bin histograms (staleness distributions, retry counts).

/// A histogram over non-negative integer values with unit-width bins up to
/// a cap; values beyond the cap land in an overflow bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    max_seen: u64,
}

impl Histogram {
    /// Creates a histogram with unit bins `0..cap` plus an overflow bin.
    pub fn new(cap: usize) -> Self {
        Histogram {
            bins: vec![0; cap],
            overflow: 0,
            count: 0,
            sum: 0,
            max_seen: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        if (v as usize) < self.bins.len() {
            self.bins[v as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += v as u128;
        self.max_seen = self.max_seen.max(v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest value observed.
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Count in unit bin `v` (not including overflow).
    pub fn bin(&self, v: usize) -> u64 {
        self.bins.get(v).copied().unwrap_or(0)
    }

    /// Observations beyond the bin cap.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate `q`-quantile (0..=1) from the binned counts; overflow
    /// observations are treated as `cap`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * (self.count as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (v, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen > target {
                return v as u64;
            }
        }
        self.bins.len() as u64
    }

    /// Merges another histogram into this one (bin caps must match).
    ///
    /// # Panics
    /// Panics if the bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin cap mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Non-empty `(value, count)` pairs, for printing distributions.
    pub fn nonzero_bins(&self) -> Vec<(u64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u64, c))
            .collect()
    }

    /// Renders a compact ASCII bar chart of the distribution.
    pub fn ascii_chart(&self, width: usize) -> String {
        let peak = self.bins.iter().cloned().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (v, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat(((c as f64 / peak as f64) * width as f64).ceil() as usize);
            out.push_str(&format!("{v:>5} | {bar} {c}\n"));
        }
        if self.overflow > 0 {
            out.push_str(&format!("  >={} | {}\n", self.bins.len(), self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let mut h = Histogram::new(10);
        for v in [1u64, 1, 2, 3, 3, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bin(3), 3);
        assert_eq!(h.bin(0), 0);
        assert!((h.mean() - 13.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn overflow_bin_catches_large_values() {
        let mut h = Histogram::new(4);
        h.record(100);
        h.record(2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let mut h = Histogram::new(100);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(1.0), 99);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(8);
        let mut b = Histogram::new(8);
        a.record(1);
        b.record(1);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bin(1), 2);
        assert_eq!(a.bin(7), 1);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_caps() {
        let mut a = Histogram::new(8);
        a.merge(&Histogram::new(4));
    }

    #[test]
    fn empty_histogram_defaults() {
        let h = Histogram::new(4);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn ascii_chart_lists_nonzero_bins() {
        let mut h = Histogram::new(4);
        h.record(2);
        h.record(2);
        let chart = h.ascii_chart(10);
        assert!(chart.contains("2 |"));
        assert!(!chart.contains("0 |"));
    }
}
