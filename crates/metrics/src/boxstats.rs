//! Box-plot statistics (five-number summary + outliers).
//!
//! The paper's convergence-rate figures are box plots over 11 independent
//! executions per configuration, showing 1st/3rd quartiles, min/max
//! whiskers, and `+` outliers beyond 1.5·IQR. This module computes those
//! statistics from a sample of run measurements.

/// Five-number summary with 1.5·IQR outlier detection.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxStats {
    /// Smallest non-outlier observation (lower whisker).
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest non-outlier observation (upper whisker).
    pub whisker_hi: f64,
    /// Observations beyond `q1 - 1.5 IQR` or `q3 + 1.5 IQR`.
    pub outliers: Vec<f64>,
    /// Number of observations.
    pub n: usize,
}

impl BoxStats {
    /// Computes box statistics; returns `None` for an empty sample.
    pub fn from_samples(samples: &[f64]) -> Option<BoxStats> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q1 = quantile_sorted(&sorted, 0.25);
        let median = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let outliers: Vec<f64> = sorted
            .iter()
            .cloned()
            .filter(|&v| v < lo_fence || v > hi_fence)
            .collect();
        let whisker_lo = sorted
            .iter()
            .cloned()
            .find(|&v| v >= lo_fence)
            .unwrap_or(sorted[0]);
        let whisker_hi = sorted
            .iter()
            .rev()
            .cloned()
            .find(|&v| v <= hi_fence)
            .unwrap_or(*sorted.last().unwrap());
        Some(BoxStats {
            whisker_lo,
            q1,
            median,
            q3,
            whisker_hi,
            outliers,
            n: samples.len(),
        })
    }

    /// One-line rendering: `med 12.3 [q1 10.0, q3 14.0] whiskers (8.0, 16.5) n=11 (+2 outliers)`.
    pub fn render(&self) -> String {
        let outl = if self.outliers.is_empty() {
            String::new()
        } else {
            format!(" (+{} outliers)", self.outliers.len())
        };
        format!(
            "med {:.3} [q1 {:.3}, q3 {:.3}] whiskers ({:.3}, {:.3}) n={}{}",
            self.median, self.q1, self.q3, self.whisker_lo, self.whisker_hi, self.n, outl
        )
    }
}

/// Linear-interpolated quantile of a pre-sorted slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_quartiles_of_known_sample() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert!(s.outliers.is_empty());
        assert_eq!(s.whisker_lo, 1.0);
        assert_eq!(s.whisker_hi, 5.0);
    }

    #[test]
    fn detects_outliers() {
        let mut xs = vec![10.0; 10];
        xs.push(1000.0);
        let s = BoxStats::from_samples(&xs).unwrap();
        assert_eq!(s.outliers, vec![1000.0]);
        assert_eq!(s.whisker_hi, 10.0);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(BoxStats::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample_degenerates_gracefully() {
        let s = BoxStats::from_samples(&[42.0]).unwrap();
        assert_eq!(s.median, 42.0);
        assert_eq!(s.q1, 42.0);
        assert_eq!(s.whisker_hi, 42.0);
        assert!(s.outliers.is_empty());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s1 = BoxStats::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        let s2 = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(quantile_sorted(&sorted, 0.25), 2.5);
    }

    #[test]
    fn render_contains_key_numbers() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        let r = s.render();
        assert!(r.contains("med 2.000"));
        assert!(r.contains("n=3"));
    }
}
