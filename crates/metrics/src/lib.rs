#![warn(missing_docs)]
//! # lsgd-metrics — experiment metrics for the Leashed-SGD reproduction
//!
//! Everything the paper's evaluation section measures, as reusable
//! components:
//!
//! * [`histogram::Histogram`] — integer-bin histograms for the staleness
//!   distributions of Fig. 6 / Fig. 7 (right).
//! * [`histogram::LogHistogram`] — log-bucketed latency histograms with
//!   ≈ 3%-tight quantile bounds, feeding the per-phase p50/p95/p99
//!   reporting of the `lsgd_trace` observability layer.
//! * [`stats::OnlineStats`] — Welford mean/variance for the Tc/Tu timing
//!   measurements of Fig. 9.
//! * [`boxstats::BoxStats`] — five-number summaries with 1.5·IQR outliers,
//!   the box-plot statistics every convergence-rate figure reports.
//! * [`convergence::ConvergenceTracker`] — ε-convergence detection
//!   relative to the initial loss, with the paper's Crash (numerical
//!   instability) / Diverge (budget exhausted) outcome classification.
//! * [`series::Series`] — loss-over-time traces (Fig. 5) with downsampling.
//! * [`table`] — plain-text and CSV rendering for the harness binaries.

pub mod boxstats;
pub mod convergence;
pub mod histogram;
pub mod series;
pub mod stats;
pub mod table;

pub use boxstats::BoxStats;
pub use convergence::{ConvergenceTracker, Outcome};
pub use histogram::{Histogram, LogHistogram};
pub use series::Series;
pub use stats::OnlineStats;
