//! ε-convergence tracking and outcome classification.
//!
//! The paper measures wall-clock time until the training loss falls below
//! `ε · f(θ₀)` for a set of precision levels (e.g. ε ∈ {75%, 50%, 25%,
//! 10%}), and classifies runs that never get there:
//!
//! * **Crash** — the loss became NaN/Inf (numerical instability from
//!   staleness or too-large steps; paper Figs. 3–4 mark these executions).
//! * **Diverge** — the run exhausted its budget without reaching the
//!   target precision.

use std::time::Duration;

/// Final classification of a run with respect to one ε threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Reached the threshold after the contained wall-clock time.
    Converged(Duration),
    /// Budget exhausted before reaching the threshold.
    Diverged,
    /// Loss became non-finite.
    Crashed,
}

impl Outcome {
    /// Time-to-convergence in seconds, if converged.
    pub fn secs(&self) -> Option<f64> {
        match self {
            Outcome::Converged(d) => Some(d.as_secs_f64()),
            _ => None,
        }
    }

    /// True if this run reached the threshold.
    pub fn converged(&self) -> bool {
        matches!(self, Outcome::Converged(_))
    }
}

/// Tracks loss observations against a set of ε thresholds (fractions of
/// the initial loss).
#[derive(Debug, Clone)]
pub struct ConvergenceTracker {
    initial_loss: f64,
    /// (fraction, absolute threshold, first-hit time).
    thresholds: Vec<(f64, f64, Option<Duration>)>,
    crashed: bool,
    best_loss: f64,
}

impl ConvergenceTracker {
    /// Creates a tracker for the given ε fractions (e.g. `[0.5, 0.1]`
    /// means 50% and 10% of the initial loss).
    ///
    /// # Panics
    /// Panics if `initial_loss` is not finite and positive.
    pub fn new(initial_loss: f64, epsilon_fractions: &[f64]) -> Self {
        assert!(
            initial_loss.is_finite() && initial_loss > 0.0,
            "initial loss must be positive and finite, got {initial_loss}"
        );
        let thresholds = epsilon_fractions
            .iter()
            .map(|&f| (f, f * initial_loss, None))
            .collect();
        ConvergenceTracker {
            initial_loss,
            thresholds,
            crashed: false,
            best_loss: initial_loss,
        }
    }

    /// The loss at initialisation, `f(θ₀)`.
    pub fn initial_loss(&self) -> f64 {
        self.initial_loss
    }

    /// Lowest loss observed so far.
    pub fn best_loss(&self) -> f64 {
        self.best_loss
    }

    /// True once a non-finite loss has been observed.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Records a loss observation at `elapsed` since the run started.
    /// Returns `true` if all thresholds have now been reached (callers may
    /// stop the run).
    pub fn observe(&mut self, elapsed: Duration, loss: f64) -> bool {
        if !loss.is_finite() {
            self.crashed = true;
            return true;
        }
        self.best_loss = self.best_loss.min(loss);
        let mut all_hit = true;
        for (_, abs, hit) in self.thresholds.iter_mut() {
            if hit.is_none() {
                if loss <= *abs {
                    *hit = Some(elapsed);
                } else {
                    all_hit = false;
                }
            }
        }
        all_hit
    }

    /// The outcome for the `i`-th ε fraction (order of construction).
    pub fn outcome(&self, i: usize) -> Outcome {
        match self.thresholds[i].2 {
            Some(t) => Outcome::Converged(t),
            None if self.crashed => Outcome::Crashed,
            None => Outcome::Diverged,
        }
    }

    /// `(fraction, outcome)` for every tracked threshold.
    pub fn outcomes(&self) -> Vec<(f64, Outcome)> {
        (0..self.thresholds.len())
            .map(|i| (self.thresholds[i].0, self.outcome(i)))
            .collect()
    }

    /// True if every threshold has been reached.
    pub fn fully_converged(&self) -> bool {
        self.thresholds.iter().all(|(_, _, hit)| hit.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> Duration {
        Duration::from_secs_f64(s)
    }

    #[test]
    fn thresholds_hit_in_order() {
        let mut t = ConvergenceTracker::new(2.3, &[0.5, 0.1]);
        assert!(!t.observe(secs(1.0), 2.0));
        assert!(!t.observe(secs(2.0), 1.0)); // hits 50%
        assert!(t.observe(secs(5.0), 0.2)); // hits 10% → all done
        assert_eq!(t.outcome(0), Outcome::Converged(secs(2.0)));
        assert_eq!(t.outcome(1), Outcome::Converged(secs(5.0)));
        assert!(t.fully_converged());
    }

    #[test]
    fn first_hit_time_is_kept() {
        let mut t = ConvergenceTracker::new(1.0, &[0.5]);
        t.observe(secs(1.0), 0.4);
        t.observe(secs(2.0), 0.3);
        assert_eq!(t.outcome(0), Outcome::Converged(secs(1.0)));
    }

    #[test]
    fn nan_is_crash() {
        let mut t = ConvergenceTracker::new(1.0, &[0.5, 0.1]);
        t.observe(secs(1.0), 0.4);
        assert!(t.observe(secs(2.0), f64::NAN), "crash should stop the run");
        assert!(t.crashed());
        assert_eq!(t.outcome(0), Outcome::Converged(secs(1.0)));
        assert_eq!(t.outcome(1), Outcome::Crashed);
    }

    #[test]
    fn unreached_threshold_is_diverged() {
        let mut t = ConvergenceTracker::new(1.0, &[0.5, 0.01]);
        t.observe(secs(1.0), 0.4);
        assert_eq!(t.outcome(1), Outcome::Diverged);
        assert!(!t.fully_converged());
    }

    #[test]
    fn best_loss_tracks_minimum() {
        let mut t = ConvergenceTracker::new(1.0, &[0.1]);
        t.observe(secs(1.0), 0.7);
        t.observe(secs(2.0), 0.3);
        t.observe(secs(3.0), 0.5);
        assert_eq!(t.best_loss(), 0.3);
    }

    #[test]
    fn infinity_is_crash() {
        let mut t = ConvergenceTracker::new(1.0, &[0.5]);
        t.observe(secs(0.5), f64::INFINITY);
        assert!(t.crashed());
        assert_eq!(t.outcome(0), Outcome::Crashed);
    }

    #[test]
    #[should_panic]
    fn rejects_non_finite_initial_loss() {
        ConvergenceTracker::new(f64::NAN, &[0.5]);
    }

    #[test]
    fn outcome_secs_helper() {
        assert_eq!(Outcome::Converged(secs(2.5)).secs(), Some(2.5));
        assert_eq!(Outcome::Diverged.secs(), None);
        assert!(!Outcome::Crashed.converged());
    }
}
