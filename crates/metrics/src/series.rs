//! Time-series traces (loss over wall-clock time, Fig. 5 / Fig. 7 middle).

/// A `(seconds, value)` time series with helpers for downsampling and
/// rendering — the loss-vs-time traces of the paper's Figures 5 and 7.
#[derive(Debug, Clone, Default)]
pub struct Series {
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Empty series.
    pub fn new() -> Self {
        Series { points: Vec::new() }
    }

    /// Appends an observation; time must be non-decreasing (enforced in
    /// debug builds).
    pub fn push(&mut self, t_secs: f64, value: f64) {
        debug_assert!(
            self.points.last().map_or(true, |&(pt, _)| t_secs >= pt),
            "time must be non-decreasing"
        );
        self.points.push((t_secs, value));
    }

    /// All points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Linear interpolation at time `t` (clamped to the series range).
    /// Returns `None` for an empty series.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        if t <= self.points[0].0 {
            return Some(self.points[0].1);
        }
        if t >= self.points.last().unwrap().0 {
            return Some(self.points.last().unwrap().1);
        }
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        let (t0, v0) = self.points[idx - 1];
        let (t1, v1) = self.points[idx];
        if t1 == t0 {
            return Some(v1);
        }
        let f = (t - t0) / (t1 - t0);
        Some(v0 * (1.0 - f) + v1 * f)
    }

    /// Downsamples to at most `n` points, keeping first and last.
    pub fn downsample(&self, n: usize) -> Series {
        if self.points.len() <= n || n < 2 {
            return self.clone();
        }
        let mut points = Vec::with_capacity(n);
        for i in 0..n {
            let idx = i * (self.points.len() - 1) / (n - 1);
            points.push(self.points[idx]);
        }
        Series { points }
    }

    /// Resamples onto a uniform grid of `n` points over `[0, t_max]`.
    pub fn resample_uniform(&self, t_max: f64, n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let t = t_max * i as f64 / (n - 1).max(1) as f64;
                (t, self.value_at(t).unwrap_or(f64::NAN))
            })
            .collect()
    }

    /// CSV rendering with the given column headers.
    pub fn to_csv(&self, t_name: &str, v_name: &str) -> String {
        let mut out = format!("{t_name},{v_name}\n");
        for &(t, v) in &self.points {
            out.push_str(&format!("{t:.6},{v:.6}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Series {
        let mut s = Series::new();
        for i in 0..=10 {
            s.push(i as f64, (i * 2) as f64);
        }
        s
    }

    #[test]
    fn push_and_len() {
        let s = ramp();
        assert_eq!(s.len(), 11);
        assert_eq!(s.last_value(), Some(20.0));
    }

    #[test]
    fn interpolation_between_points() {
        let s = ramp();
        assert_eq!(s.value_at(2.5), Some(5.0));
        assert_eq!(s.value_at(0.0), Some(0.0));
    }

    #[test]
    fn interpolation_clamps_to_range() {
        let s = ramp();
        assert_eq!(s.value_at(-5.0), Some(0.0));
        assert_eq!(s.value_at(100.0), Some(20.0));
    }

    #[test]
    fn empty_series_interpolation_is_none() {
        assert_eq!(Series::new().value_at(1.0), None);
        assert!(Series::new().is_empty());
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let s = ramp();
        let d = s.downsample(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.points()[0], (0.0, 0.0));
        assert_eq!(d.points()[2], (10.0, 20.0));
    }

    #[test]
    fn downsample_noop_when_small() {
        let s = ramp();
        assert_eq!(s.downsample(100).len(), s.len());
    }

    #[test]
    fn resample_uniform_grid() {
        let s = ramp();
        let grid = s.resample_uniform(10.0, 6);
        assert_eq!(grid.len(), 6);
        assert_eq!(grid[0], (0.0, 0.0));
        assert_eq!(grid[5], (10.0, 20.0));
        assert!((grid[1].1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut s = Series::new();
        s.push(0.0, 1.5);
        let csv = s.to_csv("t", "loss");
        assert!(csv.starts_with("t,loss\n"));
        assert!(csv.contains("0.000000,1.500000"));
    }
}
