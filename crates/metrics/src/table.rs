//! Plain-text table rendering for the experiment harness binaries.
//!
//! Each harness binary prints the rows/series of one paper figure or
//! table; this module provides the shared column-aligned renderer and a
//! CSV escape hatch for downstream plotting.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// are rejected.
    ///
    /// # Panics
    /// Panics if the row has more cells than there are headers.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            cells.len() <= self.headers.len(),
            "row has {} cells but table has {} columns",
            cells.len(),
            self.headers.len()
        );
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with aligned columns and a header separator.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{cell:<w$}"));
            }
            s.trim_end().to_string()
        };
        let mut out = line(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (naive quoting: cells containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = self
            .headers
            .iter()
            .map(|h| esc(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in seconds adaptively (`ms` below 1 s).
pub fn fmt_secs(s: f64) -> String {
    if !s.is_finite() {
        return "-".to_string();
    }
    if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["algo", "time"]);
        t.row(vec!["SEQ", "1.0"]);
        t.row(vec!["LSH_ps0", "0.5"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("algo"));
        assert!(lines[2].starts_with("SEQ"));
        // Column 2 aligned: "time" starts at same offset in all rows.
        let col = lines[0].find("time").unwrap();
        assert_eq!(&lines[2][col..col + 3], "1.0");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert_eq!(t.n_rows(), 1);
        assert!(t.render().contains('x'));
    }

    #[test]
    #[should_panic]
    fn long_rows_rejected() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x", "y"]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["name", "vals"]);
        t.row(vec!["x", "1,2"]);
        assert!(t.to_csv().contains("\"1,2\""));
    }

    #[test]
    fn fmt_secs_adaptive() {
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(f64::NAN), "-");
    }
}
