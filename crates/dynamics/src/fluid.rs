//! The fluid (mean-field) model of thread progression — paper Section IV.1.
//!
//! Threads outside the LAU-SPC retry loop arrive at rate `(m - n)/Tc`;
//! threads inside depart at rate `n/Tu` (times `1 + γ` under a persistence
//! bound). All equation numbers refer to the paper.

/// The Section-IV fluid model, parameterised by thread count `m`, gradient
/// computation time `Tc` and update/attempt time `Tu` (in the same
/// arbitrary time unit; one recurrence step advances one unit).
///
/// ```
/// use lsgd_dynamics::FluidModel;
///
/// // 16 threads, Tc = 3 time units, Tu = 1 (contended regime).
/// let m = FluidModel::new(16.0, 3.0, 1.0);
/// assert_eq!(m.fixed_point(), 4.0);              // n* = m/(Tc/Tu + 1)
/// assert_eq!(m.balance(), 0.25);                 // n*/m = Tu/(Tu+Tc)
/// // The trajectory settles at the fixed point (Corollary 3.1):
/// let n_t = *m.trajectory(0.0, 500).last().unwrap();
/// assert!((n_t - 4.0).abs() < 1e-9);
/// // A persistence bound shifts it down (Corollary 3.2):
/// assert!(m.fixed_point_gamma(1.0) < m.fixed_point());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidModel {
    /// Number of worker threads `m`.
    pub m: f64,
    /// Gradient computation time `Tc`.
    pub tc: f64,
    /// Update (LAU-SPC attempt) time `Tu`.
    pub tu: f64,
}

impl FluidModel {
    /// Creates a model.
    ///
    /// # Panics
    /// Panics unless `m > 0`, `tc > 0`, `tu > 0`.
    pub fn new(m: f64, tc: f64, tu: f64) -> Self {
        assert!(m > 0.0 && tc > 0.0 && tu > 0.0, "parameters must be positive");
        FluidModel { m, tc, tu }
    }

    /// The contraction factor `r = 1 - 1/Tc - 1/Tu` of the recurrence.
    pub fn contraction(&self) -> f64 {
        1.0 - 1.0 / self.tc - 1.0 / self.tu
    }

    /// True iff the discrete recurrence converges (`|r| < 1`).
    pub fn is_stable(&self) -> bool {
        self.contraction().abs() < 1.0
    }

    /// One step of recurrence (4): `n + (m - n)/Tc - n/Tu`.
    pub fn step(&self, n: f64) -> f64 {
        n + (self.m - n) / self.tc - n / self.tu
    }

    /// One step under departure rate (6): `μ = n (1+γ)/Tu`.
    pub fn step_gamma(&self, n: f64, gamma: f64) -> f64 {
        n + (self.m - n) / self.tc - n * (1.0 + gamma) / self.tu
    }

    /// The trajectory `n_0, n_1, …, n_steps` by iterating (4).
    pub fn trajectory(&self, n0: f64, steps: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(steps + 1);
        let mut n = n0;
        out.push(n);
        for _ in 0..steps {
            n = self.step(n);
            out.push(n);
        }
        out
    }

    /// Closed form (5), Theorem 3:
    /// `n_t = (1 - r^t)/(1 + Tc/Tu) · m + r^t · n_0`.
    pub fn closed_form(&self, n0: f64, t: u32) -> f64 {
        let r = self.contraction();
        let rt = r.powi(t as i32);
        (1.0 - rt) / (1.0 + self.tc / self.tu) * self.m + rt * n0
    }

    /// Fixed point `n* = m / (Tc/Tu + 1)` (Corollary 3.1).
    pub fn fixed_point(&self) -> f64 {
        self.m / (self.tc / self.tu + 1.0)
    }

    /// Persistence-shifted fixed point (7), Corollary 3.2:
    /// `n*_γ = m / ((1+γ) Tc/Tu + 1)`.
    pub fn fixed_point_gamma(&self, gamma: f64) -> f64 {
        assert!(gamma >= 0.0, "gamma must be non-negative");
        self.m / ((1.0 + gamma) * self.tc / self.tu + 1.0)
    }

    /// Thread balance at the fixed point, `n*/m = Tu/(Tu + Tc)` — the
    /// paper's observation that balance depends only on the ratio `Tu/Tc`.
    pub fn balance(&self) -> f64 {
        self.tu / (self.tu + self.tc)
    }

    /// Returns an equivalent model whose time unit is `dt` of the original
    /// (i.e. `Tc`, `Tu` divided by `dt`). The fixed points are invariant;
    /// the recurrence becomes a finer discretisation of the same flow.
    ///
    /// The paper's recurrence (4) advances one time unit per step and is
    /// only stable when `1/Tc + 1/Tu < 2`; with a sub-millisecond `Tu`
    /// expressed in milliseconds it oscillates divergently. Rescaling to
    /// `dt ≤ min(Tc, Tu)/2` restores stability without changing the
    /// steady state — use [`FluidModel::rescaled_stable`] for an automatic
    /// choice.
    pub fn rescaled(&self, dt: f64) -> FluidModel {
        assert!(dt > 0.0, "dt must be positive");
        FluidModel::new(self.m, self.tc / dt, self.tu / dt)
    }

    /// Rescales the time unit to `min(Tc, Tu) / 4`, guaranteeing a stable
    /// discretisation of the flow (contraction factor in `(0, 1)`).
    pub fn rescaled_stable(&self) -> FluidModel {
        self.rescaled(self.tc.min(self.tu) / 4.0)
    }

    /// Steps until the trajectory is within `tol` of the fixed point,
    /// starting from `n0` (None if not reached in `max_steps`).
    pub fn settling_time(&self, n0: f64, tol: f64, max_steps: usize) -> Option<usize> {
        let target = self.fixed_point();
        let mut n = n0;
        for t in 0..=max_steps {
            if (n - target).abs() <= tol {
                return Some(t);
            }
            n = self.step(n);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FluidModel {
        // MLP-like ratio from the paper's Fig. 9: Tc ≈ 40 ms, Tu ≈ 0.8 ms.
        FluidModel::new(16.0, 40.0, 0.8)
    }

    #[test]
    fn fixed_point_is_stationary() {
        let m = model();
        let n_star = m.fixed_point();
        assert!((m.step(n_star) - n_star).abs() < 1e-12);
    }

    #[test]
    fn fixed_point_formula() {
        let m = FluidModel::new(16.0, 3.0, 1.0);
        assert!((m.fixed_point() - 4.0).abs() < 1e-12); // 16 / (3 + 1)
    }

    #[test]
    fn closed_form_matches_recurrence() {
        let m = model();
        let traj = m.trajectory(2.0, 50);
        for (t, &n) in traj.iter().enumerate() {
            let cf = m.closed_form(2.0, t as u32);
            assert!((n - cf).abs() < 1e-9, "t={t}: {n} vs {cf}");
        }
    }

    #[test]
    fn converges_to_fixed_point_from_any_start() {
        let m = model();
        for n0 in [0.0, 1.0, 8.0, 16.0] {
            let last = *m.trajectory(n0, 2000).last().unwrap();
            assert!(
                (last - m.fixed_point()).abs() < 1e-6,
                "from n0={n0}: {last} vs {}",
                m.fixed_point()
            );
        }
    }

    #[test]
    fn gamma_shrinks_fixed_point() {
        let m = model();
        let base = m.fixed_point();
        let mut prev = base;
        for gamma in [0.5, 1.0, 2.0, 8.0] {
            let ng = m.fixed_point_gamma(gamma);
            assert!(ng < prev, "n*_γ must decrease in γ");
            prev = ng;
        }
        // Cor. 3.2 (ii): vanishes as γ grows.
        assert!(m.fixed_point_gamma(1e9) < 1e-5);
    }

    #[test]
    fn gamma_zero_recovers_base_fixed_point() {
        let m = model();
        assert!((m.fixed_point_gamma(0.0) - m.fixed_point()).abs() < 1e-12);
    }

    #[test]
    fn balance_depends_only_on_ratio() {
        let a = FluidModel::new(8.0, 10.0, 2.0);
        let b = FluidModel::new(64.0, 50.0, 10.0);
        assert!((a.balance() - b.balance()).abs() < 1e-12);
        assert!((a.fixed_point() / a.m - a.balance()).abs() < 1e-12);
    }

    #[test]
    fn stability_condition() {
        assert!(FluidModel::new(4.0, 10.0, 2.0).is_stable());
        // 1/Tc + 1/Tu = 2.5 → r = -1.5 → unstable oscillation.
        assert!(!FluidModel::new(4.0, 0.8, 0.5).is_stable());
    }

    #[test]
    fn settling_time_decreases_with_faster_service() {
        let slow = FluidModel::new(16.0, 100.0, 10.0);
        let fast = FluidModel::new(16.0, 10.0, 1.0);
        let ts = slow.settling_time(0.0, 0.01, 100_000).unwrap();
        let tf = fast.settling_time(0.0, 0.01, 100_000).unwrap();
        assert!(tf < ts, "faster dynamics settle sooner: {tf} vs {ts}");
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_parameters() {
        FluidModel::new(0.0, 1.0, 1.0);
    }

    #[test]
    fn rescaling_preserves_fixed_points() {
        let m = FluidModel::new(16.0, 100.0, 0.25); // unstable as written
        assert!(!m.is_stable());
        let r = m.rescaled_stable();
        assert!(r.is_stable());
        assert!((r.fixed_point() - m.fixed_point()).abs() < 1e-12);
        assert!((r.fixed_point_gamma(0.5) - m.fixed_point_gamma(0.5)).abs() < 1e-12);
        assert!((r.balance() - m.balance()).abs() < 1e-12);
    }

    #[test]
    fn rescaled_trajectory_converges_where_original_diverges() {
        let m = FluidModel::new(16.0, 100.0, 0.25);
        let r = m.rescaled_stable();
        let last = *r.trajectory(0.0, 50_000).last().unwrap();
        assert!(
            (last - m.fixed_point()).abs() < 1e-6,
            "rescaled trajectory settles at the shared fixed point"
        );
        let diverged = m.trajectory(0.0, 100).last().unwrap().abs() > 1e6;
        assert!(diverged, "original coarse recurrence must oscillate out");
    }
}
